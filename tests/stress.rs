//! Long-running deterministic soak test combining every subsystem:
//! centralized summaries with continuous subscriptions, multi-stream
//! correlation, whole-stream history, and a replication network — all
//! fed from one workload, with invariants checked continuously.
//!
//! This is the closest thing to production traffic the test suite runs;
//! it exists to catch interaction bugs the per-crate tests cannot see.

use swat::data::Dataset;
use swat::net::{MessageLedger, NodeId, Topology};
use swat::replication::asr::SwatAsr;
use swat::replication::ReplicationScheme;
use swat::tree::{
    ContinuousEngine, ExactWindow, GrowingSwat, InnerProductQuery, StreamSet, SwatConfig, SwatTree,
};

#[test]
fn combined_soak() {
    let n = 64;
    let config = SwatConfig::new(n).expect("valid");
    let mut tree = SwatTree::new(config);
    let mut truth = ExactWindow::new(n);
    let mut engine = ContinuousEngine::new(config);
    let sub = engine.subscribe(InnerProductQuery::exponential(16, 1e9), 8);
    let mut history = GrowingSwat::new(2);
    let mut streams = StreamSet::new(config, 2);

    let topo = Topology::complete_binary(2);
    let mut asr = SwatAsr::new(topo.clone(), n);
    let mut ledger = MessageLedger::new();

    let primary = Dataset::Weather.series(123, 6000);
    let secondary = Dataset::Synthetic.series(321, 6000);

    let mut notifications = 0usize;
    for (i, (&a, &b)) in primary.iter().zip(&secondary).enumerate() {
        let t = i as u64;
        tree.push(a);
        truth.push(a);
        history.push(a);
        streams.push_row(&[a, b]);
        notifications += engine.push(a).len();
        asr.on_data(t, a, &mut ledger);

        // A rotating client queries the network every third arrival.
        if i % 3 == 0 && i > 0 {
            let client = NodeId(1 + (i / 3) % topo.client_count());
            let q = InnerProductQuery::linear_at(i % 8, 8, 40.0);
            let out = asr.on_query(t, client, &q, &mut ledger);
            assert!(out.value.is_finite());
        }
        if i % 25 == 24 {
            asr.on_phase_end(t, &mut ledger);
        }

        // Continuous invariants, sampled to keep the test fast.
        if i > 2 * n && i % 97 == 0 {
            // 1. Point soundness on the windowed tree.
            for idx in [0usize, 1, n / 2, n - 1] {
                let p = tree.point(idx).expect("warm");
                let exact = truth.get(idx).expect("full");
                assert!(
                    (p.value - exact).abs() <= p.error_bound + 1e-9,
                    "step {i} idx {idx}"
                );
            }
            // 2. Growing summary agrees with the windowed one on shared
            //    recent indices within combined bounds.
            let pw = tree.point(3).expect("warm");
            let pg = history.point(3).expect("covered");
            assert!(
                (pw.value - pg.value).abs() <= pw.error_bound + pg.error_bound + 1e-9,
                "step {i}: windowed {} vs growing {}",
                pw.value,
                pg.value
            );
            // 3. ASR enclosure invariant.
            for seg in 0..asr.segments().len() {
                if let Some(exact) = asr.exact_segment_range(seg) {
                    for node in topo.nodes() {
                        if let Some(cached) = asr.cached_range(node, seg) {
                            assert!(cached.encloses(&exact), "step {i} seg {seg} node {node}");
                        }
                    }
                }
            }
            // 4. Correlation estimate stays a valid coefficient.
            let rho = streams.correlation(0, 1, 32).expect("warm");
            assert!((-1.0..=1.0).contains(&rho), "rho {rho} out of range");
        }
    }

    // The subscription fired at its cadence (every 8th arrival, minus
    // warm-up skips).
    assert!(
        notifications >= (6000 / 8) - 2 * (n / 8) - 2,
        "only {notifications} notifications"
    );
    assert!(engine.unsubscribe(sub));
    // The network did real work and ASR kept its space promise.
    assert!(ledger.total() > 0);
    assert!(asr.approximation_count() <= topo.len() * asr.segments().len());
    // The growing summary's space stayed logarithmic.
    assert!(history.summary_count() <= 3 * 13);
}
