//! Cross-crate integration for the paper's extension features: the
//! growing (whole-stream) summary, continuous queries, multi-stream
//! correlation, aggregates, snapshots, and the k-coefficient replication
//! — exercised together against ground truth.

use swat::data::Dataset;
use swat::net::{MessageLedger, NodeId, Topology};
use swat::replication::asr::SwatAsr;
use swat::replication::ReplicationScheme;
use swat::tree::{
    ContinuousEngine, ExactWindow, GrowingSwat, InnerProductQuery, SwatConfig, SwatTree, ValueRange,
};

#[test]
fn growing_and_windowed_trees_agree_on_recent_history() {
    let n = 128;
    let data = Dataset::Weather.series(31, 4 * n);
    let mut windowed = SwatTree::new(SwatConfig::new(n).expect("valid"));
    let mut growing = GrowingSwat::new(1);
    let mut truth = ExactWindow::new(n);
    for &v in &data {
        windowed.push(v);
        growing.push(v);
        truth.push(v);
    }
    for idx in [0usize, 1, 5, 17, 64, 127] {
        let w = windowed.point(idx).expect("warm");
        let g = growing.point(idx).expect("covered");
        let t = truth.get(idx).expect("full");
        assert!((w.value - t).abs() <= w.error_bound + 1e-9);
        assert!((g.value - t).abs() <= g.error_bound + 1e-9);
    }
}

#[test]
fn snapshot_survives_a_trip_through_continuous_queries() {
    let config = SwatConfig::new(64).expect("valid");
    let mut engine = ContinuousEngine::new(config);
    engine.subscribe(InnerProductQuery::exponential(8, 1e9), 4);
    for v in Dataset::Synthetic.series(3, 300) {
        engine.push(v);
    }
    // Snapshot the inner tree, restore, and wrap a new engine around it.
    let bytes = engine.tree().snapshot();
    let restored = SwatTree::restore(&bytes).expect("valid snapshot");
    let mut engine2 = ContinuousEngine::from_tree(restored);
    let id = engine2.subscribe(InnerProductQuery::exponential(8, 1e9), 4);
    // Both engines see the same stream continuation and produce the same
    // answers.
    let tail = Dataset::Synthetic.series(4, 64);
    let mut answers1 = Vec::new();
    let mut answers2 = Vec::new();
    for &v in &tail {
        answers1.extend(engine.push(v).into_iter().map(|n| n.answer.value));
        answers2.extend(
            engine2
                .push(v)
                .into_iter()
                .filter(|n| n.id == id)
                .map(|n| n.answer.value),
        );
    }
    assert_eq!(answers1, answers2);
}

#[test]
fn aggregates_track_replication_truth() {
    // Use the tree's aggregate over the same stream a replication source
    // sees; the segment ranges and the aggregate bounds must agree on
    // enclosure.
    let n = 32;
    let data = Dataset::Weather.series(8, 200);
    let mut tree = SwatTree::new(SwatConfig::new(n).expect("valid"));
    let mut asr = SwatAsr::new(Topology::single_client(), n);
    let mut ledger = MessageLedger::new();
    for (i, &v) in data.iter().enumerate() {
        tree.push(v);
        asr.on_data(i as u64, v, &mut ledger);
    }
    for (seg_idx, seg) in asr.segments().to_vec().iter().enumerate() {
        let agg = tree.aggregate(seg.lo, seg.hi).expect("warm");
        let source_range = asr
            .cached_range(NodeId::SOURCE, seg_idx)
            .expect("source holds every segment");
        // The tree's bound is a union of covering node ranges, which may
        // be wider than the exact segment range but must contain it.
        assert!(
            agg.bounds.encloses(&source_range),
            "segment {seg_idx}: tree bounds {} vs source range {}",
            agg.bounds,
            source_range
        );
    }
}

#[test]
fn coefficient_replication_is_exact_with_full_budget() {
    // k = segment width makes every replica lossless (deviation zero).
    // Lossless replicas of *changing* data are exact caching — every
    // arrival is a write — so drive the stream to a steady state first;
    // once writes stop, expansion installs replicas and local answers
    // equal the exact inner product.
    let n = 16;
    let mut asr = SwatAsr::with_coefficients(Topology::single_client(), n, n);
    let mut ledger = MessageLedger::new();
    let mut data = Dataset::Weather.series(12, 80);
    data.extend(std::iter::repeat_n(61.25, 80)); // steady state
    let mut truth = ExactWindow::new(n);
    let q = InnerProductQuery::linear(6, 0.5); // very tight precision
    for (i, &v) in data.iter().enumerate() {
        asr.on_data(i as u64, v, &mut ledger);
        truth.push(v);
        asr.on_query(i as u64, NodeId(1), &q, &mut ledger);
        if i % 10 == 9 {
            asr.on_phase_end(i as u64, &mut ledger);
        }
    }
    // Lossless replicas advertise (near-)zero deviation.
    let mut held = 0;
    for seg in 0..asr.segments().len() {
        if let Some(a) = asr.cached_approx(NodeId(1), seg) {
            held += 1;
            assert!(
                a.deviation() < 1e-9,
                "segment {seg} deviation {}",
                a.deviation()
            );
        }
    }
    assert!(held > 0, "steady state should install replicas");
    let out = asr.on_query(999, NodeId(1), &q, &mut ledger);
    assert!(out.local_hit, "lossless replicas satisfy any precision");
    let exact = q.exact(&truth.to_vec());
    assert!((out.value - exact).abs() < 1e-9);
}

#[test]
fn correlation_uses_the_same_summaries_queries_do() {
    let n = 64;
    let mut set = swat::tree::StreamSet::new(SwatConfig::new(n).expect("valid"), 2);
    let a_vals = Dataset::Weather.series(1, 200);
    for (i, &a) in a_vals.iter().enumerate() {
        set.push_row(&[a, a + (i % 3) as f64]);
    }
    // The correlation path reads point queries; spot-check it against a
    // manual computation from the same tree reconstructions.
    let m = 32;
    let xa: Vec<f64> = (0..m)
        .map(|i| set.tree(0).point(i).expect("warm").value)
        .collect();
    let xb: Vec<f64> = (0..m)
        .map(|i| set.tree(1).point(i).expect("warm").value)
        .collect();
    let manual = swat::tree::multi::pearson(&xa, &xb);
    let api = set.correlation(0, 1, m).expect("warm");
    assert!((manual - api).abs() < 1e-12);
    assert!(
        api > 0.9,
        "near-identical streams must correlate, got {api}"
    );
}

#[test]
fn count_in_band_spans_the_stack() {
    let n = 64;
    let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, n).expect("valid"));
    let data = Dataset::Synthetic.series(77, 3 * n);
    let mut truth = ExactWindow::new(n);
    for &v in &data {
        tree.push(v);
        truth.push(v);
    }
    let band = ValueRange::new(25.0, 75.0);
    let counted = tree.count_in_band(0, n - 1, band).expect("warm");
    let exact = truth.iter().filter(|v| band.contains(*v)).count();
    assert_eq!(counted, exact, "lossless tree counts exactly");
}
