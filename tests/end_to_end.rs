//! Cross-crate integration: the centralized summarization pipeline —
//! data generators feeding the SWAT tree, the histogram baseline, and
//! ground truth, with queries evaluated against all three.

use swat::data::Dataset;
use swat::histogram::{HistogramConfig, SlidingHistogram};
use swat::tree::{ExactWindow, InnerProductQuery, SwatConfig, SwatTree};

const N: usize = 256;

struct Rig {
    tree: SwatTree,
    hist: SlidingHistogram,
    truth: ExactWindow,
}

fn rig(dataset: Dataset, arrivals: usize, seed: u64) -> Rig {
    let mut r = Rig {
        tree: SwatTree::new(SwatConfig::new(N).expect("valid")),
        hist: SlidingHistogram::new(HistogramConfig::new(N, 24, 0.1).expect("valid")),
        truth: ExactWindow::new(N),
    };
    for v in dataset.series(seed, arrivals) {
        r.tree.push(v);
        r.hist.push(v);
        r.truth.push(v);
    }
    assert!(r.tree.is_warm());
    r
}

#[test]
fn all_summaries_agree_with_truth_within_bounds() {
    let r = rig(Dataset::Weather, 3 * N, 1);
    let window = r.truth.to_vec();
    for q in [
        InnerProductQuery::exponential(32, 1e9),
        InnerProductQuery::linear(64, 1e9),
        InnerProductQuery::exponential_at(40, 16, 1e9),
        InnerProductQuery::point(0, 1e9),
        InnerProductQuery::point(N - 1, 1e9),
    ] {
        let exact = q.exact(&window);
        let swat = r.tree.inner_product(&q).expect("warm");
        assert!(
            (swat.value - exact).abs() <= swat.error_bound + 1e-9,
            "SWAT bound violated: |{} - {}| > {}",
            swat.value,
            exact,
            swat.error_bound
        );
        // The histogram answers without bounds; sanity-check it is in the
        // right ballpark (within the window's value spread times weights).
        let h = r.hist.build();
        let hv = h.inner_product(q.indices(), q.weights());
        let spread: f64 = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - window.iter().cloned().fold(f64::INFINITY, f64::min);
        let weight_sum: f64 = q.weights().iter().map(|w| w.abs()).sum();
        assert!(
            (hv - exact).abs() <= spread * weight_sum,
            "histogram answer wildly off: {hv} vs {exact}"
        );
    }
}

#[test]
fn swat_beats_histogram_on_recency_biased_queries() {
    // The paper's central accuracy claim at integration-test scale.
    let mut swat_err = 0.0;
    let mut hist_err = 0.0;
    let mut r = rig(Dataset::Weather, 2 * N, 2);
    let extra = Dataset::Weather.series(99, 300);
    let q = InnerProductQuery::exponential(32, 1e9);
    for &v in &extra {
        r.tree.push(v);
        r.hist.push(v);
        r.truth.push(v);
        let exact = q.exact(&r.truth.to_vec());
        swat_err += (r.tree.inner_product(&q).expect("warm").value - exact).abs();
        let h = r.hist.build();
        hist_err += (h.inner_product(q.indices(), q.weights()) - exact).abs();
    }
    assert!(
        swat_err < hist_err,
        "SWAT total error {swat_err} should beat histogram {hist_err}"
    );
}

#[test]
fn space_complexity_contrast() {
    let r = rig(Dataset::Synthetic, 3 * N, 3);
    // SWAT: 3 log N - 2 summaries; Histogram: N retained values.
    assert_eq!(r.tree.summary_count(), 3 * 8 - 2);
    assert_eq!(r.hist.len(), N);
    assert!(r.tree.space_bytes() < r.hist.space_bytes());
    // The gap widens with N: O(log N) vs O(N).
    let big = 1 << 14;
    let mut tree = SwatTree::new(SwatConfig::new(big).expect("valid"));
    let mut hist = SlidingHistogram::new(HistogramConfig::new(big, 24, 0.1).expect("valid"));
    for v in Dataset::Synthetic.series(3, 2 * big) {
        tree.push(v);
        hist.push(v);
    }
    assert!(tree.space_bytes() * 20 < hist.space_bytes());
}

#[test]
fn query_cost_contrast() {
    // SWAT touches at most 3 log N summaries per query; the histogram
    // must rebuild all B buckets over N values.
    let r = rig(Dataset::Synthetic, 3 * N, 4);
    let q = InnerProductQuery::exponential(N, 1e9);
    let a = r.tree.inner_product(&q).expect("warm");
    assert!(a.nodes_used <= 3 * 8);
    let h = r.hist.build();
    assert!(h.buckets().len() <= 24);
    assert_eq!(h.len(), N);
}

#[test]
fn reconstruction_pipeline_roundtrip() {
    // Reconstructing the window from the lossless tree equals truth; the
    // lossy tree's reconstruction stays within per-node ranges.
    let data = Dataset::Weather.series(5, 3 * N);
    let mut lossless = SwatTree::new(SwatConfig::with_coefficients(N, N).expect("valid"));
    let mut lossy = SwatTree::new(SwatConfig::new(N).expect("valid"));
    let mut truth = ExactWindow::new(N);
    for &v in &data {
        lossless.push(v);
        lossy.push(v);
        truth.push(v);
    }
    let window = truth.to_vec();
    let exact_rec = lossless.reconstruct_window().expect("warm");
    for (i, (a, b)) in exact_rec.iter().zip(&window).enumerate() {
        assert!((a - b).abs() < 1e-9, "lossless mismatch at {i}: {a} vs {b}");
    }
    let approx_rec = lossy.reconstruct_window().expect("warm");
    for i in 0..N {
        let p = lossy.point(i).expect("warm");
        assert!((approx_rec[i] - p.value).abs() < 1e-9);
        assert!((approx_rec[i] - window[i]).abs() <= p.error_bound + 1e-9);
    }
}

#[test]
fn csv_roundtrip_feeds_the_tree() {
    // data crate -> CSV -> tree: the loader integrates with everything.
    let dir = std::env::temp_dir().join("swat-e2e");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("stream.csv");
    let series = Dataset::Weather.series(8, 2 * N);
    let text: String = series.iter().map(|v| format!("{v}\n")).collect();
    std::fs::write(&path, text).expect("write csv");
    let loaded = swat::data::csv::load_values(&path).expect("load csv");
    assert_eq!(loaded.len(), series.len());
    let mut tree = SwatTree::new(SwatConfig::new(N).expect("valid"));
    tree.extend(loaded.iter().copied());
    assert!(tree.is_warm());
}
