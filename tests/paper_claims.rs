//! The paper's quantitative claims, checked at integration-test scale.
//!
//! Each test names the claim (section or figure) it guards. Absolute
//! constants differ from the paper's 2002 testbed; the *shapes* —
//! who wins, how costs scale — are asserted.

use std::time::Instant;

use swat::data::Dataset;
use swat::histogram::{HistogramConfig, SlidingHistogram};
use swat::tree::{error_model, InnerProductQuery, SwatConfig, SwatTree};

/// §2.6: "the space complexity of our scheme is O(k log N)" — doubling N
/// adds a constant number of summaries; the histogram's state doubles.
#[test]
fn claim_space_scaling() {
    let build = |n: usize| {
        let mut t = SwatTree::new(SwatConfig::new(n).expect("valid"));
        let mut h = SlidingHistogram::new(HistogramConfig::new(n, 30, 0.1).expect("valid"));
        for v in Dataset::Synthetic.series(1, 2 * n) {
            t.push(v);
            h.push(v);
        }
        (t.summary_count(), h.len())
    };
    let (t1, h1) = build(256);
    let (t2, h2) = build(512);
    let (t4, h4) = build(1024);
    assert_eq!(t2 - t1, 3, "one more level = 3 more summaries");
    assert_eq!(t4 - t2, 3);
    assert_eq!(h2, 2 * h1);
    assert_eq!(h4, 2 * h2);
}

/// §2.6: "the amortized processing cost for each new data value is O(1)"
/// — ingesting 4x the data takes about 4x the time (within generous
/// noise), i.e. per-arrival cost does not grow with stream length.
#[test]
fn claim_constant_amortized_update() {
    let time_ingest = |arrivals: usize| {
        let mut t = SwatTree::new(SwatConfig::new(1024).expect("valid"));
        let data = Dataset::Synthetic.series(2, arrivals);
        let start = Instant::now();
        for &v in &data {
            t.push(v);
        }
        start.elapsed().as_secs_f64() / arrivals as f64
    };
    // Warm up the allocator, then compare per-arrival costs.
    let _ = time_ingest(20_000);
    let short = time_ingest(50_000);
    let long = time_ingest(200_000);
    assert!(
        long < short * 3.0,
        "per-arrival cost grew with stream length: {short:.2e} -> {long:.2e}"
    );
}

/// Figure 6(b): SWAT answers queries orders of magnitude faster than the
/// histogram baseline (which must rebuild its summary per query).
#[test]
fn claim_query_response_gap() {
    let n = 1024;
    let mut tree = SwatTree::new(SwatConfig::new(n).expect("valid"));
    let mut hist = SlidingHistogram::new(HistogramConfig::new(n, 30, 0.1).expect("valid"));
    for v in Dataset::Synthetic.series(3, 3 * n) {
        tree.push(v);
        hist.push(v);
    }
    let q = InnerProductQuery::exponential(64, 1e9);
    let reps = 20;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(tree.inner_product(&q).expect("warm"));
    }
    let swat = start.elapsed();
    let start = Instant::now();
    for _ in 0..2 {
        let h = hist.build();
        std::hint::black_box(h.inner_product(q.indices(), q.weights()));
    }
    let hist_t = start.elapsed() / 2 * reps as u32;
    assert!(
        hist_t > swat * 50,
        "expected a large response-time gap, got SWAT {swat:?} vs Histogram {hist_t:?}"
    );
}

/// §2.6 equations (2) and (3): on the ε-increment stream, exponential
/// query error is O(ε log M) while linear query error is O(ε M²) —
/// quadratically worse.
#[test]
fn claim_error_model_separation() {
    let eps = 0.01;
    for m in [16usize, 64, 256] {
        let exp = error_model::exponential_bound(m, eps);
        let lin = error_model::linear_bound(m, eps);
        assert!(lin > exp * m as f64 / 4.0, "m={m}: {lin} vs {exp}");
    }
    // And the measured errors respect the ordering.
    let n = 256;
    let mut tree = SwatTree::new(SwatConfig::new(n).expect("valid"));
    let mut truth = swat::tree::ExactWindow::new(n);
    let mut worst = (0.0f64, 0.0f64);
    for (i, v) in swat::data::walk::RandomWalk::ramp(0.0, 1e9, eps)
        .take(4 * n)
        .enumerate()
    {
        tree.push(v);
        truth.push(v);
        if i >= 2 * n {
            let w = truth.to_vec();
            let qe = InnerProductQuery::exponential(64, 1.0);
            let ql = InnerProductQuery::linear(64, 1.0);
            worst.0 = worst
                .0
                .max((tree.inner_product(&qe).expect("warm").value - qe.exact(&w)).abs());
            worst.1 = worst
                .1
                .max((tree.inner_product(&ql).expect("warm").value - ql.exact(&w)).abs());
        }
    }
    assert!(
        worst.1 > 10.0 * worst.0,
        "linear error {} should dwarf exponential {}",
        worst.1,
        worst.0
    );
}

/// §2.4: inner-product evaluation touches at most 3 log N nodes, however
/// long the query.
#[test]
fn claim_node_budget() {
    let n = 1024;
    let mut tree = SwatTree::new(SwatConfig::new(n).expect("valid"));
    tree.extend(Dataset::Synthetic.series(5, 3 * n));
    for m in [1usize, 10, 100, 1000] {
        let q = InnerProductQuery::exponential(m, 1e9);
        let a = tree.inner_product(&q).expect("warm");
        assert!(a.nodes_used <= 30, "m={m}: used {} nodes", a.nodes_used);
    }
}

/// §2.7: "the performance of SWAT does not depend on ε" — SWAT's error is
/// identical whatever the histogram knob; the histogram's work changes.
#[test]
fn claim_swat_independent_of_epsilon() {
    use swat::histogram::approximate_voptimal;
    let data = Dataset::Weather.series(6, 512);
    let coarse = approximate_voptimal(&data, 16, 1.0);
    let fine = approximate_voptimal(&data, 16, 0.001);
    // Finer epsilon gives an (often strictly) better histogram...
    assert!(fine.sse() <= coarse.sse() + 1e-9);
    // ...while SWAT has no such knob: nothing to assert but the absence,
    // which the config type itself documents (no epsilon field).
}
