//! Cross-crate integration: the distributed replication stack — network
//! topologies, the simulation harness, and all three schemes on shared
//! workloads.

use swat::data::Dataset;
use swat::net::Topology;
use swat::replication::harness::{run, run_scheme, WorkloadConfig};
use swat::replication::{asr::SwatAsr, SchemeKind};

fn cfg(window: usize, t_data: u64, t_query: u64, delta: f64) -> WorkloadConfig {
    WorkloadConfig {
        window,
        t_data,
        t_query,
        delta,
        horizon: 3_000,
        warmup: 600,
        seed: 17,
        ..WorkloadConfig::default()
    }
}

#[test]
fn identical_workloads_replay_identically_across_topologies() {
    for topo in [
        Topology::single_client(),
        Topology::chain(3),
        Topology::star(4),
        Topology::complete_binary(2),
    ] {
        let data = Dataset::Weather.series(3, 1600);
        let c = cfg(32, 2, 1, 25.0);
        for kind in SchemeKind::ALL {
            let a = run(kind, &topo, &data, &c);
            let b = run(kind, &topo, &data, &c);
            assert_eq!(
                a.ledger,
                b.ledger,
                "{} on {} clients",
                kind.name(),
                topo.client_count()
            );
            assert_eq!(a.approximations, b.approximations);
        }
    }
}

#[test]
fn asr_wins_on_read_heavy_workloads_across_topologies() {
    // The paper's §5 headline: SWAT-ASR needs fewer messages than both
    // per-item baselines, and the gap holds as the network grows.
    for topo in [Topology::single_client(), Topology::complete_binary(2)] {
        let data = Dataset::Weather.series(5, 1600);
        let c = cfg(32, 4, 1, 25.0);
        let asr = run(SchemeKind::SwatAsr, &topo, &data, &c);
        let dc = run(SchemeKind::DivergenceCaching, &topo, &data, &c);
        let aps = run(SchemeKind::AdaptivePrecision, &topo, &data, &c);
        assert!(
            asr.ledger.total() < dc.ledger.total() && asr.ledger.total() < aps.ledger.total(),
            "{} clients: ASR {} vs DC {} vs APS {}",
            topo.client_count(),
            asr.ledger.total(),
            dc.ledger.total(),
            aps.ledger.total()
        );
    }
}

#[test]
fn message_cost_grows_with_precision_for_every_scheme() {
    let topo = Topology::single_client();
    let data = Dataset::Weather.series(7, 1600);
    for kind in SchemeKind::ALL {
        let loose = run(kind, &topo, &data, &cfg(32, 2, 1, 120.0));
        let tight = run(kind, &topo, &data, &cfg(32, 2, 1, 2.0));
        assert!(
            tight.ledger.total() >= loose.ledger.total(),
            "{}: tight {} < loose {}",
            kind.name(),
            tight.ledger.total(),
            loose.ledger.total()
        );
    }
}

#[test]
fn asr_invariants_hold_under_the_full_harness() {
    // Run SWAT-ASR through the harness, then probe its public state: the
    // replication scheme of every segment must be a connected subtree
    // containing the source, and every cached range must enclose the
    // segment's true values.
    let topo = Topology::complete_binary(2);
    let data = Dataset::Synthetic.series(9, 1600);
    let c = cfg(64, 2, 1, 200.0);
    let mut asr = SwatAsr::new(topo.clone(), c.window);
    let _ = run_scheme(&mut asr, &topo, &data, &c);
    for seg in 0..asr.segments().len() {
        let holders = asr.replica_holders(seg);
        assert!(!holders.is_empty(), "source always holds segment {seg}");
        assert!(holders.contains(&swat::net::NodeId::SOURCE));
        for &h in &holders {
            if let Some(p) = topo.parent(h) {
                assert!(
                    holders.contains(&p),
                    "disconnected holder {h} for segment {seg}"
                );
            }
        }
        let truth = asr.exact_segment_range(seg).expect("window is full");
        for node in topo.nodes() {
            if let Some(cached) = asr.cached_range(node, seg) {
                assert!(
                    cached.encloses(&truth),
                    "node {node} segment {seg}: {cached} does not enclose {truth}"
                );
            }
        }
    }
}

#[test]
fn deeper_trees_cost_more_for_per_item_schemes() {
    // DC/APS pay per-edge per-item; their cost grows with client count
    // much faster than SWAT-ASR's.
    let data = Dataset::Weather.series(4, 1600);
    let c = cfg(32, 2, 1, 30.0);
    let small = Topology::complete_binary(1); // 2 clients
    let big = Topology::complete_binary(3); // 14 clients
    for kind in SchemeKind::ALL {
        let s = run(kind, &small, &data, &c).ledger.total();
        let b = run(kind, &big, &data, &c).ledger.total();
        assert!(b > s, "{}: {b} !> {s}", kind.name());
    }
    let asr_ratio = run(SchemeKind::SwatAsr, &big, &data, &c).ledger.total() as f64
        / run(SchemeKind::SwatAsr, &small, &data, &c).ledger.total() as f64;
    let dc_ratio = run(SchemeKind::DivergenceCaching, &big, &data, &c)
        .ledger
        .total() as f64
        / run(SchemeKind::DivergenceCaching, &small, &data, &c)
            .ledger
            .total() as f64;
    assert!(
        asr_ratio < dc_ratio,
        "ASR should scale better: {asr_ratio:.2} vs DC {dc_ratio:.2}"
    );
}

#[test]
fn warmup_messages_are_reported_separately() {
    let topo = Topology::single_client();
    let data = Dataset::Weather.series(2, 1600);
    let out = run(SchemeKind::SwatAsr, &topo, &data, &cfg(32, 2, 1, 25.0));
    assert!(out.warmup_ledger.total() > 0, "warm-up traffic exists");
    // Metrics only cover the measured interval.
    let expected_queries = 3_000 - 600;
    let got = out.metrics.counter("queries");
    assert!(
        (got as i64 - expected_queries as i64).abs() <= 2,
        "expected ~{expected_queries} measured queries, got {got}"
    );
}
