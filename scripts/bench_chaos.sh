#!/usr/bin/env bash
# Regenerate results/BENCH_chaos.json — SWAT-ASR message cost and answer
# quality under deterministic fault injection (drop rate × delay, with
# crash-window variants). Pass --quick for a fast smoke-sized grid; any
# extra flags are forwarded to the CLI (see `swat help`, CHAOS section,
# for the sweep options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- chaos --out results/BENCH_chaos.json "$@"
