#!/usr/bin/env bash
# Regenerate results/BENCH_daemon.json — request latency (p50/p99) and
# throughput against a real-TCP localhost cluster, measured twice: a
# clean phase and a phase with one replica killed mid-run. Every answer
# is checked against an in-process oracle; the run fails on any wrong
# answer (explicit degradation — failed_shards, Unavailable, incomplete
# top-k — is expected and counted, silent loss is not). Pass --quick
# for a smoke-sized run; extra flags are forwarded to the CLI (see
# `swat help`, DAEMON-BENCH section).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- daemon-bench --out results/BENCH_daemon.json "$@"
