#!/usr/bin/env bash
# Regenerate results/BENCH_failover.json — what killing the LEADER of a
# full failover cluster costs: election latency, the unavailability
# window (kill → first re-acked ingest), and the answered fraction
# before/during/after, measured against a real-TCP localhost cluster
# with term-based elections and epoch-fenced standby promotion. The
# quiesced phases are oracle-checked bit-exactly; the run fails unless
# the cluster re-elects, re-acks, and answers with zero wrong answers.
# Pass --quick for a smoke-sized run; extra flags are forwarded to the
# CLI (see `swat help`, FAILOVER-BENCH section).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- failover-bench --out results/BENCH_failover.json "$@"
