#!/usr/bin/env bash
# Regenerate results/BENCH_store.json — the tiered swat-store under
# load and under injected disk faults: per-push latency while segments
# freeze, flush, and compact in the background (the non-blocking
# checkpoint claim, with scheduler preemption classified separately
# from genuine blocking), and an ENOSPC/EIO/torn-write × crash-point
# grid that must recover every cell with zero acked-row loss. Pass
# --quick for a fast smoke-sized run; any extra flags are forwarded to
# the CLI (see `swat help`, STORE-BENCH section, for the options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- store-bench --out results/BENCH_store.json "$@"
