#!/usr/bin/env bash
# Regenerate results/BENCH_ingest.json — the ingestion-throughput
# regression baseline (per-push vs the frozen scalar reference vs the
# blocked batch cascade, swept across chunk caps, vs sharded
# multi-stream ingest swept across stream counts). The JSON summary's
# batch_ge_reference records whether the blocked path beat the frozen
# reference at every grid point in this same run. Pass --quick for a
# fast smoke-sized grid; any extra flags are forwarded to the CLI (see
# `swat help`, INGEST-BENCH section, for the grid options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- ingest-bench --out results/BENCH_ingest.json "$@"

grep -q '"batch_ge_reference": true' results/BENCH_ingest.json || {
    echo "bench_ingest: blocked batch path did not beat the frozen reference" >&2
    exit 1
}
