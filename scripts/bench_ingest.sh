#!/usr/bin/env bash
# Regenerate results/BENCH_ingest.json — the ingestion-throughput
# regression baseline (per-push vs batched vs sharded). Pass --quick for
# a fast smoke-sized grid; any extra flags are forwarded to the CLI
# (see `swat help`, INGEST-BENCH section, for the grid options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- ingest-bench --out results/BENCH_ingest.json "$@"
