#!/usr/bin/env bash
# Regenerate results/BENCH_query.json — the query-serving throughput
# baseline (reference vs the zero-allocation engine vs the wavelet-domain
# kernel, plus the parallel multi-stream fan-out sweep). The run fails if
# any fast path disagrees with the reference answers. Pass --quick for a
# fast smoke-sized grid; any extra flags are forwarded to the CLI (see
# `swat help`, QUERY-BENCH section, for the grid options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- query-bench --out results/BENCH_query.json "$@"
