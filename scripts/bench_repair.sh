#!/usr/bin/env bash
# Regenerate results/BENCH_repair.json — self-healing vs static tree
# under interior crashes (topology × crash-duration grid). The run fails
# unless the healed driver answers strictly more measured queries than
# the static one in every cell, at zero correctness violations. Pass
# --quick for a fast smoke-sized grid; any extra flags are forwarded to
# the CLI (see `swat help`, REPAIR-BENCH section, for the sweep options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- repair-bench --out results/BENCH_repair.json "$@"
