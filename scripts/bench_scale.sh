#!/usr/bin/env bash
# Regenerate results/BENCH_scale.json — the sharded many-stream sweep:
# ingest rows/sec, per-stream fixed memory cost, and the latency of the
# exact two-round distributed top-k merge, up to 100k streams. Cases at
# or below --verify-limit streams are checked against the unsharded
# StreamSet oracle (bit-identical digests and an exact top-k match);
# the run fails on any disagreement. Pass --quick for a fast
# smoke-sized sweep (oracle-verified throughout); any extra flags are
# forwarded to the CLI (see `swat help`, SCALE-BENCH section).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- scale-bench --out results/BENCH_scale.json "$@"
