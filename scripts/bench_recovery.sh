#!/usr/bin/env bash
# Regenerate results/BENCH_recovery.json — crash recovery over the
# swat-store durability layer: clean-crash recovery time, seeded
# fault-injected recovery trials (bit flips, torn writes, deletions),
# and the messages a checkpointed restart saves the chaos driver. Pass
# --quick for a fast smoke-sized run; any extra flags are forwarded to
# the CLI (see `swat help`, RECOVERY-BENCH section, for the options).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p swat-cli -- recovery-bench --out results/BENCH_recovery.json "$@"
