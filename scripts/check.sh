#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== chaos smoke (fault injection, quick grid) =="
cargo run --release -q -p swat-cli -- chaos --quick --out target/chaos-smoke.json >/dev/null
echo "chaos smoke clean (target/chaos-smoke.json)"

echo "== recovery smoke (checkpoint, crash, fault-injected recovery) =="
cargo run --release -q -p swat-cli -- recovery-bench --quick \
    --out target/recovery-smoke.json >/dev/null
grep -q '"bench": "recovery"' target/recovery-smoke.json
grep -q '"digest_match": true' target/recovery-smoke.json
grep -q '"violations": 0' target/recovery-smoke.json
echo "recovery smoke clean (target/recovery-smoke.json)"

echo "== query-bench smoke (tiny grid, fast-vs-slow agreement) =="
cargo run --release -q -p swat-cli -- query-bench --quick \
    --points 500 --inners 20 --ranges 5 \
    --out target/query-smoke.json >/dev/null
grep -q '"bench": "query"' target/query-smoke.json
grep -q '"agreement": true' target/query-smoke.json
echo "query-bench smoke clean (target/query-smoke.json)"

echo "== repair smoke (self-healing vs static, quick grid) =="
cargo run --release -q -p swat-cli -- repair-bench --quick \
    --out target/repair-smoke.json >/dev/null
grep -q '"bench": "repair"' target/repair-smoke.json
grep -q '"all_dominate": true' target/repair-smoke.json
if grep -q '"violations": [^0]' target/repair-smoke.json; then
    echo "repair smoke found correctness violations" >&2
    exit 1
fi
echo "repair smoke clean (target/repair-smoke.json)"

echo "== scale smoke (sharded ingest vs unsharded oracle, quick sweep) =="
cargo run --release -q -p swat-cli -- scale-bench --quick \
    --out target/scale-smoke.json >/dev/null
grep -q '"bench": "scale"' target/scale-smoke.json
grep -q '"all_agree": true' target/scale-smoke.json
if grep -q '"oracle_agrees": false' target/scale-smoke.json; then
    echo "scale smoke found an oracle disagreement" >&2
    exit 1
fi
echo "scale smoke clean (target/scale-smoke.json)"

echo "OK: fmt, clippy, tier-1, chaos, recovery, query-bench, repair, and scale smokes all green"
