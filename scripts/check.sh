#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== workspace tests (every crate, release binaries for the smokes) =="
cargo test -q --workspace
cargo build --release -p swat-cli # swat + swatd binaries for the daemon smoke

echo "== ingest equivalence (blocked path vs frozen scalar reference) =="
cargo test -q -p swat-tree --test ingest_equivalence
cargo test -q -p swat-tree --test ingest_alloc
echo "ingest equivalence clean (bit-identity + zero-alloc steady state)"

echo "== ingest-bench smoke (blocked batch must beat frozen reference) =="
cargo run --release -q -p swat-cli -- ingest-bench --quick \
    --values 262144 --windows 1024 --coeffs 1,8 \
    --out target/ingest-smoke.json >/dev/null
grep -q '"bench": "ingest"' target/ingest-smoke.json
grep -q '"batch_ge_reference": true' target/ingest-smoke.json
echo "ingest smoke clean (target/ingest-smoke.json)"

echo "== chaos smoke (fault injection, quick grid) =="
cargo run --release -q -p swat-cli -- chaos --quick --out target/chaos-smoke.json >/dev/null
echo "chaos smoke clean (target/chaos-smoke.json)"

echo "== recovery smoke (checkpoint, crash, fault-injected recovery) =="
cargo run --release -q -p swat-cli -- recovery-bench --quick \
    --out target/recovery-smoke.json >/dev/null
grep -q '"bench": "recovery"' target/recovery-smoke.json
grep -q '"digest_match": true' target/recovery-smoke.json
grep -q '"violations": 0' target/recovery-smoke.json
echo "recovery smoke clean (target/recovery-smoke.json)"

echo "== store fuzz smoke (segment/manifest/WAL corruption, typed errors only) =="
cargo test -q -p swat-store --test corruption_fuzz
echo "store fuzz clean (every injected corruption -> typed error or verified prefix)"

echo "== compaction smoke (crash at every flush/compaction step, digests bit-exact) =="
cargo test -q -p swat-store --test crash_points
cargo test -q -p swat-store --lib compaction
echo "compaction smoke clean (crash-mid-compaction leaves inputs and manifest intact)"

echo "== store-bench smoke (non-blocking flush + injected-fault grid) =="
cargo run --release -q -p swat-cli -- store-bench --quick \
    --out target/store-smoke.json >/dev/null
grep -q '"bench": "store"' target/store-smoke.json
grep -q '"flush_nonblocking": true' target/store-smoke.json
grep -q '"acked_rows_lost": 0' target/store-smoke.json
grep -q '"digest_mismatches": 0' target/store-smoke.json
grep -q '"panics": 0' target/store-smoke.json
echo "store-bench smoke clean (target/store-smoke.json)"

echo "== query-bench smoke (tiny grid, fast-vs-slow agreement) =="
cargo run --release -q -p swat-cli -- query-bench --quick \
    --points 500 --inners 20 --ranges 5 \
    --out target/query-smoke.json >/dev/null
grep -q '"bench": "query"' target/query-smoke.json
grep -q '"agreement": true' target/query-smoke.json
echo "query-bench smoke clean (target/query-smoke.json)"

echo "== repair smoke (self-healing vs static, quick grid) =="
cargo run --release -q -p swat-cli -- repair-bench --quick \
    --out target/repair-smoke.json >/dev/null
grep -q '"bench": "repair"' target/repair-smoke.json
grep -q '"all_dominate": true' target/repair-smoke.json
if grep -q '"violations": [^0]' target/repair-smoke.json; then
    echo "repair smoke found correctness violations" >&2
    exit 1
fi
echo "repair smoke clean (target/repair-smoke.json)"

echo "== scale smoke (sharded ingest vs unsharded oracle, quick sweep) =="
cargo run --release -q -p swat-cli -- scale-bench --quick \
    --out target/scale-smoke.json >/dev/null
grep -q '"bench": "scale"' target/scale-smoke.json
grep -q '"all_agree": true' target/scale-smoke.json
if grep -q '"oracle_agrees": false' target/scale-smoke.json; then
    echo "scale smoke found an oracle disagreement" >&2
    exit 1
fi
echo "scale smoke clean (target/scale-smoke.json)"

echo "== daemon smoke (2-node TCP cluster, SIGTERM drain, clean checkpoint) =="
SMOKE_DIR=$(mktemp -d)
cleanup_daemon_smoke() {
    kill "${LEADER_PID:-}" "${REPLICA_PID:-}" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_daemon_smoke EXIT
./target/release/swatd --role replica --shard 0 --shards 1 --streams 4 \
    --window 16 --dir "$SMOKE_DIR/store" \
    --port-file "$SMOKE_DIR/replica.addr" >"$SMOKE_DIR/replica.log" &
REPLICA_PID=$!
for _ in $(seq 100); do [ -s "$SMOKE_DIR/replica.addr" ] && break; sleep 0.05; done
REPLICA_ADDR=$(head -n1 "$SMOKE_DIR/replica.addr")
./target/release/swatd --role leader --shards 1 --streams 4 \
    --window 16 --replica "$REPLICA_ADDR" \
    --port-file "$SMOKE_DIR/leader.addr" >"$SMOKE_DIR/leader.log" &
LEADER_PID=$!
for _ in $(seq 100); do [ -s "$SMOKE_DIR/leader.addr" ] && break; sleep 0.05; done
LEADER_ADDR=$(head -n1 "$SMOKE_DIR/leader.addr")
./target/release/swat client --addr "$LEADER_ADDR" \
    --ingest 1,2,3,4 --ingest 5,6,7,8 \
    --point 0:0 --top-k 2 --status >"$SMOKE_DIR/client.log"
grep -q 'applied req_id=0 duplicate=false' "$SMOKE_DIR/client.log"
grep -q 'applied req_id=1 duplicate=false' "$SMOKE_DIR/client.log"
grep -q '^point\[0:0\]: value=' "$SMOKE_DIR/client.log"
grep -q '^top-k\[2\]: complete' "$SMOKE_DIR/client.log"
if grep -Eq 'DEGRADED|OVERLOADED|UNAVAILABLE|ERROR' "$SMOKE_DIR/client.log"; then
    echo "daemon smoke: a request degraded on a healthy cluster" >&2
    cat "$SMOKE_DIR/client.log" >&2
    exit 1
fi
kill -TERM "$LEADER_PID" && wait "$LEADER_PID"
kill -TERM "$REPLICA_PID" && wait "$REPLICA_PID"
grep -q 'checkpointed: true' "$SMOKE_DIR/replica.log"
grep -q 'swatd: drained' "$SMOKE_DIR/leader.log"
trap - EXIT
cleanup_daemon_smoke
echo "daemon smoke clean (ingest, point, top-k, drain, checkpoint)"

echo "== daemon bench smoke (real-TCP latency, one replica killed) =="
cargo run --release -q -p swat-cli -- daemon-bench --quick \
    --out target/daemon-smoke.json >/dev/null
grep -q '"bench": "daemon"' target/daemon-smoke.json
grep -q '"zero_wrong_answers": true' target/daemon-smoke.json
echo "daemon bench smoke clean (target/daemon-smoke.json)"

echo "== failover smoke (3-node cluster, LEADER killed, re-election) =="
# Kills the leader of a real-TCP failover cluster mid-run; the command
# itself fails unless a survivor claims a new term, every retried row
# re-acks, and the recovered cluster answers bit-exactly (zero wrong
# answers over the acked prefix).
cargo run --release -q -p swat-cli -- failover-bench --quick \
    --out target/failover-smoke.json >/dev/null
grep -q '"bench": "failover"' target/failover-smoke.json
grep -q '"recovered": true' target/failover-smoke.json
grep -q '"zero_wrong_answers": true' target/failover-smoke.json
echo "failover smoke clean (target/failover-smoke.json)"

echo "OK: fmt, clippy, tier-1, ingest, chaos, recovery, store, query-bench, repair, scale, daemon, and failover smokes all green"
