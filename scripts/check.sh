#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== chaos smoke (fault injection, quick grid) =="
cargo run --release -q -p swat-cli -- chaos --quick --out target/chaos-smoke.json >/dev/null
echo "chaos smoke clean (target/chaos-smoke.json)"

echo "OK: fmt, clippy, tier-1, and chaos smoke all green"
