//! Property-based tests for the wavelet substrate.

use proptest::prelude::*;
use swat_wavelet::{daubechies, haar, ortho, HaarCoeffs};

/// A random power-of-two-length signal with values in a bounded range.
fn signal(max_log: u32) -> impl Strategy<Value = Vec<f64>> {
    (0..=max_log).prop_flat_map(|log| {
        let n = 1usize << log;
        prop::collection::vec(-1000.0..1000.0f64, n..=n)
    })
}

proptest! {
    #[test]
    fn haar_roundtrip(sig in signal(9)) {
        let coeffs = haar::forward(&sig).unwrap();
        let back = haar::inverse(&coeffs, sig.len()).unwrap();
        for (a, b) in sig.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn ortho_roundtrip_and_parseval(sig in signal(9)) {
        let coeffs = ortho::forward(&sig).unwrap();
        let back = ortho::inverse(&coeffs, sig.len()).unwrap();
        for (a, b) in sig.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        let e1 = ortho::energy(&sig);
        let e2 = ortho::energy(&coeffs);
        prop_assert!((e1 - e2).abs() <= 1e-6 * e1.max(1.0));
    }

    #[test]
    fn daubechies_roundtrip(sig in signal(9)) {
        let coeffs = daubechies::forward(&sig).unwrap();
        let back = daubechies::inverse(&coeffs).unwrap();
        for (a, b) in sig.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn haar_point_agrees_with_inverse(sig in signal(8), k in 1usize..64) {
        let coeffs = haar::forward(&sig).unwrap();
        let k = k.min(coeffs.len());
        let full = haar::inverse(&coeffs[..k], sig.len()).unwrap();
        for (idx, &f) in full.iter().enumerate() {
            let p = haar::point(&coeffs[..k], sig.len(), idx).unwrap();
            prop_assert!((p - f).abs() < 1e-6);
        }
    }

    /// The heart of the SWAT update: merging truncated summaries of two
    /// halves equals transforming the concatenation and truncating.
    #[test]
    fn merge_commutes_with_truncation(
        halves in (0u32..=7).prop_flat_map(|log| {
            let n = 1usize << log;
            (
                prop::collection::vec(-100.0..100.0f64, n..=n),
                prop::collection::vec(-100.0..100.0f64, n..=n),
            )
        }),
        k in 1usize..32,
    ) {
        let (x, y) = halves;
        let newer = HaarCoeffs::from_signal(&x, k).unwrap();
        let older = HaarCoeffs::from_signal(&y, k).unwrap();
        let merged = HaarCoeffs::merge(&newer, &older, k).unwrap();
        let mut combined = x.clone();
        combined.extend_from_slice(&y);
        let direct = HaarCoeffs::from_signal(&combined, k).unwrap();
        prop_assert_eq!(merged.len(), direct.len());
        prop_assert_eq!(merged.stored(), direct.stored());
        for (a, b) in merged.coefficients().iter().zip(direct.coefficients()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Reconstruction error shrinks (weakly) as more coefficients are kept.
    #[test]
    fn more_coefficients_never_hurt_l2_error(sig in signal(6)) {
        let n = sig.len();
        let mut prev_err = f64::INFINITY;
        for k in 1..=n {
            let c = HaarCoeffs::from_signal(&sig, k).unwrap();
            let rec = c.reconstruct();
            let err: f64 = sig.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum();
            // Haar BFS prefixes are orthogonal projections onto nested
            // subspaces, so error is monotone nonincreasing in k.
            prop_assert!(err <= prev_err + 1e-6, "k={} err={} prev={}", k, err, prev_err);
            prev_err = err;
        }
        prop_assert!(prev_err < 1e-6, "full reconstruction must be exact");
    }

    /// The average survives any truncation exactly.
    #[test]
    fn average_invariant(sig in signal(8), k in 1usize..16) {
        let mean = sig.iter().sum::<f64>() / sig.len() as f64;
        let c = HaarCoeffs::from_signal(&sig, k).unwrap();
        prop_assert!((c.average() - mean).abs() < 1e-6);
        let rec = c.reconstruct();
        let rec_mean = rec.iter().sum::<f64>() / rec.len() as f64;
        prop_assert!((rec_mean - mean).abs() < 1e-6);
    }
}
