//! Orthonormal Haar transform.
//!
//! The non-normalized transform in [`crate::haar`] is the one the paper
//! uses (averages are directly interpretable as segment summaries), but the
//! orthonormal variant — scaling both outputs by `1/sqrt(2)` instead of
//! `1/2` — preserves the signal's L2 energy (Parseval's identity), which is
//! the form used when reasoning about largest-`B`-coefficient synopses
//! (e.g. Gilbert et al., VLDB'01, discussed in the paper's related work).
//! We provide it for completeness and for energy-based extensions.

use crate::error::WaveletError;
use crate::{is_power_of_two, log2};

const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Full multilevel orthonormal forward transform, breadth-first coefficient
/// order (same layout as [`crate::haar::forward`]).
///
/// # Errors
///
/// Returns [`WaveletError::NotPowerOfTwo`] unless `signal.len()` is a
/// nonzero power of two.
pub fn forward(signal: &[f64]) -> Result<Vec<f64>, WaveletError> {
    let n = signal.len();
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let depth = log2(n) as usize;
    let mut out = vec![0.0; n];
    let mut current = signal.to_vec();
    for pass in 1..=depth {
        let m = current.len() / 2;
        let mut avg = vec![0.0; m];
        let offset = 1usize << (depth - pass);
        for i in 0..m {
            let a = current[2 * i];
            let b = current[2 * i + 1];
            avg[i] = (a + b) * SQRT2_INV;
            out[offset + i] = (a - b) * SQRT2_INV;
        }
        current = avg;
    }
    out[0] = current[0];
    Ok(out)
}

/// Full multilevel orthonormal inverse transform; zero-pads coefficient
/// vectors shorter than `n`.
///
/// # Errors
///
/// Returns [`WaveletError::NotPowerOfTwo`] unless `n` is a nonzero power of
/// two, and [`WaveletError::TooShort`] if `coeffs` is empty.
pub fn inverse(coeffs: &[f64], n: usize) -> Result<Vec<f64>, WaveletError> {
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    if coeffs.is_empty() {
        return Err(WaveletError::TooShort { len: 0, min: 1 });
    }
    let depth = log2(n) as usize;
    let mut current = vec![coeffs[0]];
    for d in 1..=depth {
        let m = current.len();
        let offset = 1usize << (d - 1);
        let mut next = vec![0.0; 2 * m];
        for i in 0..m {
            let det = coeffs.get(offset + i).copied().unwrap_or(0.0);
            next[2 * i] = (current[i] + det) * SQRT2_INV;
            next[2 * i + 1] = (current[i] - det) * SQRT2_INV;
        }
        current = next;
    }
    Ok(current)
}

/// L2 energy of a slice: the sum of squares.
pub fn energy(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sig: Vec<f64> = (0..256).map(|i| ((i * 17) % 23) as f64 - 11.0).collect();
        let coeffs = forward(&sig).unwrap();
        let back = inverse(&coeffs, 256).unwrap();
        for (a, b) in sig.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let sig: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).cos() * 5.0).collect();
        let coeffs = forward(&sig).unwrap();
        let e_sig = energy(&sig);
        let e_coeffs = energy(&coeffs);
        assert!(
            (e_sig - e_coeffs).abs() < 1e-6 * e_sig.max(1.0),
            "energy {e_sig} vs {e_coeffs}"
        );
    }

    #[test]
    fn truncation_error_equals_dropped_energy() {
        // Parseval: the squared L2 reconstruction error from dropping a set
        // of orthonormal coefficients equals the sum of their squares.
        let sig: Vec<f64> = (0..64).map(|i| ((i * i) % 31) as f64).collect();
        let coeffs = forward(&sig).unwrap();
        let k = 9;
        let approx = inverse(&coeffs[..k], 64).unwrap();
        let err: f64 = sig
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let dropped: f64 = coeffs[k..].iter().map(|c| c * c).sum();
        assert!((err - dropped).abs() < 1e-6 * dropped.max(1.0));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(forward(&[1.0, 2.0, 3.0]).is_err());
        assert!(inverse(&[1.0], 3).is_err());
        assert!(inverse(&[], 4).is_err());
    }
}
