//! Largest-`k` (thresholded) wavelet synopses.
//!
//! The related work the SWAT paper builds on (Gilbert, Kotidis,
//! Muthukrishnan & Strauss, VLDB'01) summarizes a stream "through its
//! largest B wavelet coefficients". This module provides that synopsis
//! for a static signal: keep the `k` coefficients of largest *weighted*
//! magnitude (orthonormal weighting, so retained energy — and hence L2
//! error — is optimal among all k-subsets), remembering their positions.
//!
//! The contrast with [`crate::HaarCoeffs`] is the point: largest-`k`
//! minimizes L2 error for a *fixed* signal, but the retained positions
//! depend on the data, so two siblings' syntheses cannot be merged into
//! their parent's within `O(k)` — which is why the SWAT tree uses the
//! mergeable coarsest-prefix form instead. The `summary_k` benchmark
//! group and the unit tests below quantify what that trade costs.

use crate::error::WaveletError;
use crate::{haar, is_power_of_two, log2};

/// A largest-`k` Haar synopsis of a signal: sparse (position, value)
/// pairs in the non-normalized BFS coefficient space.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdedCoeffs {
    len: usize,
    /// (BFS position, non-normalized coefficient), sorted by position.
    entries: Vec<(u32, f64)>,
}

impl ThresholdedCoeffs {
    /// Keep the `k` coefficients of `signal` with the largest orthonormal
    /// (energy) magnitude. Ties broken toward coarser coefficients.
    ///
    /// # Errors
    ///
    /// [`WaveletError::NotPowerOfTwo`] / [`WaveletError::ZeroBudget`] as
    /// for [`crate::HaarCoeffs::from_signal`].
    pub fn from_signal(signal: &[f64], k: usize) -> Result<Self, WaveletError> {
        if k == 0 {
            return Err(WaveletError::ZeroBudget);
        }
        let n = signal.len();
        let coeffs = haar::forward(signal)?;
        // Energy weight of a BFS coefficient at depth d over a signal of
        // 2^depth values: the non-normalized coefficient c corresponds to
        // an orthonormal coefficient c * sqrt(block), where block is the
        // number of samples the basis vector spans.
        let depth = log2(n) as usize;
        let mut weighted: Vec<(usize, f64, f64)> = coeffs
            .iter()
            .enumerate()
            .map(|(pos, &c)| {
                let d = if pos == 0 {
                    0
                } else {
                    (usize::BITS - 1 - pos.leading_zeros()) as usize + 1
                };
                // Depth-d detail spans 2^(depth - d + 1) samples; the root
                // spans all 2^depth.
                let span = if pos == 0 {
                    n as f64
                } else {
                    (1usize << (depth + 1 - d)) as f64
                };
                (pos, c, c.abs() * span.sqrt())
            })
            .collect();
        weighted.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite energies")
                .then(a.0.cmp(&b.0))
        });
        let mut entries: Vec<(u32, f64)> = weighted
            .into_iter()
            .take(k.min(n))
            .map(|(pos, c, _)| (pos as u32, c))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        Ok(ThresholdedCoeffs { len: n, entries })
    }

    /// Length of the summarized signal.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never empty (construction keeps at least one coefficient).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of retained coefficients.
    pub fn stored(&self) -> usize {
        self.entries.len()
    }

    /// The retained (BFS position, coefficient) pairs, by position.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Reconstruct the approximate signal (missing coefficients are
    /// zero).
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut dense = vec![0.0; self.len];
        for &(pos, c) in &self.entries {
            dense[pos as usize] = c;
        }
        haar::inverse(&dense, self.len).expect("len is a power of two")
    }

    /// Value at position `idx` in `O(k + log n)` (walks the retained
    /// coefficients on the root-to-leaf path).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn value_at(&self, idx: usize) -> f64 {
        assert!(idx < self.len, "index {idx} out of bounds");
        let depth = log2(self.len) as usize;
        let mut value = 0.0;
        for &(pos, c) in &self.entries {
            let pos = pos as usize;
            if pos == 0 {
                value += c;
                continue;
            }
            let d = (usize::BITS - 1 - pos.leading_zeros()) as usize + 1;
            let block = idx >> (depth - d);
            if (1usize << (d - 1)) + (block >> 1) == pos {
                if block & 1 == 0 {
                    value += c;
                } else {
                    value -= c;
                }
            }
        }
        value
    }

    /// Squared L2 reconstruction error against the original signal.
    pub fn l2_error(&self, signal: &[f64]) -> f64 {
        assert!(is_power_of_two(signal.len()) && signal.len() == self.len);
        let rec = self.reconstruct();
        signal
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HaarCoeffs;

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37) % 23) as f64 + if i == n / 2 { 100.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn full_budget_is_lossless() {
        let sig = test_signal(64);
        let t = ThresholdedCoeffs::from_signal(&sig, 64).unwrap();
        assert!(t.l2_error(&sig) < 1e-9);
        for (i, &v) in sig.iter().enumerate() {
            assert!((t.value_at(i) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn value_at_matches_reconstruct() {
        let sig = test_signal(128);
        for k in [1usize, 4, 17, 64] {
            let t = ThresholdedCoeffs::from_signal(&sig, k).unwrap();
            let rec = t.reconstruct();
            for (i, &v) in rec.iter().enumerate() {
                assert!((t.value_at(i) - v).abs() < 1e-9, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn beats_or_ties_prefix_k_in_l2() {
        // The whole point: for the same budget, largest-k (energy-
        // weighted) L2 error <= coarsest-prefix L2 error.
        let sig = test_signal(256);
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            let thresholded = ThresholdedCoeffs::from_signal(&sig, k).unwrap();
            let prefix = HaarCoeffs::from_signal(&sig, k).unwrap();
            let e_thresh = thresholded.l2_error(&sig);
            let rec = prefix.reconstruct();
            let e_prefix: f64 = sig.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(
                e_thresh <= e_prefix + 1e-6,
                "k={k}: thresholded {e_thresh} > prefix {e_prefix}"
            );
        }
    }

    #[test]
    fn spike_is_captured_early() {
        // A lone spike holds most of the energy; largest-k finds it with
        // a tiny budget while prefix-k needs full depth.
        let mut sig = vec![10.0; 64];
        sig[20] = 500.0;
        let t = ThresholdedCoeffs::from_signal(&sig, 8).unwrap();
        assert!(
            (t.value_at(20) - 500.0).abs() < 60.0,
            "spike reconstructed as {}",
            t.value_at(20)
        );
        let p = HaarCoeffs::from_signal(&sig, 8).unwrap();
        assert!(
            (p.value_at(20) - 500.0).abs() > (t.value_at(20) - 500.0).abs(),
            "prefix-k should be worse at the spike"
        );
    }

    #[test]
    fn error_monotone_in_budget() {
        let sig = test_signal(128);
        let mut prev = f64::INFINITY;
        for k in 1..=128 {
            let e = ThresholdedCoeffs::from_signal(&sig, k)
                .unwrap()
                .l2_error(&sig);
            assert!(e <= prev + 1e-9, "k={k}");
            prev = e;
        }
    }

    #[test]
    fn validation() {
        assert!(ThresholdedCoeffs::from_signal(&[1.0; 3], 2).is_err());
        assert!(ThresholdedCoeffs::from_signal(&[1.0; 4], 0).is_err());
        let t = ThresholdedCoeffs::from_signal(&[5.0], 3).unwrap();
        assert_eq!(t.stored(), 1);
        assert_eq!(t.len(), 1);
    }
}
