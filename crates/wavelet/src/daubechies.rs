//! Periodic Daubechies-4 (D4) transform.
//!
//! The SWAT paper notes that the approximation tree can use "any of the
//! wavelet bases such as Haar, Daubechies, Coiflets, Symlets and Meyer".
//! This module provides the classic four-tap Daubechies filter with
//! periodic boundary handling as a second, smoother basis. It is exposed
//! for experimentation; the tree itself uses the Haar machinery because
//! Haar admits the exact O(k) sibling merge that makes the incremental
//! update O(1) amortized.
//!
//! Coefficients are emitted in *pyramid* order: the final (coarsest)
//! approximation block first, followed by detail blocks from coarsest to
//! finest.

use crate::error::WaveletError;
use crate::is_power_of_two;

// The four D4 scaling filter taps.
const H: [f64; 4] = [
    0.482_962_913_144_690_2,   // (1 + sqrt(3)) / (4 sqrt(2))
    0.836_516_303_737_469,     // (3 + sqrt(3)) / (4 sqrt(2))
    0.224_143_868_041_857_36,  // (3 - sqrt(3)) / (4 sqrt(2))
    -0.129_409_522_550_921_42, // (1 - sqrt(3)) / (4 sqrt(2))
];
// Wavelet filter: g[i] = (-1)^i h[3 - i].
const G: [f64; 4] = [H[3], -H[2], H[1], -H[0]];

/// One periodic D4 analysis step: `signal` (even length >= 4) into `avg` and
/// `det`, each of length `signal.len() / 2`.
pub fn forward_step(signal: &[f64], avg: &mut [f64], det: &mut [f64]) {
    let n = signal.len();
    let m = n / 2;
    debug_assert!(n >= 4 && n.is_multiple_of(2));
    debug_assert_eq!(avg.len(), m);
    debug_assert_eq!(det.len(), m);
    for i in 0..m {
        let s0 = signal[2 * i];
        let s1 = signal[2 * i + 1];
        let s2 = signal[(2 * i + 2) % n];
        let s3 = signal[(2 * i + 3) % n];
        avg[i] = H[0] * s0 + H[1] * s1 + H[2] * s2 + H[3] * s3;
        det[i] = G[0] * s0 + G[1] * s1 + G[2] * s2 + G[3] * s3;
    }
}

/// One periodic D4 synthesis step, the exact inverse of [`forward_step`].
pub fn inverse_step(avg: &[f64], det: &[f64], signal: &mut [f64]) {
    let m = avg.len();
    debug_assert_eq!(det.len(), m);
    debug_assert_eq!(signal.len(), 2 * m);
    for i in 0..m {
        let prev = (i + m - 1) % m;
        signal[2 * i] = H[2] * avg[prev] + G[2] * det[prev] + H[0] * avg[i] + G[0] * det[i];
        signal[2 * i + 1] = H[3] * avg[prev] + G[3] * det[prev] + H[1] * avg[i] + G[1] * det[i];
    }
}

/// Full multilevel periodic D4 decomposition in pyramid order.
///
/// Recursion stops when the approximation block reaches length 2 (the D4
/// filter needs at least four samples). For signals shorter than 4 the
/// signal is returned unchanged.
///
/// # Errors
///
/// Returns [`WaveletError::NotPowerOfTwo`] unless `signal.len()` is a
/// nonzero power of two.
pub fn forward(signal: &[f64]) -> Result<Vec<f64>, WaveletError> {
    let n = signal.len();
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    if n < 4 {
        return Ok(signal.to_vec());
    }
    let mut out = vec![0.0; n];
    let mut current = signal.to_vec();
    let mut detail_end = n;
    while current.len() >= 4 {
        let m = current.len() / 2;
        let mut avg = vec![0.0; m];
        {
            let det = &mut out[detail_end - m..detail_end];
            let mut det_tmp = vec![0.0; m];
            forward_step(&current, &mut avg, &mut det_tmp);
            det.copy_from_slice(&det_tmp);
        }
        detail_end -= m;
        current = avg;
    }
    out[..current.len()].copy_from_slice(&current);
    Ok(out)
}

/// Full multilevel periodic D4 reconstruction (inverse of [`forward`]).
///
/// # Errors
///
/// Returns [`WaveletError::NotPowerOfTwo`] unless `coeffs.len()` is a
/// nonzero power of two.
pub fn inverse(coeffs: &[f64]) -> Result<Vec<f64>, WaveletError> {
    let n = coeffs.len();
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    if n < 4 {
        return Ok(coeffs.to_vec());
    }
    // The coarsest approximation block has length 2.
    let mut current = coeffs[..2].to_vec();
    let mut detail_start = 2;
    while detail_start < n {
        let m = current.len();
        let det = &coeffs[detail_start..detail_start + m];
        let mut next = vec![0.0; 2 * m];
        inverse_step(&current, det, &mut next);
        current = next;
        detail_start += m;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_are_orthonormal() {
        let h_norm: f64 = H.iter().map(|x| x * x).sum();
        let g_norm: f64 = G.iter().map(|x| x * x).sum();
        let dot: f64 = H.iter().zip(&G).map(|(a, b)| a * b).sum();
        assert!((h_norm - 1.0).abs() < 1e-12);
        assert!((g_norm - 1.0).abs() < 1e-12);
        assert!(dot.abs() < 1e-12);
        // Scaling filter sums to sqrt(2); wavelet filter sums to zero.
        let h_sum: f64 = H.iter().sum();
        let g_sum: f64 = G.iter().sum();
        assert!((h_sum - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(g_sum.abs() < 1e-12);
    }

    #[test]
    fn single_step_roundtrip() {
        let sig: Vec<f64> = (0..16).map(|i| ((i * 13) % 7) as f64).collect();
        let mut avg = vec![0.0; 8];
        let mut det = vec![0.0; 8];
        forward_step(&sig, &mut avg, &mut det);
        let mut back = vec![0.0; 16];
        inverse_step(&avg, &det, &mut back);
        for (a, b) in sig.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn multilevel_roundtrip() {
        for n in [4usize, 8, 64, 512] {
            let sig: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.21).sin() * 9.0 + 3.0)
                .collect();
            let coeffs = forward(&sig).unwrap();
            let back = inverse(&coeffs).unwrap();
            for (a, b) in sig.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn energy_preserved() {
        let sig: Vec<f64> = (0..128).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let coeffs = forward(&sig).unwrap();
        let e1: f64 = sig.iter().map(|x| x * x).sum();
        let e2: f64 = coeffs.iter().map(|x| x * x).sum();
        assert!((e1 - e2).abs() < 1e-6 * e1.max(1.0));
    }

    #[test]
    fn d4_kills_linear_signals() {
        // D4 has two vanishing moments: details of a linear ramp vanish
        // (away from the periodic wrap-around).
        let sig: Vec<f64> = (0..32).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut avg = vec![0.0; 16];
        let mut det = vec![0.0; 16];
        forward_step(&sig, &mut avg, &mut det);
        for d in &det[..15] {
            assert!(d.abs() < 1e-9, "interior detail {d} should vanish");
        }
        // The last detail straddles the wrap-around and is nonzero.
        assert!(det[15].abs() > 1.0);
    }

    #[test]
    fn short_signals_pass_through() {
        assert_eq!(forward(&[5.0, 7.0]).unwrap(), vec![5.0, 7.0]);
        assert_eq!(inverse(&[5.0, 7.0]).unwrap(), vec![5.0, 7.0]);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(forward(&[1.0; 12]).is_err());
        assert!(inverse(&[1.0; 12]).is_err());
    }
}
