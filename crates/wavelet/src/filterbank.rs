//! Generic periodic orthogonal filter banks.
//!
//! The paper: "To compute the approximations, we can use any of the
//! wavelet bases such as Haar, Daubechies, Coiflets, Symlets and Meyer."
//! This module provides the machinery for the compactly supported
//! orthogonal families: an [`OrthogonalFilter`] is a scaling filter `h`
//! whose wavelet filter is the alternating flip `g[t] = (−1)^t h[T−1−t]`;
//! analysis convolves-and-decimates periodically and synthesis applies
//! the transpose, which for orthogonal filters is the exact inverse.
//!
//! Predefined filters: [`DAUBECHIES_4`], [`DAUBECHIES_6`], [`COIFLET_1`]
//! and [`SYMLET_4`] (coefficients from the standard tables; each is
//! checked for orthonormality by the test suite). The dedicated
//! [`crate::daubechies`] module remains the hand-written D4 used in the
//! benchmarks; `DAUBECHIES_4` here reproduces it through the generic
//! path.

use crate::error::WaveletError;
use crate::is_power_of_two;

/// A compactly supported orthogonal scaling filter.
#[derive(Debug, Clone, PartialEq)]
pub struct OrthogonalFilter {
    name: &'static str,
    taps: Vec<f64>,
}

/// The Daubechies-4 (db2) scaling filter.
pub fn daubechies_4() -> OrthogonalFilter {
    OrthogonalFilter::new(
        "daubechies-4",
        vec![
            0.482_962_913_144_690_2,
            0.836_516_303_737_469,
            0.224_143_868_041_857_36,
            -0.129_409_522_550_921_42,
        ],
    )
}

/// The Daubechies-6 (db3) scaling filter.
pub fn daubechies_6() -> OrthogonalFilter {
    OrthogonalFilter::new(
        "daubechies-6",
        vec![
            0.332_670_552_950_082_6,
            0.806_891_509_311_092_3,
            0.459_877_502_118_491_4,
            -0.135_011_020_010_254_6,
            -0.085_441_273_882_026_7,
            0.035_226_291_885_709_5,
        ],
    )
}

/// The Coiflet-1 (coif1) scaling filter.
pub fn coiflet_1() -> OrthogonalFilter {
    OrthogonalFilter::new(
        "coiflet-1",
        vec![
            -0.015_655_728_135_464_5,
            -0.072_732_619_512_853_9,
            0.384_864_846_864_203,
            0.852_572_020_212_255_4,
            0.337_897_662_457_809_2,
            -0.072_732_619_512_853_9,
        ],
    )
}

/// The Symlet-4 (sym4) scaling filter.
pub fn symlet_4() -> OrthogonalFilter {
    OrthogonalFilter::new(
        "symlet-4",
        vec![
            -0.075_765_714_789_273_33,
            -0.029_635_527_645_998_51,
            0.497_618_667_632_015_45,
            0.803_738_751_805_916_1,
            0.297_857_795_605_277_36,
            -0.099_219_543_576_847_22,
            -0.012_603_967_262_037_833,
            0.032_223_100_604_042_7,
        ],
    )
}

/// Alias kept for discoverability alongside the constants' names in docs.
pub const DAUBECHIES_4: fn() -> OrthogonalFilter = daubechies_4;
/// See [`daubechies_6`].
pub const DAUBECHIES_6: fn() -> OrthogonalFilter = daubechies_6;
/// See [`coiflet_1`].
pub const COIFLET_1: fn() -> OrthogonalFilter = coiflet_1;
/// See [`symlet_4`].
pub const SYMLET_4: fn() -> OrthogonalFilter = symlet_4;

impl OrthogonalFilter {
    /// Wrap a scaling filter. The taps must number at least two and be
    /// even in count; orthonormality is the caller's responsibility (the
    /// predefined filters are tested).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two taps or an odd count is supplied.
    pub fn new(name: &'static str, taps: Vec<f64>) -> Self {
        assert!(
            taps.len() >= 2 && taps.len().is_multiple_of(2),
            "need an even tap count >= 2"
        );
        OrthogonalFilter { name, taps }
    }

    /// Filter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The scaling (low-pass) taps `h`.
    pub fn scaling(&self) -> &[f64] {
        &self.taps
    }

    /// The wavelet (high-pass) taps `g[t] = (−1)^t h[T−1−t]`.
    pub fn wavelet(&self) -> Vec<f64> {
        let t_len = self.taps.len();
        (0..t_len)
            .map(|t| {
                let sign = if t % 2 == 0 { 1.0 } else { -1.0 };
                sign * self.taps[t_len - 1 - t]
            })
            .collect()
    }

    /// One periodic analysis step: `signal` (even length >= tap count)
    /// into `avg`/`det` halves.
    pub fn forward_step(&self, signal: &[f64], avg: &mut [f64], det: &mut [f64]) {
        let n = signal.len();
        let m = n / 2;
        debug_assert!(n.is_multiple_of(2) && avg.len() == m && det.len() == m);
        let g = self.wavelet();
        let h = &self.taps;
        for i in 0..m {
            let mut a = 0.0;
            let mut d = 0.0;
            for (t, (&ht, &gt)) in h.iter().zip(&g).enumerate() {
                let s = signal[(2 * i + t) % n];
                a += ht * s;
                d += gt * s;
            }
            avg[i] = a;
            det[i] = d;
        }
    }

    /// One periodic synthesis step: exact inverse of
    /// [`OrthogonalFilter::forward_step`].
    pub fn inverse_step(&self, avg: &[f64], det: &[f64], signal: &mut [f64]) {
        let m = avg.len();
        let n = 2 * m;
        debug_assert!(det.len() == m && signal.len() == n);
        let g = self.wavelet();
        let h = &self.taps;
        signal.fill(0.0);
        for i in 0..m {
            for (t, (&ht, &gt)) in h.iter().zip(&g).enumerate() {
                signal[(2 * i + t) % n] += ht * avg[i] + gt * det[i];
            }
        }
    }

    /// Full multilevel decomposition in pyramid order (final approximation
    /// block first, then detail blocks coarsest to finest). Recursion
    /// stops when the block is shorter than the filter.
    ///
    /// # Errors
    ///
    /// [`WaveletError::NotPowerOfTwo`] unless the length is a nonzero
    /// power of two.
    pub fn forward(&self, signal: &[f64]) -> Result<Vec<f64>, WaveletError> {
        let n = signal.len();
        if !is_power_of_two(n) {
            return Err(WaveletError::NotPowerOfTwo { len: n });
        }
        if n < self.taps.len() {
            return Ok(signal.to_vec());
        }
        let mut out = vec![0.0; n];
        let mut current = signal.to_vec();
        let mut detail_end = n;
        while current.len() >= self.taps.len() {
            let m = current.len() / 2;
            let mut avg = vec![0.0; m];
            let mut det = vec![0.0; m];
            self.forward_step(&current, &mut avg, &mut det);
            out[detail_end - m..detail_end].copy_from_slice(&det);
            detail_end -= m;
            current = avg;
        }
        out[..current.len()].copy_from_slice(&current);
        Ok(out)
    }

    /// Full multilevel reconstruction (inverse of
    /// [`OrthogonalFilter::forward`]).
    ///
    /// # Errors
    ///
    /// [`WaveletError::NotPowerOfTwo`] unless the length is a nonzero
    /// power of two.
    pub fn inverse(&self, coeffs: &[f64]) -> Result<Vec<f64>, WaveletError> {
        let n = coeffs.len();
        if !is_power_of_two(n) {
            return Err(WaveletError::NotPowerOfTwo { len: n });
        }
        if n < self.taps.len() {
            return Ok(coeffs.to_vec());
        }
        // Find the coarsest block length: halve until below the taps.
        let mut approx_len = n;
        while approx_len >= self.taps.len() {
            approx_len /= 2;
        }
        let mut current = coeffs[..approx_len].to_vec();
        let mut detail_start = approx_len;
        while detail_start < n {
            let m = current.len();
            let det = &coeffs[detail_start..detail_start + m];
            let mut next = vec![0.0; 2 * m];
            self.inverse_step(&current, det, &mut next);
            current = next;
            detail_start += m;
        }
        Ok(current)
    }
}

/// All predefined filters, for iteration in tests and benchmarks.
pub fn predefined() -> Vec<OrthogonalFilter> {
    vec![daubechies_4(), daubechies_6(), coiflet_1(), symlet_4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_are_orthonormal() {
        for f in predefined() {
            let h = f.scaling();
            let sum: f64 = h.iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-6,
                "{}: sum {sum}",
                f.name()
            );
            let norm: f64 = h.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "{}: norm {norm}", f.name());
            // Shift-by-2 orthogonality.
            for shift in (2..h.len()).step_by(2) {
                let dot: f64 = h[shift..].iter().zip(h).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-6, "{} shift {shift}: {dot}", f.name());
            }
            // Wavelet filter orthogonal to scaling filter.
            let g = f.wavelet();
            let dot: f64 = h.iter().zip(&g).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-6, "{}: h.g = {dot}", f.name());
        }
    }

    #[test]
    fn single_step_roundtrip_all_filters() {
        for f in predefined() {
            let n = 32;
            let sig: Vec<f64> = (0..n).map(|i| ((i * 11) % 13) as f64 - 6.0).collect();
            let mut avg = vec![0.0; n / 2];
            let mut det = vec![0.0; n / 2];
            f.forward_step(&sig, &mut avg, &mut det);
            let mut back = vec![0.0; n];
            f.inverse_step(&avg, &det, &mut back);
            for (a, b) in sig.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "{}: {a} vs {b}", f.name());
            }
        }
    }

    #[test]
    fn multilevel_roundtrip_all_filters() {
        for f in predefined() {
            for n in [16usize, 64, 256] {
                let sig: Vec<f64> = (0..n)
                    .map(|i| (i as f64 * 0.17).sin() * 5.0 + 1.0)
                    .collect();
                let coeffs = f.forward(&sig).unwrap();
                let back = f.inverse(&coeffs).unwrap();
                for (i, (a, b)) in sig.iter().zip(&back).enumerate() {
                    assert!((a - b).abs() < 1e-7, "{} n={n} i={i}: {a} vs {b}", f.name());
                }
            }
        }
    }

    #[test]
    fn energy_preserved_all_filters() {
        for f in predefined() {
            let sig: Vec<f64> = (0..128).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
            let coeffs = f.forward(&sig).unwrap();
            let e1: f64 = sig.iter().map(|x| x * x).sum();
            let e2: f64 = coeffs.iter().map(|x| x * x).sum();
            assert!(
                (e1 - e2).abs() < 1e-6 * e1.max(1.0),
                "{}: {e1} vs {e2}",
                f.name()
            );
        }
    }

    #[test]
    fn generic_d4_matches_dedicated_module() {
        let sig: Vec<f64> = (0..64).map(|i| ((i * 7) % 23) as f64).collect();
        let generic = daubechies_4().forward(&sig).unwrap();
        let dedicated = crate::daubechies::forward(&sig).unwrap();
        for (a, b) in generic.iter().zip(&dedicated) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn vanishing_moments_annihilate_polynomials() {
        // db2 has 2 vanishing moments, db3 has 3: on a *quadratic* signal
        // db3's interior detail coefficients vanish while db2's do not
        // (boundary coefficients are excluded — periodic wrap-around sees
        // the polynomial's jump).
        let n = 256;
        let sig: Vec<f64> = (0..n)
            .map(|i| (i as f64 / n as f64).powi(2) * 10.0)
            .collect();
        let interior_energy = |f: &OrthogonalFilter| {
            let m = n / 2;
            let mut avg = vec![0.0; m];
            let mut det = vec![0.0; m];
            f.forward_step(&sig, &mut avg, &mut det);
            det[..m - 4].iter().map(|x| x * x).sum::<f64>()
        };
        let d4 = interior_energy(&daubechies_4()); // 2 vanishing moments
        let d6 = interior_energy(&daubechies_6()); // 3 vanishing moments
        assert!(d6 < 1e-20, "db3 must annihilate quadratics, got {d6}");
        assert!(d4 > 1e-9, "db2 must not, got {d4}");
    }

    #[test]
    fn short_signals_pass_through() {
        let f = symlet_4(); // 8 taps
        assert_eq!(
            f.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(
            f.inverse(&[1.0, 2.0, 3.0, 4.0]).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        let f = daubechies_6();
        assert!(f.forward(&[0.0; 12]).is_err());
        assert!(f.inverse(&[0.0; 12]).is_err());
    }

    #[test]
    #[should_panic(expected = "even tap count")]
    fn odd_taps_rejected() {
        let _ = OrthogonalFilter::new("bad", vec![1.0, 2.0, 3.0]);
    }
}
