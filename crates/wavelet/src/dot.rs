//! Wavelet-domain inner products: evaluate `⟨w, x⟩` directly from a
//! truncated coefficient vector, without reconstructing `x`.
//!
//! # The adjoint trick
//!
//! Reconstruction from non-normalized Haar coefficients is linear:
//! `x = W·c` where `c` is the breadth-first coefficient vector. Hence for
//! any weight vector `w`,
//!
//! ```text
//! ⟨w, x⟩ = wᵀ W c = (Wᵀ w)ᵀ c = ⟨adjoint(w), c⟩.
//! ```
//!
//! `Wᵀ` is the forward cascade *without* the `/2` scaling: the root entry
//! of `adjoint(w)` is the total sum of `w`, and the depth-`d` detail entry
//! for block `i` is (sum of `w` over the block's left half) − (sum over
//! its right half). Because a SWAT node stores only the first `k`
//! breadth-first coefficients (the rest are zero), the inner product needs
//! only the first `k` entries of `adjoint(w)` — `O(k)` multiplies per
//! node instead of an `O(width)` reconstruction.
//!
//! # Closed-form profiles
//!
//! Each adjoint entry is a difference of two *range sums* of `w`. For the
//! SWAT paper's §2.4/§2.6 query profiles those sums have closed forms:
//!
//! * geometric weights `(1/2)^p` (the *exponential* profile):
//!   `Σ_{p=lo..hi} (1/2)^p = 2·(1/2)^lo − (1/2)^hi`,
//! * constant weights `1` (building block of the *linear* profile):
//!   `hi − lo + 1`,
//! * ramp weights `p` (the other linear building block):
//!   `(lo + hi)(hi − lo + 1)/2`,
//!
//! so any adjoint entry of those profiles is `O(1)` and a per-node
//! evaluation is genuinely `O(k)`. A [`ProfileTable`] caches the resulting
//! transformed-weight prefixes per (block width, profile) so repeated
//! queries do not even pay the closed forms again.

use crate::error::WaveletError;
use crate::{is_power_of_two, log2};

/// Inner product of a truncated breadth-first coefficient vector with a
/// transformed (adjoint) weight vector: `Σ coeffs[c] · tweights[c]` over
/// the common prefix. Coefficients beyond either slice are zero by the
/// truncation convention, so the shorter length wins.
#[inline]
pub fn dot_coeffs(coeffs: &[f64], tweights: &[f64]) -> f64 {
    let k = coeffs.len().min(tweights.len());
    let mut acc = 0.0;
    for c in 0..k {
        acc += coeffs[c] * tweights[c];
    }
    acc
}

/// The canonical weight profiles with `O(1)` range sums (see the module
/// docs). Query-specific scale and shift factors are applied by callers;
/// these are the shapes the [`ProfileTable`] caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanonicalProfile {
    /// Constant weight `1` at every position.
    Ones,
    /// Weight `p` at position `p` (combined with [`Self::Ones`] this spans
    /// every affine profile, including the paper's linear one).
    Ramp,
    /// Weight `(1/2)^p` at position `p` — the paper's exponential profile.
    Geometric,
}

/// Closed-form `Σ_{p=lo..=hi} w_p` for a canonical profile.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
#[inline]
pub fn profile_sum(profile: CanonicalProfile, lo: usize, hi: usize) -> f64 {
    debug_assert!(lo <= hi, "empty profile range");
    match profile {
        CanonicalProfile::Ones => (hi - lo + 1) as f64,
        CanonicalProfile::Ramp => {
            // (lo + hi)(hi − lo + 1)/2, exact in u128 before rounding once.
            let count = (hi - lo + 1) as u128;
            let ends = (lo + hi) as u128;
            (ends * count / 2) as f64
        }
        CanonicalProfile::Geometric => 2.0 * 0.5f64.powi(lo as i32) - 0.5f64.powi(hi as i32),
    }
}

/// Sum `sum(lo, hi)` clipped to the served sub-range `[a, b]`; empty
/// intersections contribute zero.
#[inline]
fn clipped_sum(
    lo: usize,
    hi: usize,
    a: usize,
    b: usize,
    sum: &impl Fn(usize, usize) -> f64,
) -> f64 {
    let lo = lo.max(a);
    let hi = hi.min(b);
    if lo > hi {
        0.0
    } else {
        sum(lo, hi)
    }
}

/// One adjoint entry (breadth-first index `c`) of a weight vector that is
/// `w_p` (given by `sum` as range sums) on `[a, b]` and zero elsewhere.
#[inline]
fn adjoint_entry_clipped(
    width: usize,
    c: usize,
    a: usize,
    b: usize,
    sum: &impl Fn(usize, usize) -> f64,
) -> f64 {
    if c == 0 {
        return clipped_sum(0, width - 1, a, b, sum);
    }
    // BFS entry c >= 1 sits at depth d = floor(log2 c) + 1, block index
    // i = c - 2^(d-1); the block spans `width >> (d-1)` positions.
    let d = (usize::BITS - c.leading_zeros()) as usize;
    let i = c - (1usize << (d - 1));
    let bs = width >> (d - 1);
    let lo = i * bs;
    let mid = lo + bs / 2;
    clipped_sum(lo, mid - 1, a, b, sum) - clipped_sum(mid, lo + bs - 1, a, b, sum)
}

/// `⟨w, x̂⟩` for a weight vector supported on local positions `[a, b]` of
/// a width-`width` block, evaluated entirely in the coefficient domain:
/// `Σ_c coeffs[c] · adjoint(w)[c]`, with each adjoint entry built from the
/// closed-form range sums `sum(lo, hi) = Σ_{p=lo..=hi} w_p`.
///
/// Costs `O(coeffs.len())` calls to `sum` — `O(k)` total for the canonical
/// profiles.
///
/// # Panics
///
/// Panics in debug builds unless `a <= b < width` and `width` is a power
/// of two.
pub fn dot_coeffs_clipped(
    coeffs: &[f64],
    width: usize,
    a: usize,
    b: usize,
    sum: impl Fn(usize, usize) -> f64,
) -> f64 {
    debug_assert!(is_power_of_two(width));
    debug_assert!(a <= b && b < width, "served range outside block");
    let k = coeffs.len().min(width);
    let mut acc = 0.0;
    for (c, &coef) in coeffs.iter().take(k).enumerate() {
        acc += coef * adjoint_entry_clipped(width, c, a, b, &sum);
    }
    acc
}

/// Full adjoint transform `Wᵀ w` in breadth-first order — the forward
/// Haar cascade without the `/2` scaling (sums instead of averages).
///
/// Entry 0 is the total sum of `w`; the depth-`d` entry for block `i` is
/// the sum of `w` over the block's left half minus the sum over its right
/// half. `⟨w, reconstruct(c)⟩ == dot_coeffs(c, adjoint(w))` for every
/// truncated coefficient vector `c` of the same width.
///
/// # Errors
///
/// [`WaveletError::NotPowerOfTwo`] unless `weights.len()` is a nonzero
/// power of two.
pub fn adjoint(weights: &[f64]) -> Result<Vec<f64>, WaveletError> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    adjoint_into(weights, &mut out, &mut tmp)?;
    Ok(out)
}

/// As [`adjoint`], writing into caller-provided buffers (cleared and
/// resized as needed) so steady-state callers allocate nothing once the
/// buffers have grown to the working width.
///
/// # Errors
///
/// As [`adjoint`].
pub fn adjoint_into(
    weights: &[f64],
    out: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) -> Result<(), WaveletError> {
    let n = weights.len();
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let depth = log2(n) as usize;
    out.clear();
    out.resize(n, 0.0);
    tmp.clear();
    tmp.extend_from_slice(weights);
    // Details produced at pass p (1-based from finest) land at BFS offset
    // 2^(depth - p), mirroring `haar::forward`. The running sums halve in
    // place: position i is only read at the pass that writes it.
    for pass in 1..=depth {
        let m = n >> pass;
        let offset = 1usize << (depth - pass);
        for i in 0..m {
            let a = tmp[2 * i];
            let b = tmp[2 * i + 1];
            out[offset + i] = a - b;
            tmp[i] = a + b;
        }
    }
    out[0] = tmp[0];
    Ok(())
}

/// Cache of transformed (adjoint) weight prefixes for the canonical
/// profiles, keyed by block width — the "precomputed transformed weights
/// per (level, profile)" of the query engine. Entries are built lazily
/// from the closed-form range sums and extended on demand when a caller
/// asks for a longer prefix, so a table serving steady-state traffic
/// performs no work beyond an index lookup.
///
/// `new()` allocates nothing.
#[derive(Debug, Default)]
pub struct ProfileTable {
    /// `cache[profile][log2(width)]` = adjoint prefix computed so far.
    cache: [Vec<Vec<f64>>; 3],
}

impl ProfileTable {
    /// An empty table (no allocation).
    pub fn new() -> Self {
        ProfileTable::default()
    }

    fn lane(profile: CanonicalProfile) -> usize {
        match profile {
            CanonicalProfile::Ones => 0,
            CanonicalProfile::Ramp => 1,
            CanonicalProfile::Geometric => 2,
        }
    }

    /// The first `min(k, width)` adjoint entries of `profile` over a block
    /// of `width` positions, computing and caching any entries not built
    /// yet.
    ///
    /// # Panics
    ///
    /// Panics in debug builds unless `width` is a power of two.
    pub fn weights(&mut self, profile: CanonicalProfile, width: usize, k: usize) -> &[f64] {
        debug_assert!(is_power_of_two(width));
        let lw = log2(width) as usize;
        let lane = &mut self.cache[Self::lane(profile)];
        if lane.len() <= lw {
            lane.resize_with(lw + 1, Vec::new);
        }
        let prefix = &mut lane[lw];
        let want = k.min(width);
        for c in prefix.len()..want {
            prefix.push(adjoint_entry_clipped(width, c, 0, width - 1, &|lo, hi| {
                profile_sum(profile, lo, hi)
            }));
        }
        &prefix[..want]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar;

    #[test]
    fn adjoint_matches_definition_on_width_four() {
        // x0 = c0+c1+c2, x1 = c0+c1−c2, x2 = c0−c1+c3, x3 = c0−c1−c3, so
        // ⟨w,x⟩ groups as c0·Σw + c1·((w0+w1)−(w2+w3)) + c2·(w0−w1) +
        // c3·(w2−w3).
        let w = [3.0, 5.0, 7.0, 11.0];
        let a = adjoint(&w).unwrap();
        assert_eq!(a, vec![26.0, -10.0, -2.0, -4.0]);
    }

    #[test]
    fn adjoint_rejects_bad_lengths() {
        assert!(matches!(
            adjoint(&[1.0, 2.0, 3.0]),
            Err(WaveletError::NotPowerOfTwo { len: 3 })
        ));
        assert!(matches!(
            adjoint(&[]),
            Err(WaveletError::NotPowerOfTwo { len: 0 })
        ));
        assert_eq!(adjoint(&[4.5]).unwrap(), vec![4.5]);
    }

    #[test]
    fn coeff_domain_dot_matches_time_domain() {
        let sig: Vec<f64> = (0..64).map(|i| ((i * 37) % 101) as f64 - 17.5).collect();
        let w: Vec<f64> = (0..64).map(|i| ((i * 13 + 5) % 23) as f64 * 0.25).collect();
        let coeffs = haar::forward(&sig).unwrap();
        let tw = adjoint(&w).unwrap();
        for k in [1usize, 2, 3, 5, 16, 64] {
            let truncated = &coeffs[..k];
            let rec = haar::inverse(truncated, 64).unwrap();
            let direct: f64 = w.iter().zip(&rec).map(|(a, b)| a * b).sum();
            let fast = dot_coeffs(truncated, &tw);
            assert!(
                (fast - direct).abs() <= 1e-9 * (1.0 + direct.abs()),
                "k={k}: {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn profile_sums_match_brute_force() {
        for lo in 0..12usize {
            for hi in lo..16usize {
                let ones: f64 = (lo..=hi).map(|_| 1.0).sum();
                let ramp: f64 = (lo..=hi).map(|p| p as f64).sum();
                let geo: f64 = (lo..=hi).map(|p| 0.5f64.powi(p as i32)).sum();
                assert_eq!(profile_sum(CanonicalProfile::Ones, lo, hi), ones);
                assert_eq!(profile_sum(CanonicalProfile::Ramp, lo, hi), ramp);
                assert!(
                    (profile_sum(CanonicalProfile::Geometric, lo, hi) - geo).abs() < 1e-12,
                    "geometric [{lo}, {hi}]"
                );
            }
        }
    }

    fn explicit_profile(profile: CanonicalProfile, width: usize) -> Vec<f64> {
        (0..width)
            .map(|p| match profile {
                CanonicalProfile::Ones => 1.0,
                CanonicalProfile::Ramp => p as f64,
                CanonicalProfile::Geometric => 0.5f64.powi(p as i32),
            })
            .collect()
    }

    #[test]
    fn profile_table_matches_dense_adjoint() {
        let mut table = ProfileTable::new();
        for profile in [
            CanonicalProfile::Ones,
            CanonicalProfile::Ramp,
            CanonicalProfile::Geometric,
        ] {
            for width in [2usize, 4, 16, 64] {
                let dense = adjoint(&explicit_profile(profile, width)).unwrap();
                let cached = table.weights(profile, width, width);
                for (c, (a, b)) in cached.iter().zip(&dense).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "{profile:?} width {width} entry {c}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn profile_table_extends_incrementally() {
        let mut table = ProfileTable::new();
        let short = table.weights(CanonicalProfile::Geometric, 32, 2).to_vec();
        let long = table.weights(CanonicalProfile::Geometric, 32, 8).to_vec();
        assert_eq!(short.len(), 2);
        assert_eq!(long.len(), 8);
        assert_eq!(&long[..2], &short[..], "extension preserves the prefix");
        // Requests beyond the width saturate.
        assert_eq!(table.weights(CanonicalProfile::Ones, 4, 99).len(), 4);
    }

    #[test]
    fn clipped_dot_matches_zero_padded_dense_weights() {
        let sig: Vec<f64> = (0..32).map(|i| ((i * 7) % 19) as f64 - 4.0).collect();
        let coeffs = haar::forward(&sig).unwrap();
        for (a, b) in [(0usize, 31usize), (3, 17), (5, 5), (0, 15), (16, 31)] {
            // Geometric weights live on [a, b], zero elsewhere.
            let mut dense = vec![0.0; 32];
            for (p, slot) in dense.iter_mut().enumerate().take(b + 1).skip(a) {
                *slot = 0.5f64.powi(p as i32);
            }
            let tw = adjoint(&dense).unwrap();
            for k in [1usize, 3, 8, 32] {
                let want = dot_coeffs(&coeffs[..k], &tw);
                let got = dot_coeffs_clipped(&coeffs[..k], 32, a, b, |lo, hi| {
                    profile_sum(CanonicalProfile::Geometric, lo, hi)
                });
                assert!(
                    (want - got).abs() <= 1e-9 * (1.0 + want.abs()),
                    "[{a}, {b}] k={k}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn adjoint_into_reuses_buffers() {
        let mut out = Vec::new();
        let mut tmp = Vec::new();
        let w: Vec<f64> = (0..16).map(|i| i as f64).collect();
        adjoint_into(&w, &mut out, &mut tmp).unwrap();
        let first = out.clone();
        let cap_out = out.capacity();
        let cap_tmp = tmp.capacity();
        adjoint_into(&w, &mut out, &mut tmp).unwrap();
        assert_eq!(out, first);
        assert_eq!(out.capacity(), cap_out, "steady state must not regrow");
        assert_eq!(tmp.capacity(), cap_tmp);
    }
}
