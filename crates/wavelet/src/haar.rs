//! Non-normalized Haar transform: pairwise averages and half-differences.
//!
//! This is the transform the SWAT paper uses throughout ("we will assume
//! that Haar wavelets are being used"). A single forward step maps a signal
//! `s` of even length `2m` to `m` averages and `m` details:
//!
//! ```text
//! avg[i] = (s[2i] + s[2i+1]) / 2
//! det[i] = (s[2i] - s[2i+1]) / 2
//! ```
//!
//! The multilevel decomposition recurses on the averages. The inverse step
//! is exact: `s[2i] = avg[i] + det[i]`, `s[2i+1] = avg[i] - det[i]`.
//!
//! Coefficients of the full decomposition are reported in breadth-first
//! (coarsest-first) order; see the crate-level documentation.

use crate::error::WaveletError;
use crate::{is_power_of_two, log2};

/// One forward Haar step over `signal` (even length), writing `avg` and
/// `det`, each of length `signal.len() / 2`.
///
/// # Panics
///
/// Panics in debug builds if the lengths are inconsistent.
#[inline]
pub fn forward_step(signal: &[f64], avg: &mut [f64], det: &mut [f64]) {
    let m = signal.len() / 2;
    debug_assert_eq!(signal.len() % 2, 0);
    debug_assert_eq!(avg.len(), m);
    debug_assert_eq!(det.len(), m);
    for i in 0..m {
        let a = signal[2 * i];
        let b = signal[2 * i + 1];
        avg[i] = (a + b) * 0.5;
        det[i] = (a - b) * 0.5;
    }
}

/// One inverse Haar step: reconstruct `signal` (length `2 * avg.len()`) from
/// averages and details.
#[inline]
pub fn inverse_step(avg: &[f64], det: &[f64], signal: &mut [f64]) {
    let m = avg.len();
    debug_assert_eq!(det.len(), m);
    debug_assert_eq!(signal.len(), 2 * m);
    for i in 0..m {
        signal[2 * i] = avg[i] + det[i];
        signal[2 * i + 1] = avg[i] - det[i];
    }
}

/// Full multilevel forward transform.
///
/// Returns the `signal.len()` coefficients in breadth-first order:
/// `[overall average, depth-1 detail, depth-2 details, ..., finest details]`.
///
/// # Errors
///
/// Returns [`WaveletError::NotPowerOfTwo`] unless `signal.len()` is a
/// nonzero power of two.
pub fn forward(signal: &[f64]) -> Result<Vec<f64>, WaveletError> {
    let n = signal.len();
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let depth = log2(n) as usize;
    let mut out = vec![0.0; n];
    let mut current = signal.to_vec();
    // Details produced at pass p (1-based from finest) belong to BFS depth
    // (depth - p + 1), i.e. they land at BFS offset 2^(depth - p).
    for pass in 1..=depth {
        let m = current.len() / 2;
        let mut avg = vec![0.0; m];
        let offset = 1usize << (depth - pass);
        {
            let (_, tail) = out.split_at_mut(offset);
            forward_step(&current, &mut avg, &mut tail[..m]);
        }
        current = avg;
    }
    out[0] = current[0];
    Ok(out)
}

/// Full multilevel inverse transform of breadth-first coefficients.
///
/// Coefficient vectors shorter than the signal length are implicitly
/// zero-padded: `inverse(&coeffs[..k], n)` reconstructs the signal that the
/// coarsest `k` coefficients describe, with all finer details set to zero.
///
/// # Errors
///
/// Returns [`WaveletError::NotPowerOfTwo`] unless `n` is a nonzero power of
/// two, and [`WaveletError::TooShort`] if `coeffs` is empty.
pub fn inverse(coeffs: &[f64], n: usize) -> Result<Vec<f64>, WaveletError> {
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    if coeffs.is_empty() {
        return Err(WaveletError::TooShort { len: 0, min: 1 });
    }
    let depth = log2(n) as usize;
    let mut current = vec![coeffs[0]];
    for d in 1..=depth {
        let m = current.len();
        let offset = 1usize << (d - 1);
        let mut next = vec![0.0; 2 * m];
        for i in 0..m {
            let det = coeffs.get(offset + i).copied().unwrap_or(0.0);
            next[2 * i] = current[i] + det;
            next[2 * i + 1] = current[i] - det;
        }
        current = next;
    }
    Ok(current)
}

/// As [`inverse`], writing the reconstruction into `out` using `tmp` as a
/// ping-pong buffer so steady-state callers allocate nothing once both
/// buffers have grown to length `n`.
///
/// The per-level arithmetic (detail lookup with zero padding, `+ det` then
/// `- det`) is exactly that of [`inverse`], so the result is bit-identical.
///
/// # Errors
///
/// Same validation as [`inverse`].
pub fn inverse_into(
    coeffs: &[f64],
    n: usize,
    out: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) -> Result<(), WaveletError> {
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    if coeffs.is_empty() {
        return Err(WaveletError::TooShort { len: 0, min: 1 });
    }
    let depth = log2(n) as usize;
    out.clear();
    out.resize(n, 0.0);
    tmp.clear();
    tmp.resize(n, 0.0);
    // Each level doubles the working length; alternate between the two
    // buffers, starting so the final level lands in `out`.
    let (mut cur, mut next): (&mut [f64], &mut [f64]) = if depth.is_multiple_of(2) {
        (&mut out[..], &mut tmp[..])
    } else {
        (&mut tmp[..], &mut out[..])
    };
    cur[0] = coeffs[0];
    let mut m = 1;
    for d in 1..=depth {
        let offset = 1usize << (d - 1);
        for i in 0..m {
            let det = coeffs.get(offset + i).copied().unwrap_or(0.0);
            next[2 * i] = cur[i] + det;
            next[2 * i + 1] = cur[i] - det;
        }
        std::mem::swap(&mut cur, &mut next);
        m *= 2;
    }
    Ok(())
}

/// Reconstruct a single point of the signal from breadth-first coefficients
/// in `O(log n)` time without materializing the whole signal.
///
/// `idx` is the position within the signal of length `n`.
///
/// # Errors
///
/// Same validation as [`inverse`]; additionally `idx` must be `< n`.
pub fn point(coeffs: &[f64], n: usize, idx: usize) -> Result<f64, WaveletError> {
    if !is_power_of_two(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    if coeffs.is_empty() {
        return Err(WaveletError::TooShort { len: 0, min: 1 });
    }
    assert!(idx < n, "point index {idx} out of bounds for signal of {n}");
    let depth = log2(n) as usize;
    let mut value = coeffs[0];
    // Walk from the root toward the leaf holding `idx`. At BFS depth d the
    // signal is split into 2^d blocks; `idx` falls into block
    // `idx >> (depth - d)`, and the sign of the detail contribution depends
    // on whether idx is in the left (+) or right (−) half of that block.
    for d in 1..=depth {
        let block = idx >> (depth - d);
        let det = coeffs
            .get((1usize << (d - 1)) + (block >> 1))
            .copied()
            .unwrap_or(0.0);
        if block & 1 == 0 {
            value += det;
        } else {
            value -= det;
        }
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(signal: &[f64]) {
        let coeffs = forward(signal).unwrap();
        let back = inverse(&coeffs, signal.len()).unwrap();
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "roundtrip mismatch {a} vs {b}");
        }
    }

    #[test]
    fn single_step_matches_definition() {
        let s = [14.0, 4.0];
        let mut avg = [0.0];
        let mut det = [0.0];
        forward_step(&s, &mut avg, &mut det);
        assert_eq!(avg[0], 9.0);
        assert_eq!(det[0], 5.0);
        let mut back = [0.0; 2];
        inverse_step(&avg, &det, &mut back);
        assert_eq!(back, s);
    }

    #[test]
    fn forward_of_constant_signal_is_average_only() {
        let coeffs = forward(&[3.0; 8]).unwrap();
        assert_eq!(coeffs[0], 3.0);
        for c in &coeffs[1..] {
            assert_eq!(*c, 0.0);
        }
    }

    #[test]
    fn forward_bfs_layout() {
        // Signal [8, 6, 4, 2]:
        //   depth-2 (finest) details: (8-6)/2 = 1, (4-2)/2 = 1
        //   averages: 7, 3 -> depth-1 detail: (7-3)/2 = 2, root = 5
        let coeffs = forward(&[8.0, 6.0, 4.0, 2.0]).unwrap();
        assert_eq!(coeffs, vec![5.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn roundtrips_various_lengths() {
        roundtrip(&[42.0]);
        roundtrip(&[1.0, -1.0]);
        roundtrip(&[8.0, 6.0, 4.0, 2.0]);
        let sig: Vec<f64> = (0..1024).map(|i| ((i * 37) % 101) as f64).collect();
        roundtrip(&sig);
    }

    #[test]
    fn truncated_inverse_keeps_coarse_structure() {
        let coeffs = forward(&[8.0, 6.0, 4.0, 2.0]).unwrap();
        // Keep only the root: reconstruction is the flat average.
        let flat = inverse(&coeffs[..1], 4).unwrap();
        assert_eq!(flat, vec![5.0; 4]);
        // Keep root + depth-1 detail: half averages.
        let halves = inverse(&coeffs[..2], 4).unwrap();
        assert_eq!(halves, vec![7.0, 7.0, 3.0, 3.0]);
    }

    #[test]
    fn point_matches_full_inverse() {
        let sig: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 10.0).collect();
        let coeffs = forward(&sig).unwrap();
        for k in [1, 2, 3, 7, 16, 64] {
            let full = inverse(&coeffs[..k], 64).unwrap();
            for (idx, &f) in full.iter().enumerate() {
                let p = point(&coeffs[..k], 64, idx).unwrap();
                assert!((p - f).abs() < 1e-9, "point({k}, {idx}) = {p}, full = {f}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            forward(&[1.0, 2.0, 3.0]),
            Err(WaveletError::NotPowerOfTwo { len: 3 })
        ));
        assert!(matches!(
            inverse(&[1.0], 6),
            Err(WaveletError::NotPowerOfTwo { len: 6 })
        ));
        assert!(matches!(
            inverse(&[], 4),
            Err(WaveletError::TooShort { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn point_index_out_of_bounds_panics() {
        let coeffs = forward(&[1.0, 2.0]).unwrap();
        let _ = point(&coeffs, 2, 2);
    }

    #[test]
    fn inverse_into_is_bit_identical_to_inverse() {
        let sig: Vec<f64> = (0..128)
            .map(|i| ((i * 37) % 101) as f64 * 0.37 - 9.1)
            .collect();
        let coeffs = forward(&sig).unwrap();
        let mut out = Vec::new();
        let mut tmp = Vec::new();
        for n in [1usize, 2, 4, 8, 64, 128] {
            for k in [1usize, 2, 3, 5, n] {
                let want = inverse(&coeffs[..k.min(n)], n).unwrap();
                inverse_into(&coeffs[..k.min(n)], n, &mut out, &mut tmp).unwrap();
                assert_eq!(out.len(), n);
                for (i, (a, b)) in out.iter().zip(&want).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} k={k} idx={i}");
                }
            }
        }
        // Same validation as the allocating path.
        assert!(matches!(
            inverse_into(&[1.0], 6, &mut out, &mut tmp),
            Err(WaveletError::NotPowerOfTwo { len: 6 })
        ));
        assert!(matches!(
            inverse_into(&[], 4, &mut out, &mut tmp),
            Err(WaveletError::TooShort { .. })
        ));
    }

    #[test]
    fn inverse_into_does_not_regrow_buffers() {
        let coeffs = forward(&[8.0, 6.0, 4.0, 2.0]).unwrap();
        let mut out = Vec::new();
        let mut tmp = Vec::new();
        inverse_into(&coeffs, 4, &mut out, &mut tmp).unwrap();
        let (co, ct) = (out.capacity(), tmp.capacity());
        for _ in 0..8 {
            inverse_into(&coeffs[..2], 4, &mut out, &mut tmp).unwrap();
        }
        assert_eq!(out.capacity(), co);
        assert_eq!(tmp.capacity(), ct);
    }

    #[test]
    fn average_preserved_under_truncation() {
        // The BFS-order root coefficient is always the exact mean, no matter
        // how hard the details are truncated.
        let sig = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0];
        let coeffs = forward(&sig).unwrap();
        let mean: f64 = sig.iter().sum::<f64>() / sig.len() as f64;
        assert!((coeffs[0] - mean).abs() < 1e-12);
        for k in 1..=8 {
            let rec = inverse(&coeffs[..k], 8).unwrap();
            let rec_mean: f64 = rec.iter().sum::<f64>() / 8.0;
            assert!((rec_mean - mean).abs() < 1e-9, "k={k}");
        }
    }
}
