//! Truncated Haar coefficient vectors and the exact `O(k)` sibling merge.
//!
//! [`HaarCoeffs`] is the summary every SWAT tree node stores: the first `k`
//! breadth-first coefficients of the non-normalized Haar decomposition of
//! the window segment the node covers, together with the segment length.
//!
//! The crucial operation is [`HaarCoeffs::merge`]: given the summaries of
//! two adjacent equal-length segments it produces the summary of their
//! concatenation *exactly* (the result equals what a fresh transform of the
//! concatenated raw data, truncated to `k`, would produce) in `O(k)` time.
//! This is what makes the SWAT update rule
//! `contents(R_l) := DWT(R_{l-1}, L_{l-1})` constant-cost per level and the
//! whole per-arrival maintenance O(1) amortized.
//!
//! # Why the merge is exact
//!
//! For signals `x` (newer half) and `y` (older half) of length `2^d` each,
//! the parent decomposition of `x ++ y` is:
//!
//! * root: `(avg(x) + avg(y)) / 2`,
//! * depth-1 detail: `(avg(x) − avg(y)) / 2`,
//! * depth-`j` details (`j ≥ 2`): concatenation of `x`'s and `y`'s
//!   depth-`(j−1)` detail blocks.
//!
//! Therefore the parent's first `k` BFS coefficients only reference the
//! children's first `k` BFS coefficients, and truncation commutes with the
//! merge.
//!
//! # Representation
//!
//! Small coefficient budgets are stored inline (no heap allocation): the
//! paper's default `k = 1` — and anything up to three coefficients — never
//! allocates, which keeps the per-arrival maintenance cost of the tree at
//! a handful of arithmetic operations.

use crate::error::WaveletError;
use crate::{haar, is_power_of_two, log2};

/// Coefficient budgets up to this size are stored inline.
const INLINE_CAP: usize = 3;

/// Inline-or-heap storage for the coefficient prefix.
#[derive(Debug, Clone)]
enum Store {
    Inline { len: u8, buf: [f64; INLINE_CAP] },
    Heap(Vec<f64>),
}

impl Store {
    #[inline]
    fn one(value: f64) -> Store {
        Store::Inline {
            len: 1,
            buf: [value, 0.0, 0.0],
        }
    }

    #[inline]
    fn with_capacity(cap: usize) -> Store {
        if cap <= INLINE_CAP {
            Store::Inline {
                len: 0,
                buf: [0.0; INLINE_CAP],
            }
        } else {
            Store::Heap(Vec::with_capacity(cap))
        }
    }

    fn from_vec(v: Vec<f64>) -> Store {
        if v.len() <= INLINE_CAP {
            let mut buf = [0.0; INLINE_CAP];
            buf[..v.len()].copy_from_slice(&v);
            Store::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            Store::Heap(v)
        }
    }

    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            Store::Inline { len, buf } => &buf[..*len as usize],
            Store::Heap(v) => v,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Store::Inline { len, .. } => *len as usize,
            Store::Heap(v) => v.len(),
        }
    }

    /// Append a coefficient. The caller sized the store with
    /// `with_capacity`, so inline stores never overflow.
    #[inline]
    fn push(&mut self, value: f64) {
        match self {
            Store::Inline { len, buf } => {
                debug_assert!((*len as usize) < INLINE_CAP, "inline store sized too small");
                buf[*len as usize] = value;
                *len += 1;
            }
            Store::Heap(v) => v.push(value),
        }
    }
}

/// A truncated breadth-first Haar coefficient vector summarizing a signal
/// of power-of-two length.
///
/// Storing `k = len` coefficients is lossless; `k = 1` keeps only the
/// segment average — the configuration used throughout the SWAT paper.
#[derive(Debug, Clone)]
pub struct HaarCoeffs {
    /// Length of the summarized signal (a power of two).
    len: usize,
    /// First `min(k, len)` coefficients in breadth-first order.
    store: Store,
}

impl PartialEq for HaarCoeffs {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.store.as_slice() == other.store.as_slice()
    }
}

impl HaarCoeffs {
    /// Summary of a single raw value (a length-1 "signal").
    #[inline]
    pub fn scalar(value: f64) -> Self {
        HaarCoeffs {
            len: 1,
            store: Store::one(value),
        }
    }

    /// Transform `signal` and keep its first `k` breadth-first coefficients.
    ///
    /// # Errors
    ///
    /// * [`WaveletError::NotPowerOfTwo`] if the length is not a nonzero
    ///   power of two.
    /// * [`WaveletError::ZeroBudget`] if `k == 0`.
    pub fn from_signal(signal: &[f64], k: usize) -> Result<Self, WaveletError> {
        if k == 0 {
            return Err(WaveletError::ZeroBudget);
        }
        let mut coeffs = haar::forward(signal)?;
        coeffs.truncate(k);
        Ok(HaarCoeffs {
            len: signal.len(),
            store: Store::from_vec(coeffs),
        })
    }

    /// Construct directly from a breadth-first coefficient prefix.
    ///
    /// # Errors
    ///
    /// * [`WaveletError::NotPowerOfTwo`] if `len` is not a power of two.
    /// * [`WaveletError::ZeroBudget`] if `coeffs` is empty.
    /// * [`WaveletError::TooShort`] if more than `len` coefficients are
    ///   supplied.
    pub fn from_parts(len: usize, coeffs: Vec<f64>) -> Result<Self, WaveletError> {
        if !is_power_of_two(len) {
            return Err(WaveletError::NotPowerOfTwo { len });
        }
        if coeffs.is_empty() {
            return Err(WaveletError::ZeroBudget);
        }
        if coeffs.len() > len {
            return Err(WaveletError::TooShort {
                len,
                min: coeffs.len(),
            });
        }
        Ok(HaarCoeffs {
            len,
            store: Store::from_vec(coeffs),
        })
    }

    /// Construct from a stored breadth-first prefix, drawing any heap
    /// buffer from `scratch` — the blocked ingest path's bridge from SoA
    /// coefficient slabs back into summary structs. The representation
    /// rule matches [`Self::merge_with`] exactly: up to three
    /// coefficients stay inline (no allocation ever), larger prefixes
    /// reuse a pooled buffer.
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_parts`].
    pub fn from_prefix_with(
        len: usize,
        prefix: &[f64],
        scratch: &mut MergeScratch,
    ) -> Result<Self, WaveletError> {
        if !is_power_of_two(len) {
            return Err(WaveletError::NotPowerOfTwo { len });
        }
        if prefix.is_empty() {
            return Err(WaveletError::ZeroBudget);
        }
        if prefix.len() > len {
            return Err(WaveletError::TooShort {
                len,
                min: prefix.len(),
            });
        }
        let store = if prefix.len() <= INLINE_CAP {
            let mut buf = [0.0; INLINE_CAP];
            buf[..prefix.len()].copy_from_slice(prefix);
            Store::Inline {
                len: prefix.len() as u8,
                buf,
            }
        } else {
            let mut v = scratch.take(prefix.len());
            v.extend_from_slice(prefix);
            Store::Heap(v)
        };
        Ok(HaarCoeffs { len, store })
    }

    /// Merge the summaries of two adjacent equal-length segments into the
    /// summary of their concatenation, keeping at most `k` coefficients.
    ///
    /// `newer` summarizes the more recent half (lower stream indices in the
    /// SWAT convention), `older` the half before it. The merge is *exact*:
    /// truncation commutes with it (see the module docs).
    ///
    /// # Errors
    ///
    /// * [`WaveletError::LengthMismatch`] if the operands summarize
    ///   segments of different lengths.
    /// * [`WaveletError::ZeroBudget`] if `k == 0`.
    pub fn merge(newer: &Self, older: &Self, k: usize) -> Result<Self, WaveletError> {
        let keep = Self::merge_budget(newer, older, k)?;
        let mut store = Store::with_capacity(keep);
        Self::merge_fill(newer, older, keep, &mut store);
        Ok(HaarCoeffs {
            len: 2 * newer.len,
            store,
        })
    }

    /// As [`Self::merge`], but drawing any heap buffer the result needs
    /// from `scratch` instead of the allocator. The output is identical to
    /// `merge` (same coefficients, same logical representation); only the
    /// provenance of the backing buffer differs. Budgets of `k <= 3` stay
    /// inline and never touch the scratch, so batched callers pay zero
    /// allocations for the paper's default configurations.
    ///
    /// # Errors
    ///
    /// Same as [`Self::merge`].
    pub fn merge_with(
        newer: &Self,
        older: &Self,
        k: usize,
        scratch: &mut MergeScratch,
    ) -> Result<Self, WaveletError> {
        let keep = Self::merge_budget(newer, older, k)?;
        let mut store = if keep <= INLINE_CAP {
            Store::with_capacity(keep)
        } else {
            Store::Heap(scratch.take(keep))
        };
        Self::merge_fill(newer, older, keep, &mut store);
        Ok(HaarCoeffs {
            len: 2 * newer.len,
            store,
        })
    }

    /// Validate a merge and compute how many coefficients the parent keeps.
    fn merge_budget(newer: &Self, older: &Self, k: usize) -> Result<usize, WaveletError> {
        if k == 0 {
            return Err(WaveletError::ZeroBudget);
        }
        if newer.len != older.len {
            return Err(WaveletError::LengthMismatch {
                newer: newer.len,
                older: older.len,
            });
        }
        Ok(k.min(2 * newer.len))
    }

    /// The merge core shared by [`Self::merge`] and [`Self::merge_with`]:
    /// push exactly `keep` parent coefficients into `store`. Keeping a
    /// single code path guarantees the two entry points produce
    /// bit-identical coefficients.
    fn merge_fill(newer: &Self, older: &Self, keep: usize, store: &mut Store) {
        let newer_c = newer.store.as_slice();
        let older_c = older.store.as_slice();
        // Root and depth-1 detail from the children's averages.
        let a = newer_c[0];
        let b = older_c[0];
        store.push((a + b) * 0.5);
        if keep >= 2 {
            store.push((a - b) * 0.5);
        }
        // Parent depth-j block (j >= 2, BFS offset 2^(j-1), size 2^(j-1)) is
        // the concatenation of the children's depth-(j-1) blocks (offset
        // 2^(j-2), size 2^(j-2) each).
        let child_depth = log2(newer.len) as usize;
        'outer: for j in 2..=(child_depth + 1) {
            let child_off = 1usize << (j - 2);
            let block = 1usize << (j - 2);
            for src in [newer_c, older_c] {
                for i in 0..block {
                    if store.len() == keep {
                        break 'outer;
                    }
                    store.push(src.get(child_off + i).copied().unwrap_or(0.0));
                }
            }
        }
    }

    /// Length of the summarized signal.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: a summary covers at least one value.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of coefficients actually stored.
    #[inline]
    pub fn stored(&self) -> usize {
        self.store.len()
    }

    /// Number of coefficients stored on the heap (0 for small budgets,
    /// which live inline) — for space accounting.
    pub fn heap_coefficients(&self) -> usize {
        match &self.store {
            Store::Inline { .. } => 0,
            Store::Heap(v) => v.len(),
        }
    }

    /// The exact average of the summarized segment (the root coefficient).
    #[inline]
    pub fn average(&self) -> f64 {
        self.store.as_slice()[0]
    }

    /// The stored coefficient prefix, breadth-first.
    #[inline]
    pub fn coefficients(&self) -> &[f64] {
        self.store.as_slice()
    }

    /// Reconstruct the full approximate signal (zero-padding truncated
    /// details). Costs `O(len)`; for a single value use [`Self::value_at`].
    pub fn reconstruct(&self) -> Vec<f64> {
        haar::inverse(self.store.as_slice(), self.len).expect("invariant: len is a power of two")
    }

    /// As [`Self::reconstruct`], writing into caller-provided buffers via
    /// [`haar::inverse_into`] — bit-identical values, no allocation once
    /// the buffers have grown to the signal length.
    pub fn reconstruct_into(&self, out: &mut Vec<f64>, tmp: &mut Vec<f64>) {
        haar::inverse_into(self.store.as_slice(), self.len, out, tmp)
            .expect("invariant: len is a power of two");
    }

    /// Approximate signal value at position `idx` in `O(log len)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn value_at(&self, idx: usize) -> f64 {
        haar::point(self.store.as_slice(), self.len, idx).expect("invariant: len is a power of two")
    }

    /// Accumulate another summary coefficient-wise: because the Haar
    /// transform is linear, the sum of two signals' coefficient vectors
    /// is exactly the coefficient vector of the summed signal. This is
    /// the aggregate-merge primitive a partitioned stream tier uses to
    /// combine per-shard aggregate summaries into one global summary
    /// without touching raw data. A shorter stored prefix on either side
    /// behaves as zero-padded detail, matching reconstruction semantics;
    /// the result keeps the longer prefix.
    ///
    /// # Errors
    ///
    /// [`WaveletError::LengthMismatch`] if the operands summarize
    /// signals of different lengths.
    pub fn add_assign(&mut self, other: &Self) -> Result<(), WaveletError> {
        if self.len != other.len {
            return Err(WaveletError::LengthMismatch {
                newer: self.len,
                older: other.len,
            });
        }
        let ours = self.store.as_slice();
        let theirs = other.store.as_slice();
        let keep = ours.len().max(theirs.len());
        let mut sum = Vec::with_capacity(keep);
        for i in 0..keep {
            sum.push(ours.get(i).copied().unwrap_or(0.0) + theirs.get(i).copied().unwrap_or(0.0));
        }
        self.store = Store::from_vec(sum);
        Ok(())
    }
}

/// A pool of reusable heap buffers for [`HaarCoeffs::merge_with`].
///
/// Streaming maintenance with a coefficient budget `k > 3` (beyond the
/// inline capacity) would otherwise allocate one `Vec<f64>` per merge.
/// A `MergeScratch` lets a batched caller recycle the buffers of
/// summaries it evicts: [`MergeScratch::reclaim`] returns a retired
/// summary's heap storage to the pool and the next `merge_with` reuses
/// it, so steady-state ingestion does no allocation at all.
///
/// `new()` allocates nothing; the pool only materializes once a heap
/// buffer is actually reclaimed.
#[derive(Debug, Default)]
pub struct MergeScratch {
    pool: Vec<Vec<f64>>,
}

/// A scratch is a pure cache: clones start with an empty pool (cheap and
/// allocation-free), which lets owners — e.g. a tree that hoists one for
/// its ingest path — keep deriving `Clone`.
impl Clone for MergeScratch {
    fn clone(&self) -> Self {
        MergeScratch::new()
    }
}

impl MergeScratch {
    /// An empty pool (no allocation).
    pub fn new() -> Self {
        MergeScratch { pool: Vec::new() }
    }

    /// Number of buffers currently pooled (for tests and accounting).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Take a cleared buffer with at least `cap` capacity.
    fn take(&mut self, cap: usize) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a retired summary's heap buffer to the pool. Inline
    /// summaries (budgets `<= 3`) carry no heap storage and are simply
    /// dropped.
    pub fn reclaim(&mut self, coeffs: HaarCoeffs) {
        if let Store::Heap(buf) = coeffs.store {
            self.pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let c = HaarCoeffs::scalar(42.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.average(), 42.0);
        assert_eq!(c.reconstruct(), vec![42.0]);
        assert_eq!(c.value_at(0), 42.0);
        assert_eq!(c.heap_coefficients(), 0, "scalars live inline");
    }

    #[test]
    fn small_budgets_stay_inline_large_spill() {
        let sig: Vec<f64> = (0..16).map(|i| i as f64).collect();
        for k in 1..=3 {
            let c = HaarCoeffs::from_signal(&sig, k).unwrap();
            assert_eq!(c.heap_coefficients(), 0, "k={k} should be inline");
            assert_eq!(c.stored(), k);
        }
        let c = HaarCoeffs::from_signal(&sig, 4).unwrap();
        assert_eq!(c.heap_coefficients(), 4);
    }

    #[test]
    fn inline_merge_never_allocates_semantically() {
        // k = 1 merges produce inline results whose contents match the
        // heap-backed computation.
        let a = HaarCoeffs::scalar(14.0);
        let b = HaarCoeffs::scalar(4.0);
        let m = HaarCoeffs::merge(&a, &b, 1).unwrap();
        assert_eq!(m.heap_coefficients(), 0);
        assert_eq!(m.average(), 9.0);
        let m3 = HaarCoeffs::merge(&a, &b, 3).unwrap();
        assert_eq!(m3.heap_coefficients(), 0);
        assert_eq!(m3.coefficients(), &[9.0, 5.0]);
    }

    #[test]
    fn lossless_merge_equals_concatenated_transform() {
        let x = [14.0, 4.0];
        let y = [7.0, 19.0];
        let newer = HaarCoeffs::from_signal(&x, usize::MAX).unwrap();
        let older = HaarCoeffs::from_signal(&y, usize::MAX).unwrap();
        let merged = HaarCoeffs::merge(&newer, &older, usize::MAX).unwrap();
        let direct = HaarCoeffs::from_signal(&[14.0, 4.0, 7.0, 19.0], usize::MAX).unwrap();
        assert_eq!(merged, direct);
    }

    #[test]
    fn truncation_commutes_with_merge() {
        // merge(truncate_k(x), truncate_k(y), k) == truncate_k(transform(x ++ y))
        let x: Vec<f64> = (0..8).map(|i| ((i * 5) % 11) as f64).collect();
        let y: Vec<f64> = (0..8).map(|i| ((i * 3 + 1) % 13) as f64).collect();
        let mut combined = x.clone();
        combined.extend_from_slice(&y);
        for k in 1..=16 {
            let newer = HaarCoeffs::from_signal(&x, k).unwrap();
            let older = HaarCoeffs::from_signal(&y, k).unwrap();
            let merged = HaarCoeffs::merge(&newer, &older, k).unwrap();
            let direct = HaarCoeffs::from_signal(&combined, k).unwrap();
            assert_eq!(merged, direct, "k = {k}");
        }
    }

    #[test]
    fn one_coefficient_merge_tracks_averages() {
        // With k = 1 the merge is exactly the paper's running-average scheme.
        let newer = HaarCoeffs::scalar(14.0);
        let older = HaarCoeffs::scalar(4.0);
        let parent = HaarCoeffs::merge(&newer, &older, 1).unwrap();
        assert_eq!(parent.average(), 9.0);
        assert_eq!(parent.stored(), 1);
        assert_eq!(parent.reconstruct(), vec![9.0, 9.0]);
    }

    #[test]
    fn merge_chain_builds_levels() {
        // Build a height-3 summary by chained merges of scalars, as the
        // SWAT tree does, and compare against the direct transform.
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let k = 4;
        let s: Vec<HaarCoeffs> = data.iter().map(|&v| HaarCoeffs::scalar(v)).collect();
        let l1: Vec<HaarCoeffs> = (0..4)
            .map(|i| HaarCoeffs::merge(&s[2 * i], &s[2 * i + 1], k).unwrap())
            .collect();
        let l2: Vec<HaarCoeffs> = (0..2)
            .map(|i| HaarCoeffs::merge(&l1[2 * i], &l1[2 * i + 1], k).unwrap())
            .collect();
        let root = HaarCoeffs::merge(&l2[0], &l2[1], k).unwrap();
        let direct = HaarCoeffs::from_signal(&data, k).unwrap();
        assert_eq!(root, direct);
    }

    #[test]
    fn value_at_matches_reconstruct() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64).sqrt() * 7.0).collect();
        for k in [1, 2, 5, 32] {
            let c = HaarCoeffs::from_signal(&data, k).unwrap();
            let full = c.reconstruct();
            for (i, v) in full.iter().enumerate() {
                assert!((c.value_at(i) - v).abs() < 1e-9, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn from_parts_validation() {
        assert!(HaarCoeffs::from_parts(3, vec![1.0]).is_err());
        assert!(HaarCoeffs::from_parts(4, vec![]).is_err());
        assert!(HaarCoeffs::from_parts(2, vec![1.0, 2.0, 3.0]).is_err());
        let c = HaarCoeffs::from_parts(4, vec![5.0]).unwrap();
        assert_eq!(c.reconstruct(), vec![5.0; 4]);
    }

    #[test]
    fn merge_validation() {
        let a = HaarCoeffs::scalar(1.0);
        let b = HaarCoeffs::from_signal(&[1.0, 2.0], 2).unwrap();
        assert!(matches!(
            HaarCoeffs::merge(&a, &b, 1),
            Err(WaveletError::LengthMismatch { .. })
        ));
        assert!(matches!(
            HaarCoeffs::merge(&a, &a, 0),
            Err(WaveletError::ZeroBudget)
        ));
    }

    #[test]
    fn average_is_exact_regardless_of_k() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 29) % 97) as f64).collect();
        let mean = data.iter().sum::<f64>() / 64.0;
        for k in [1, 2, 8, 64] {
            let c = HaarCoeffs::from_signal(&data, k).unwrap();
            assert!((c.average() - mean).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn merge_with_matches_merge_bit_for_bit() {
        let x: Vec<f64> = (0..16).map(|i| ((i * 5) % 11) as f64 + 0.125).collect();
        let y: Vec<f64> = (0..16).map(|i| ((i * 3 + 1) % 13) as f64 - 0.5).collect();
        let mut scratch = MergeScratch::new();
        for k in 1..=32 {
            let newer = HaarCoeffs::from_signal(&x, k).unwrap();
            let older = HaarCoeffs::from_signal(&y, k).unwrap();
            let plain = HaarCoeffs::merge(&newer, &older, k).unwrap();
            let pooled = HaarCoeffs::merge_with(&newer, &older, k, &mut scratch).unwrap();
            assert_eq!(plain.len(), pooled.len(), "k = {k}");
            assert_eq!(plain.coefficients(), pooled.coefficients(), "k = {k}");
            assert_eq!(
                plain.heap_coefficients(),
                pooled.heap_coefficients(),
                "k = {k}: representation must agree"
            );
            scratch.reclaim(pooled);
        }
    }

    #[test]
    fn merge_with_small_budgets_skip_the_pool() {
        let a = HaarCoeffs::scalar(14.0);
        let b = HaarCoeffs::scalar(4.0);
        let mut scratch = MergeScratch::new();
        let m = HaarCoeffs::merge_with(&a, &b, 3, &mut scratch).unwrap();
        assert_eq!(m.heap_coefficients(), 0);
        scratch.reclaim(m);
        assert_eq!(scratch.pooled(), 0, "inline results carry no buffer");
    }

    #[test]
    fn merge_with_recycles_reclaimed_buffers() {
        let sig: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let newer = HaarCoeffs::from_signal(&sig, 8).unwrap();
        let older = HaarCoeffs::from_signal(&sig, 8).unwrap();
        let mut scratch = MergeScratch::new();
        let first = HaarCoeffs::merge_with(&newer, &older, 8, &mut scratch).unwrap();
        assert!(first.heap_coefficients() > 0);
        scratch.reclaim(first);
        assert_eq!(scratch.pooled(), 1);
        let second = HaarCoeffs::merge_with(&newer, &older, 8, &mut scratch).unwrap();
        assert_eq!(scratch.pooled(), 0, "the pooled buffer was reused");
        assert_eq!(second, HaarCoeffs::merge(&newer, &older, 8).unwrap());
    }

    #[test]
    fn merge_with_validation_matches_merge() {
        let a = HaarCoeffs::scalar(1.0);
        let b = HaarCoeffs::from_signal(&[1.0, 2.0], 2).unwrap();
        let mut scratch = MergeScratch::new();
        assert!(matches!(
            HaarCoeffs::merge_with(&a, &b, 1, &mut scratch),
            Err(WaveletError::LengthMismatch { .. })
        ));
        assert!(matches!(
            HaarCoeffs::merge_with(&a, &a, 0, &mut scratch),
            Err(WaveletError::ZeroBudget)
        ));
    }

    #[test]
    fn add_assign_matches_summed_signal() {
        // Linearity: coefficients of x + coefficients of y = coefficients
        // of (x + y), including across unequal stored prefixes (the
        // shorter side's missing details are zero-padded).
        let x: Vec<f64> = (0..8).map(|i| ((i * 5) % 11) as f64).collect();
        let y: Vec<f64> = (0..8).map(|i| ((i * 3 + 1) % 13) as f64 - 6.0).collect();
        let summed: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        for (ka, kb) in [(8, 8), (3, 8), (8, 2), (1, 1)] {
            let mut a = HaarCoeffs::from_signal(&x, ka).unwrap();
            let b = HaarCoeffs::from_signal(&y, kb).unwrap();
            a.add_assign(&b).unwrap();
            let direct = HaarCoeffs::from_signal(&summed, ka.max(kb)).unwrap();
            // Stored prefixes match where both sides kept detail; the
            // tail of the longer side carries the other's coefficients
            // verbatim (zero-padded shorter operand).
            assert_eq!(a.len(), 8);
            assert_eq!(a.stored(), ka.max(kb), "ka={ka} kb={kb}");
            if ka == kb {
                assert_eq!(a, direct, "ka={ka} kb={kb}");
            } else {
                // Shared prefix must still be the exact sum.
                for i in 0..ka.min(kb) {
                    assert!(
                        (a.coefficients()[i] - direct.coefficients()[i]).abs() < 1e-12,
                        "ka={ka} kb={kb} i={i}"
                    );
                }
            }
        }
        // Mismatched signal lengths are rejected.
        let mut a = HaarCoeffs::scalar(1.0);
        let b = HaarCoeffs::from_signal(&[1.0, 2.0], 2).unwrap();
        assert!(matches!(
            a.add_assign(&b),
            Err(WaveletError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn equality_is_representation_independent() {
        // Inline and heap stores with the same logical contents compare
        // equal (from_parts picks representation by size).
        let a = HaarCoeffs::from_parts(8, vec![1.0, 2.0]).unwrap();
        let b = HaarCoeffs::from_parts(8, vec![1.0, 2.0]).unwrap();
        assert_eq!(a, b);
        let c = HaarCoeffs::from_parts(8, vec![1.0, 2.0, 0.5, 0.25]).unwrap();
        assert_ne!(a, c);
    }
}
