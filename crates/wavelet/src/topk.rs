//! Mergeable top-k coefficient summaries for partitioned stream sets.
//!
//! A partitioned ingest tier (see `swat_tree::shard`) keeps one SWAT tree
//! per stream, spread across shards. Cross-stream queries of the form
//! "which coefficients are globally largest" must not scan every shard's
//! every tree; instead each shard maintains a small [`TopKSummary`] over
//! the coefficients it owns, and summaries **merge**: the merge of two
//! shards' summaries is exactly the summary the union of their
//! coefficients would produce. This is the property Ganguly's
//! deterministic update-stream summaries call for — per-partition state
//! that combines without re-scanning — and it is what makes the
//! Jestes–Yi–Li exact distributed top-k algorithm (arXiv:1110.6649) work:
//! each partition ships its local top-k′ plus a threshold, the
//! coordinator merges and prunes, and one refinement round makes the
//! result exact.
//!
//! Every coefficient is identified by the stream that produced it and its
//! breadth-first index within that stream's root summary, so candidates
//! from different shards never collide (streams are disjoint across
//! shards) and ties break deterministically.

use std::fmt;

/// One candidate coefficient: where it came from and its value.
///
/// Ordering is by descending magnitude with deterministic tie-breaking on
/// `(stream, index)` ascending, so any two agents ranking the same
/// candidate set produce the same order bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopCoeff {
    /// Global id of the stream the coefficient belongs to.
    pub stream: u64,
    /// Breadth-first index of the coefficient within that stream's
    /// summary.
    pub index: u32,
    /// The coefficient value (ranked by `|value|`).
    pub value: f64,
}

impl TopCoeff {
    /// The ranking weight: coefficient magnitude.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.value.abs()
    }

    /// Total order: larger magnitude first, then `(stream, index)`
    /// ascending. Total because magnitudes are finite by construction.
    fn rank_before(&self, other: &TopCoeff) -> bool {
        match self.weight().partial_cmp(&other.weight()) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            _ => (self.stream, self.index) < (other.stream, other.index),
        }
    }
}

impl fmt::Display for TopCoeff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}[{}]={}", self.stream, self.index, self.value)
    }
}

/// A bounded summary of the `k` largest-magnitude coefficients seen.
///
/// Inserting every coefficient of a partition and merging partitions'
/// summaries commute: `merge(S(A), S(B)) == S(A ∪ B)` as long as no
/// `(stream, index)` identity appears in both partitions (shards own
/// disjoint stream sets, so this holds by construction). The
/// `merge_matches_union` test pins the property.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSummary {
    k: usize,
    /// Entries in rank order (largest magnitude first), at most `k`.
    entries: Vec<TopCoeff>,
}

impl TopKSummary {
    /// An empty summary retaining at most `k` entries.
    ///
    /// `k == 0` is legal and degenerate: the summary retains nothing,
    /// ignores every offer, and its [`threshold`](Self::threshold) is
    /// `+∞` — *every* candidate is provably outside an empty top-0, so
    /// distributed pruning can skip such shards entirely.
    pub fn new(k: usize) -> Self {
        TopKSummary {
            k,
            entries: Vec::new(),
        }
    }

    /// The retention bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries currently retained, in rank order.
    pub fn entries(&self) -> &[TopCoeff] {
        &self.entries
    }

    /// Number of entries retained (`<= k`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no coefficient has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The summary's pruning threshold: the weight of its `k`-th entry,
    /// or `0` while it holds fewer than `k` (anything could still enter).
    /// Every coefficient ever offered with weight strictly below the
    /// threshold is provably outside the summary's top-k. For `k == 0`
    /// the threshold is `+∞`: nothing can ever enter a top-0.
    pub fn threshold(&self) -> f64 {
        if self.k == 0 {
            f64::INFINITY
        } else if self.entries.len() < self.k {
            0.0
        } else {
            self.entries[self.k - 1].weight()
        }
    }

    /// Offer one coefficient. Non-finite values are ignored (they carry
    /// no rankable magnitude); everything else is inserted in rank order
    /// and the summary re-truncated to `k`.
    pub fn offer(&mut self, c: TopCoeff) {
        if !c.value.is_finite() {
            return;
        }
        // Binary search for the rank position keeps offers O(log k) plus
        // the memmove; k is small by design.
        let pos = self.entries.partition_point(|e| e.rank_before(&c));
        if pos >= self.k {
            return;
        }
        self.entries.insert(pos, c);
        self.entries.truncate(self.k);
    }

    /// Merge another summary in. The result ranks the union of both
    /// entry sets; with disjoint coefficient identities this equals the
    /// summary of the union of the original coefficient populations
    /// truncated to `min(self.k, other.k)` retained entries' worth of
    /// certainty — callers merging summaries of equal `k` get the exact
    /// union-of-top-k semantics the distributed algorithm needs.
    pub fn merge(&mut self, other: &TopKSummary) {
        for &e in &other.entries {
            self.offer(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(stream: u64, index: u32, value: f64) -> TopCoeff {
        TopCoeff {
            stream,
            index,
            value,
        }
    }

    /// Brute-force oracle: rank all candidates, keep k.
    fn oracle(mut all: Vec<TopCoeff>, k: usize) -> Vec<TopCoeff> {
        all.sort_by(|a, b| {
            b.weight()
                .partial_cmp(&a.weight())
                .unwrap()
                .then_with(|| (a.stream, a.index).cmp(&(b.stream, b.index)))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn retains_largest_magnitudes() {
        let mut s = TopKSummary::new(3);
        for (i, v) in [1.0, -5.0, 2.0, 0.5, -3.0].into_iter().enumerate() {
            s.offer(c(0, i as u32, v));
        }
        let weights: Vec<f64> = s.entries().iter().map(TopCoeff::weight).collect();
        assert_eq!(weights, vec![5.0, 3.0, 2.0]);
        assert_eq!(s.threshold(), 2.0);
    }

    #[test]
    fn threshold_is_zero_while_underfull() {
        let mut s = TopKSummary::new(4);
        assert_eq!(s.threshold(), 0.0);
        s.offer(c(0, 0, 9.0));
        assert_eq!(s.threshold(), 0.0, "underfull summaries cannot prune");
        for i in 1..4 {
            s.offer(c(0, i, 1.0));
        }
        assert_eq!(s.threshold(), 1.0);
    }

    #[test]
    fn ties_break_on_stream_then_index() {
        let mut s = TopKSummary::new(2);
        s.offer(c(7, 1, 2.0));
        s.offer(c(3, 9, -2.0));
        s.offer(c(3, 2, 2.0));
        assert_eq!(s.entries()[0], c(3, 2, 2.0));
        assert_eq!(s.entries()[1], c(3, 9, -2.0));
    }

    #[test]
    fn non_finite_offers_are_ignored() {
        let mut s = TopKSummary::new(2);
        s.offer(c(0, 0, f64::NAN));
        s.offer(c(0, 1, f64::INFINITY));
        assert!(s.is_empty());
        s.offer(c(0, 2, 1.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_matches_union() {
        // Deterministic pseudo-random populations split across "shards":
        // merging per-shard summaries equals summarizing the union.
        for k in [1usize, 3, 8] {
            let all: Vec<TopCoeff> = (0..60)
                .map(|i| c(i % 7, i as u32, (((i * 37 + 11) % 23) as f64) - 11.0))
                .collect();
            let mut merged = TopKSummary::new(k);
            for shard in all.chunks(13) {
                let mut local = TopKSummary::new(k);
                for &e in shard {
                    local.offer(e);
                }
                merged.merge(&local);
            }
            let mut direct = TopKSummary::new(k);
            for &e in &all {
                direct.offer(e);
            }
            assert_eq!(merged, direct, "k={k}");
            assert_eq!(merged.entries(), &oracle(all, k)[..], "k={k} vs oracle");
        }
    }

    #[test]
    fn merge_is_order_insensitive() {
        let pop: Vec<TopCoeff> = (0..24)
            .map(|i| c(i, i as u32, ((i * 13 % 17) as f64) - 8.0))
            .collect();
        let halves: Vec<TopKSummary> = pop
            .chunks(8)
            .map(|chunk| {
                let mut s = TopKSummary::new(5);
                for &e in chunk {
                    s.offer(e);
                }
                s
            })
            .collect();
        let mut ab = halves[0].clone();
        ab.merge(&halves[1]);
        ab.merge(&halves[2]);
        let mut ba = halves[2].clone();
        ba.merge(&halves[0]);
        ba.merge(&halves[1]);
        assert_eq!(ab, ba);
    }

    #[test]
    fn zero_k_is_legal_and_inert() {
        let mut s = TopKSummary::new(0);
        assert_eq!(s.k(), 0);
        assert!(s.is_empty());
        assert_eq!(s.threshold(), f64::INFINITY, "top-0 prunes everything");
        s.offer(c(0, 0, 42.0));
        assert!(s.is_empty(), "a top-0 summary retains nothing");
        assert_eq!(s.threshold(), f64::INFINITY);

        // Merging in either direction neither panics nor leaks entries
        // into the zero-capacity side.
        let mut full = TopKSummary::new(3);
        full.offer(c(1, 0, 5.0));
        full.offer(c(1, 1, -2.0));
        let mut zero = TopKSummary::new(0);
        zero.merge(&full);
        assert!(zero.is_empty());
        let before = full.clone();
        full.merge(&zero);
        assert_eq!(full, before, "merging an empty top-0 is a no-op");
    }

    #[test]
    fn merging_with_empty_summary_is_identity() {
        let mut s = TopKSummary::new(4);
        for (i, v) in [3.0, -7.0, 1.0].into_iter().enumerate() {
            s.offer(c(0, i as u32, v));
        }
        let before = s.clone();
        let empty = TopKSummary::new(4);
        s.merge(&empty);
        assert_eq!(s, before, "empty right operand");

        let mut fresh = TopKSummary::new(4);
        fresh.merge(&before);
        assert_eq!(fresh, before, "empty left operand absorbs the other");
    }

    #[test]
    fn k_larger_than_population_keeps_everything() {
        // k far above the candidate count: the summary is just a ranked
        // copy of the population and the threshold stays 0 (underfull).
        let all: Vec<TopCoeff> = (0..5).map(|i| c(i, i as u32, (i as f64) - 2.0)).collect();
        let mut merged = TopKSummary::new(100);
        for shard in all.chunks(2) {
            let mut local = TopKSummary::new(100);
            for &e in shard {
                local.offer(e);
            }
            merged.merge(&local);
        }
        assert_eq!(merged.len(), all.len());
        assert_eq!(merged.threshold(), 0.0, "underfull: cannot prune");
        assert_eq!(merged.entries(), &oracle(all, 100)[..]);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", c(3, 1, -2.5));
        assert!(s.contains('3') && s.contains("-2.5"));
    }
}
