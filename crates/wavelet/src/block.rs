//! Block (SoA) kernels for batched Haar maintenance.
//!
//! The scalar ingest path builds one [`HaarCoeffs`] per merge: a struct
//! with an inline-or-heap store, constructed and moved around once per
//! arrival per level. That is exact but branchy, and the compiler cannot
//! vectorize across arrivals because every merge round-trips through the
//! `Store` enum.
//!
//! This module provides the batched alternative: coefficient prefixes of
//! *many* sibling summaries laid out back to back in one flat `&[f64]`
//! slab (structure-of-arrays: entry `i`'s stored prefix occupies
//! `slab[i*stride .. (i+1)*stride]`), and two kernels over such slabs:
//!
//! * [`forward_block`] — level-0 summaries for a whole chunk of raw
//!   values at once: `avg`/`det` lanes over `(values[2i], values[2i+1])`
//!   pairs, replacing one `scalar` + `merge` round-trip per arrival,
//! * [`PairMergePlan`] — a precompiled description of where each parent
//!   coefficient of a sibling merge comes from, applied to adjacent
//!   slab entries with [`PairMergePlan::merge_adjacent`] (or one pair at
//!   a time with [`PairMergePlan::merge_one`]).
//!
//! # Bit-identity
//!
//! These kernels are *drop-in* replacements for [`HaarCoeffs::merge`]:
//! the plan is compiled by replaying the exact control flow of the scalar
//! merge (root average, depth-1 detail, then the children's detail blocks
//! interleaved breadth-first, truncated at the parent budget), and each
//! op applies the same arithmetic expression — `(a + b) * 0.5`,
//! `(a - b) * 0.5`, or a verbatim copy. Rust never contracts `a * b + c`
//! into fused multiply-adds, so the vectorized loops produce the same
//! bits as the scalar path, value for value. The `plan_matches_merge`
//! tests below pin this.
//!
//! # Why truncation still commutes
//!
//! The scalar merge zero-pads when a parent slot would read past a
//! child's stored prefix. With the standard stored count
//! `min(k, child_len)` that never happens: a parent coefficient at BFS
//! position `p` reads a child position `q <= p - 2^(j-2) < p < k`, and
//! `q < child_len` because `q` lies inside a depth-`(j-1)` child block.
//! The plan still carries an explicit [`PairOp::Zero`] for defensive
//! generality (callers may compile plans for nonstandard stored counts),
//! so the kernels are total.

use crate::error::WaveletError;
use crate::{is_power_of_two, log2};

/// Level-0 block kernel: the stored coefficient prefixes of the summaries
/// of adjacent raw-value pairs, computed for a whole chunk at once.
///
/// Pair `i` is `(older, newer) = (values[2i], values[2i+1])` — the SWAT
/// convention where the higher index arrived later. Each pair's summary
/// keeps `min(k, 2)` coefficients: the average `(newer + older) * 0.5`
/// and, if the budget allows, the detail `(newer - older) * 0.5` —
/// bit-identical to `HaarCoeffs::merge(scalar(newer), scalar(older), k)`.
///
/// Writes `values.len() / 2` entries of stride `min(k, 2)` into `out`
/// (a trailing odd value is ignored).
///
/// # Panics
///
/// Panics if `k == 0` or `out` is shorter than `(values.len() / 2) *
/// min(k, 2)`.
pub fn forward_block(values: &[f64], k: usize, out: &mut [f64]) {
    assert!(k > 0, "zero coefficient budget");
    let pairs = values.len() / 2;
    let keep = k.min(2);
    let out = &mut out[..pairs * keep];
    if keep == 1 {
        for (o, p) in out.iter_mut().zip(values.chunks_exact(2)) {
            *o = (p[1] + p[0]) * 0.5;
        }
    } else {
        for (o, p) in out.chunks_exact_mut(2).zip(values.chunks_exact(2)) {
            o[0] = (p[1] + p[0]) * 0.5;
            o[1] = (p[1] - p[0]) * 0.5;
        }
    }
}

/// Where one parent coefficient of a sibling merge comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOp {
    /// `(newer[0] + older[0]) * 0.5` — the parent average.
    Avg,
    /// `(newer[0] - older[0]) * 0.5` — the depth-1 detail.
    Diff,
    /// Copy of the newer child's stored coefficient at this index.
    Newer(u32),
    /// Copy of the older child's stored coefficient at this index.
    Older(u32),
    /// The child's prefix was truncated before this position: zero-pad.
    Zero,
}

/// A precompiled sibling merge: for fixed child signal length, child
/// stored count, and parent budget, the source of every parent
/// coefficient.
///
/// Compiling the plan once per tree level and replaying it over a flat
/// slab of child prefixes turns the scalar merge's nested branchy loops
/// into a tight copy/fma-free kernel the compiler can unroll and
/// vectorize — with bit-identical output (see the module docs).
#[derive(Debug, Clone)]
pub struct PairMergePlan {
    child_len: usize,
    child_stored: usize,
    ops: Vec<PairOp>,
}

impl PairMergePlan {
    /// Compile the merge of two adjacent summaries of `child_len`-value
    /// segments, each storing `child_stored` coefficients, into their
    /// parent under budget `k`.
    ///
    /// The op sequence replays `HaarCoeffs::merge` exactly: parent
    /// positions 0 and 1 are the average/detail of the children's
    /// averages; parent depth-`j` blocks (`j >= 2`) interleave the
    /// children's depth-`(j-1)` blocks, newer child first; generation
    /// stops after `min(k, 2 * child_len)` coefficients.
    ///
    /// # Errors
    ///
    /// * [`WaveletError::NotPowerOfTwo`] if `child_len` is not a power of
    ///   two.
    /// * [`WaveletError::ZeroBudget`] if `k == 0` or `child_stored == 0`.
    pub fn new(child_len: usize, child_stored: usize, k: usize) -> Result<Self, WaveletError> {
        if !is_power_of_two(child_len) {
            return Err(WaveletError::NotPowerOfTwo { len: child_len });
        }
        if k == 0 || child_stored == 0 {
            return Err(WaveletError::ZeroBudget);
        }
        let keep = k.min(2 * child_len);
        let mut ops = Vec::with_capacity(keep);
        ops.push(PairOp::Avg);
        if keep >= 2 {
            ops.push(PairOp::Diff);
        }
        let child_depth = log2(child_len) as usize;
        'outer: for j in 2..=(child_depth + 1) {
            let child_off = 1usize << (j - 2);
            let block = 1usize << (j - 2);
            for newer_side in [true, false] {
                for i in 0..block {
                    if ops.len() == keep {
                        break 'outer;
                    }
                    let q = child_off + i;
                    ops.push(if q >= child_stored {
                        PairOp::Zero
                    } else if newer_side {
                        PairOp::Newer(q as u32)
                    } else {
                        PairOp::Older(q as u32)
                    });
                }
            }
        }
        Ok(PairMergePlan {
            child_len,
            child_stored,
            ops,
        })
    }

    /// Child segment length this plan was compiled for.
    #[inline]
    pub fn child_len(&self) -> usize {
        self.child_len
    }

    /// Stored coefficient count of each child entry (the slab stride).
    #[inline]
    pub fn child_stored(&self) -> usize {
        self.child_stored
    }

    /// Number of parent coefficients produced per pair (the output
    /// stride).
    #[inline]
    pub fn parent_stored(&self) -> usize {
        self.ops.len()
    }

    /// Merge one sibling pair: `newer`/`older` are stored prefixes of
    /// length [`Self::child_stored`], `out` receives
    /// [`Self::parent_stored`] parent coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than the plan requires.
    #[inline]
    pub fn merge_one(&self, newer: &[f64], older: &[f64], out: &mut [f64]) {
        let newer = &newer[..self.child_stored];
        let older = &older[..self.child_stored];
        for (dst, op) in out[..self.ops.len()].iter_mut().zip(&self.ops) {
            *dst = match *op {
                PairOp::Avg => (newer[0] + older[0]) * 0.5,
                PairOp::Diff => (newer[0] - older[0]) * 0.5,
                PairOp::Newer(q) => newer[q as usize],
                PairOp::Older(q) => older[q as usize],
                PairOp::Zero => 0.0,
            };
        }
    }

    /// Merge `pairs` adjacent slab entries: entry `2i` is pair `i`'s
    /// *older* child, entry `2i + 1` its *newer* child (stream order —
    /// later slab entries are more recent), writing parent `i` at output
    /// stride [`Self::parent_stored`].
    ///
    /// # Panics
    ///
    /// Panics if `children` is shorter than `2 * pairs * child_stored`
    /// or `out` shorter than `pairs * parent_stored`.
    pub fn merge_adjacent(&self, children: &[f64], out: &mut [f64], pairs: usize) {
        let cs = self.child_stored;
        let ps = self.ops.len();
        let children = &children[..pairs * 2 * cs];
        let out = &mut out[..pairs * ps];
        for (o, pair) in out.chunks_exact_mut(ps).zip(children.chunks_exact(2 * cs)) {
            let (older, newer) = pair.split_at(cs);
            for (dst, op) in o.iter_mut().zip(&self.ops) {
                *dst = match *op {
                    PairOp::Avg => (newer[0] + older[0]) * 0.5,
                    PairOp::Diff => (newer[0] - older[0]) * 0.5,
                    PairOp::Newer(q) => newer[q as usize],
                    PairOp::Older(q) => older[q as usize],
                    PairOp::Zero => 0.0,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::HaarCoeffs;

    fn prefixes(stored: usize, count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|e| {
                (0..stored)
                    .map(|i| ((e * 31 + i * 7 + 3) % 23) as f64 - 11.0 + (i as f64) * 0.125)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_block_matches_scalar_merge() {
        let values: Vec<f64> = (0..32).map(|i| ((i * 13 + 5) % 41) as f64 - 20.0).collect();
        for k in [1usize, 2, 3, 8] {
            let keep = k.min(2);
            let mut out = vec![0.0; (values.len() / 2) * keep];
            forward_block(&values, k, &mut out);
            for i in 0..values.len() / 2 {
                let scalar = HaarCoeffs::merge(
                    &HaarCoeffs::scalar(values[2 * i + 1]),
                    &HaarCoeffs::scalar(values[2 * i]),
                    k,
                )
                .unwrap();
                let got = &out[i * keep..(i + 1) * keep];
                for (a, b) in got.iter().zip(scalar.coefficients()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} pair={i}");
                }
            }
        }
    }

    #[test]
    fn plan_matches_merge_bit_for_bit() {
        // Every (child_len, k) combination the tree can produce: children
        // store min(k, child_len) coefficients.
        for log_len in 1..=5u32 {
            let child_len = 1usize << log_len;
            for k in [1usize, 2, 3, 4, 5, 7, 8, 16, 64] {
                let stored = k.min(child_len);
                let plan = PairMergePlan::new(child_len, stored, k).unwrap();
                let ps = plan.parent_stored();
                assert_eq!(ps, k.min(2 * child_len));
                let entries = prefixes(stored, 8);
                let mut out = vec![0.0; ps];
                for pair in entries.chunks(2) {
                    let (older, newer) = (&pair[0], &pair[1]);
                    plan.merge_one(newer, older, &mut out);
                    let a = HaarCoeffs::from_parts(child_len, newer.clone()).unwrap();
                    let b = HaarCoeffs::from_parts(child_len, older.clone()).unwrap();
                    let merged = HaarCoeffs::merge(&a, &b, k).unwrap();
                    assert_eq!(merged.stored(), ps, "child_len={child_len} k={k}");
                    for (x, y) in out.iter().zip(merged.coefficients()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "child_len={child_len} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn merge_adjacent_matches_merge_one() {
        let child_len = 8;
        for k in [1usize, 3, 8, 16] {
            let stored = k.min(child_len);
            let plan = PairMergePlan::new(child_len, stored, k).unwrap();
            let ps = plan.parent_stored();
            let entries = prefixes(stored, 12);
            let slab: Vec<f64> = entries.iter().flatten().copied().collect();
            let pairs = entries.len() / 2;
            let mut blocked = vec![0.0; pairs * ps];
            plan.merge_adjacent(&slab, &mut blocked, pairs);
            let mut one = vec![0.0; ps];
            for i in 0..pairs {
                plan.merge_one(&entries[2 * i + 1], &entries[2 * i], &mut one);
                assert_eq!(&blocked[i * ps..(i + 1) * ps], &one[..], "k={k} pair={i}");
            }
        }
    }

    #[test]
    fn truncated_children_zero_pad_like_scalar() {
        // Nonstandard stored counts (shorter than min(k, child_len)) take
        // the Zero path; the scalar merge zero-pads identically.
        let child_len = 8;
        let stored = 2; // shorter than min(k, child_len)
        let k = 12;
        let plan = PairMergePlan::new(child_len, stored, k).unwrap();
        assert!(plan.ops.contains(&PairOp::Zero));
        let newer = vec![3.5, -1.25];
        let older = vec![-0.5, 2.0];
        let mut out = vec![f64::NAN; plan.parent_stored()];
        plan.merge_one(&newer, &older, &mut out);
        let a = HaarCoeffs::from_parts(child_len, newer).unwrap();
        let b = HaarCoeffs::from_parts(child_len, older).unwrap();
        let merged = HaarCoeffs::merge(&a, &b, k).unwrap();
        assert_eq!(&out[..], merged.coefficients());
    }

    #[test]
    fn plan_validation() {
        assert!(matches!(
            PairMergePlan::new(3, 1, 1),
            Err(WaveletError::NotPowerOfTwo { len: 3 })
        ));
        assert!(matches!(
            PairMergePlan::new(4, 1, 0),
            Err(WaveletError::ZeroBudget)
        ));
        assert!(matches!(
            PairMergePlan::new(4, 0, 1),
            Err(WaveletError::ZeroBudget)
        ));
    }

    #[test]
    #[should_panic(expected = "zero coefficient budget")]
    fn forward_block_rejects_zero_budget() {
        forward_block(&[1.0, 2.0], 0, &mut [0.0; 2]);
    }
}
