//! Wavelet transform substrate for the SWAT stream summarization system.
//!
//! The SWAT approximation tree (see the `swat-tree` crate) summarizes a
//! sliding window of a data stream by keeping, at every tree node, a small
//! number of wavelet coefficients of the window segment the node covers.
//! This crate provides everything the tree needs from wavelet theory:
//!
//! * [`haar`] — the non-normalized Haar transform (pairwise average /
//!   half-difference) used throughout the paper, with full forward and
//!   inverse multilevel transforms over power-of-two signals,
//! * [`block`] — flat SoA batch kernels over slabs of stored coefficient
//!   prefixes: [`forward_block`] level-0 lanes and precompiled
//!   [`PairMergePlan`] sibling merges, bit-identical to the scalar
//!   [`HaarCoeffs::merge`] — the substrate of `swat-tree`'s chunked
//!   ingest fast path,
//! * [`ortho`] — the orthonormal Haar variant (scaling by `1/sqrt(2)`),
//!   useful when energy preservation (Parseval) matters,
//! * [`daubechies`] — a periodic Daubechies-4 transform, demonstrating the
//!   paper's remark that "any of the wavelet bases such as Haar,
//!   Daubechies, … can be used",
//! * [`dot`] — wavelet-domain inner products: the adjoint transform and
//!   an `O(k)` dot-product kernel over truncated coefficient vectors,
//!   with closed-form transformed weights for the paper's §2.4 query
//!   profiles cached in a [`ProfileTable`],
//! * [`thresholded`] — largest-`k` (energy-optimal) synopses in the
//!   style of Gilbert et al., provided for contrast: they beat the
//!   prefix form in L2 for static signals but are not mergeable, which
//!   is why the tree does not use them,
//! * [`topk`] — mergeable top-k coefficient summaries for partitioned
//!   stream sets, the per-shard state behind the Jestes–Yi–Li exact
//!   distributed top-k merge in `swat_tree::shard`,
//! * [`HaarCoeffs`] — the central data type: a *truncated* Haar coefficient
//!   vector in breadth-first (coarsest-first) order supporting the exact
//!   `O(k)` sibling **merge** that powers the SWAT update algorithm
//!   (`contents(R_l) := DWT(R_{l-1}, L_{l-1})` in the paper's Figure 3a),
//!   zero-padded reconstruction, and `O(log n)` single-point evaluation.
//!
//! # Coefficient order
//!
//! For a signal of length `2^d` the non-normalized Haar decomposition is
//! stored breadth-first:
//!
//! ```text
//! [ overall average,
//!   depth-1 detail              (1 value),
//!   depth-2 details             (2 values),
//!   ...
//!   depth-d details             (2^(d-1) values) ]
//! ```
//!
//! where the detail of a node equals `(left-child average − right-child
//! average) / 2`. Truncating this vector to its first `k` entries keeps the
//! coarsest structure of the signal, and reconstruction simply substitutes
//! zeros for the missing detail coefficients — exactly the paper's
//! "at each step a zero vector is used as the detail coefficient".
//!
//! # Example
//!
//! ```
//! use swat_wavelet::HaarCoeffs;
//!
//! // Summarize two adjacent segments and merge them into their parent.
//! let newer = HaarCoeffs::from_signal(&[7.0, 5.0], usize::MAX).unwrap();
//! let older = HaarCoeffs::from_signal(&[1.0, 3.0], usize::MAX).unwrap();
//! let parent = HaarCoeffs::merge(&newer, &older, usize::MAX).unwrap();
//! assert_eq!(parent.reconstruct(), vec![7.0, 5.0, 1.0, 3.0]);
//!
//! // Truncation keeps coarse structure: k = 1 keeps just the average.
//! let avg_only = HaarCoeffs::from_signal(&[7.0, 5.0, 1.0, 3.0], 1).unwrap();
//! assert_eq!(avg_only.reconstruct(), vec![4.0; 4]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod block;
pub mod coeffs;
pub mod daubechies;
pub mod dot;
pub mod error;
pub mod filterbank;
pub mod haar;
pub mod ortho;
pub mod thresholded;
pub mod topk;

pub use block::{forward_block, PairMergePlan, PairOp};
pub use coeffs::{HaarCoeffs, MergeScratch};
pub use dot::{CanonicalProfile, ProfileTable};
pub use error::WaveletError;
pub use filterbank::OrthogonalFilter;
pub use thresholded::ThresholdedCoeffs;
pub use topk::{TopCoeff, TopKSummary};

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics in debug builds if `n` is not a power of two.
#[inline]
pub fn log2(n: usize) -> u32 {
    debug_assert!(is_power_of_two(n), "log2 of non-power-of-two {n}");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1023));
    }

    #[test]
    fn log2_of_powers() {
        assert_eq!(log2(1), 0);
        assert_eq!(log2(2), 1);
        assert_eq!(log2(16), 4);
        assert_eq!(log2(1 << 20), 20);
    }
}
