//! Error type shared by the transforms in this crate.

use std::fmt;

/// Errors produced by wavelet transforms and coefficient operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveletError {
    /// The input signal length must be a power of two (and nonzero).
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// Two coefficient vectors being merged must summarize segments of the
    /// same length.
    LengthMismatch {
        /// Length of the first (newer) operand's underlying signal.
        newer: usize,
        /// Length of the second (older) operand's underlying signal.
        older: usize,
    },
    /// The coefficient budget `k` must be at least one.
    ZeroBudget,
    /// The input signal is too short for the requested operation.
    TooShort {
        /// Actual length.
        len: usize,
        /// Minimum required length.
        min: usize,
    },
}

impl fmt::Display for WaveletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveletError::NotPowerOfTwo { len } => {
                write!(f, "signal length {len} is not a nonzero power of two")
            }
            WaveletError::LengthMismatch { newer, older } => write!(
                f,
                "cannot merge coefficient vectors over segments of different \
                 lengths ({newer} vs {older})"
            ),
            WaveletError::ZeroBudget => write!(f, "coefficient budget k must be >= 1"),
            WaveletError::TooShort { len, min } => {
                write!(f, "signal length {len} is below the minimum {min}")
            }
        }
    }
}

impl std::error::Error for WaveletError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = WaveletError::NotPowerOfTwo { len: 7 };
        assert!(e.to_string().contains('7'));
        let e = WaveletError::LengthMismatch { newer: 4, older: 8 };
        assert!(e.to_string().contains("4 vs 8"));
        assert!(WaveletError::ZeroBudget.to_string().contains("k"));
        let e = WaveletError::TooShort { len: 2, min: 4 };
        assert!(e.to_string().contains("minimum 4"));
    }
}
