//! Plain-text table rendering for the figure binaries.

/// Print a padded table: a header row, a rule, then the data rows.
/// Columns are sized to their widest cell.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: Vec<&str>| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    render(headers.to_vec());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        render(row.iter().map(String::as_str).collect());
    }
}

/// Format a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.5), "0.5000");
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
    }

    #[test]
    fn fmt_duration_units() {
        use std::time::Duration;
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with(" µs"));
        assert!(fmt_duration(Duration::from_nanos(50)).ends_with(" ns"));
    }

    #[test]
    fn table_renders_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
