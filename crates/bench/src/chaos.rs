//! Chaos sweep: SWAT-ASR message cost and answer quality under faults.
//!
//! Sweeps a grid of drop rate × delay over the fault-aware driver
//! ([`swat_replication::run_chaos`]), with an optional crash-window
//! variant per cell, and reports per-cell message cost, answer rate,
//! and retry/loss counters. Renders as a table (via [`crate::report`])
//! and as the `results/BENCH_chaos.json` artifact (schema documented in
//! EXPERIMENTS.md); backs the `swat chaos` CLI subcommand. The headline
//! expectation: message cost rises with drop rate (retries + lost cache
//! warmth) while correctness never degrades — the `violations` field
//! must be zero in every cell.

use std::time::{SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_net::{DelayDist, FaultPlan, NodeId, Topology};
use swat_replication::harness::WorkloadConfig;
use swat_replication::{run_chaos, ChaosOptions, HealPolicy, SchemeKind};

/// The sweep grid.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Per-edge drop probabilities to sweep.
    pub drops: Vec<f64>,
    /// Maximum per-edge delays to sweep (`0` = instant, `d` = uniform
    /// `0..=d` ticks).
    pub delays: Vec<u64>,
    /// Depth of the complete binary client tree.
    pub depth: usize,
    /// Sliding-window size (power of two).
    pub window: usize,
    /// Simulation horizon in ticks.
    pub horizon: u64,
    /// Warm-up ticks excluded from measurement.
    pub warmup: u64,
    /// Query precision requirement `δ`.
    pub delta: f64,
    /// Master seed (workload and fault randomness both derive from it).
    pub seed: u64,
    /// Also run each cell with a mid-run crash window on one client.
    pub with_crash_variant: bool,
    /// Run every cell with the self-healing layer enabled
    /// (`swat chaos --heal`). Only crash cells behave differently —
    /// detection does not arm without crash windows.
    pub heal: bool,
}

impl ChaosConfig {
    /// The default full-size grid (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        ChaosConfig {
            drops: vec![0.0, 0.02, 0.05, 0.1, 0.2],
            delays: vec![0, 1, 4],
            depth: 3,
            window: 32,
            horizon: 4000,
            warmup: 500,
            delta: 20.0,
            seed,
            with_crash_variant: true,
            heal: false,
        }
    }

    /// A drastically shrunk grid for smoke tests.
    pub fn quick(seed: u64) -> Self {
        ChaosConfig {
            drops: vec![0.0, 0.1],
            delays: vec![0, 2],
            depth: 2,
            window: 16,
            horizon: 800,
            warmup: 150,
            delta: 20.0,
            seed,
            with_crash_variant: false,
            heal: false,
        }
    }

    fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            window: self.window,
            delta: self.delta,
            horizon: self.horizon,
            warmup: self.warmup,
            seed: self.seed,
            ..WorkloadConfig::default()
        }
    }
}

/// One measured (drop, delay, crash) cell.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Per-edge drop probability.
    pub drop: f64,
    /// Maximum per-edge delay in ticks (uniform `0..=delay`).
    pub delay: u64,
    /// Whether a crash window was injected.
    pub crash: bool,
    /// Post-warmup messages, all kinds.
    pub messages: u64,
    /// Post-warmup weighted message cost.
    pub weighted_cost: f64,
    /// Measured queries issued.
    pub queries: u64,
    /// Measured queries whose answer reached the client.
    pub answered: u64,
    /// `answered / queries`.
    pub answer_rate: f64,
    /// Measured queries answered from the client's own cache.
    pub local_hits: u64,
    /// Replication messages re-sent by the retry protocol.
    pub retries: u64,
    /// Messages the fault plan dropped (all kinds, whole run).
    pub dropped: u64,
    /// Mean delivery latency in ticks over delivered messages.
    pub mean_latency: f64,
    /// Tree repairs performed by the self-healing layer (0 without
    /// `--heal` or without a crash window).
    pub repairs: usize,
    /// Correctness violations found by the invariant checker (always 0
    /// unless the driver is buggy).
    pub violations: usize,
}

impl ChaosCase {
    /// Weighted message cost per answered query — the headline robustness
    /// price: it rises monotonically with the drop rate (raw cost alone
    /// does not, because heavily dropped runs also charge fewer
    /// answer-path messages).
    pub fn cost_per_answer(&self) -> f64 {
        self.weighted_cost / self.answered.max(1) as f64
    }
}

/// A full sweep: the grid plus every measured cell.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Master seed.
    pub seed: u64,
    /// Client-tree depth swept.
    pub depth: usize,
    /// Simulation horizon per cell.
    pub horizon: u64,
    /// Query precision requirement.
    pub delta: f64,
    /// Whether the self-healing layer was enabled for every cell.
    pub heal: bool,
    /// Measured cells, in sweep order.
    pub cases: Vec<ChaosCase>,
}

/// Run one cell of the sweep.
fn run_cell(
    cfg: &ChaosConfig,
    topo: &Topology,
    data: &[f64],
    drop: f64,
    delay: u64,
    crash: bool,
) -> ChaosCase {
    let mut plan = FaultPlan::new(cfg.seed ^ 0xC4A05)
        .with_drop(drop)
        .expect("grid probabilities are valid");
    if delay > 0 {
        plan = plan
            .with_delay(DelayDist::Uniform { lo: 0, hi: delay })
            .expect("grid delays are valid");
    }
    if crash {
        // One client dies for a tenth of the run, mid-run.
        let node = NodeId(topo.len() - 1);
        let from = cfg.warmup + (cfg.horizon - cfg.warmup) / 2;
        plan = plan
            .with_crash(node, from, from + (cfg.horizon - cfg.warmup) / 10)
            .expect("crash window is nonempty");
    }
    let options = ChaosOptions {
        plan,
        check_invariants: true,
        heal: cfg.heal.then(HealPolicy::default),
        ..ChaosOptions::default()
    };
    let out = run_chaos(SchemeKind::SwatAsr, topo, data, &cfg.workload(), &options)
        .expect("SWAT-ASR supports every plan");
    let sum_over = |prefix: &str| -> u64 {
        out.net
            .counters()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    };
    let (lat_sum, lat_n) = out
        .net
        .stats()
        .filter(|(k, _)| k.starts_with("net.latency."))
        .fold((0.0, 0u64), |(s, n), (_, acc)| {
            (s + acc.sum(), n + acc.count())
        });
    let queries = out.run.metrics.counter("queries");
    let answered = out.net.counter("net.queries_answered");
    ChaosCase {
        drop,
        delay,
        crash,
        messages: out.run.ledger.total(),
        weighted_cost: out.run.ledger.weighted_total(),
        queries,
        answered,
        answer_rate: if queries == 0 {
            1.0
        } else {
            answered as f64 / queries as f64
        },
        local_hits: out.run.metrics.counter("local_hits"),
        retries: sum_over("net.retried."),
        dropped: sum_over("net.dropped."),
        mean_latency: if lat_n == 0 {
            0.0
        } else {
            lat_sum / lat_n as f64
        },
        repairs: out.repairs.len(),
        violations: out.violations.len(),
    }
}

/// Measure the whole grid.
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    let topo = Topology::complete_binary(cfg.depth);
    let data = Dataset::Weather.series(cfg.seed, cfg.horizon as usize + 1);
    let mut cases = Vec::new();
    for &drop in &cfg.drops {
        for &delay in &cfg.delays {
            cases.push(run_cell(cfg, &topo, &data, drop, delay, false));
            if cfg.with_crash_variant {
                cases.push(run_cell(cfg, &topo, &data, drop, delay, true));
            }
        }
    }
    ChaosReport {
        seed: cfg.seed,
        depth: cfg.depth,
        horizon: cfg.horizon,
        delta: cfg.delta,
        heal: cfg.heal,
        cases,
    }
}

impl ChaosReport {
    /// Render the cells as a table on stdout.
    pub fn print(&self) {
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    format!("{:.2}", c.drop),
                    c.delay.to_string(),
                    if c.crash { "yes" } else { "no" }.to_owned(),
                    c.messages.to_string(),
                    report::fmt(c.weighted_cost),
                    format!("{:.3}", c.answer_rate),
                    c.local_hits.to_string(),
                    c.retries.to_string(),
                    c.dropped.to_string(),
                    format!("{:.2}", c.mean_latency),
                    c.repairs.to_string(),
                    c.violations.to_string(),
                ]
            })
            .collect();
        report::print_table(
            "chaos sweep (SWAT-ASR under faults)",
            &[
                "drop", "delay", "crash", "msgs", "cost", "ans rate", "hits", "retries", "dropped",
                "lat", "repairs", "viol",
            ],
            &rows,
        );
    }

    /// Serialize as the `BENCH_chaos.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(256 + 200 * self.cases.len());
        out.push_str("{\n");
        out.push_str("  \"bench\": \"chaos\",\n");
        out.push_str("  \"scheme\": \"SWAT-ASR\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"depth\": {},\n", self.depth));
        out.push_str(&format!("  \"horizon\": {},\n", self.horizon));
        out.push_str(&format!("  \"delta\": {},\n", self.delta));
        out.push_str(&format!("  \"heal\": {},\n", self.heal));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"drop\": {}, \"delay\": {}, \"crash\": {}, \"messages\": {}, \
                 \"weighted_cost\": {:.1}, \"queries\": {}, \"answered\": {}, \
                 \"answer_rate\": {:.4}, \"local_hits\": {}, \"retries\": {}, \
                 \"dropped\": {}, \"mean_latency\": {:.3}, \"cost_per_answer\": {:.2}, \
                 \"repairs\": {}, \"violations\": {}}}{}\n",
                c.drop,
                c.delay,
                c.crash,
                c.messages,
                c.weighted_cost,
                c.queries,
                c.answered,
                c.answer_rate,
                c.local_hits,
                c.retries,
                c.dropped,
                c.mean_latency,
                c.cost_per_answer(),
                c.repairs,
                c.violations,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_clean_and_degrades_gracefully() {
        let cfg = ChaosConfig::quick(7);
        let report = run(&cfg);
        assert_eq!(report.cases.len(), cfg.drops.len() * cfg.delays.len());
        for c in &report.cases {
            assert_eq!(c.violations, 0, "drop={} delay={}", c.drop, c.delay);
            assert!(c.queries > 0);
            assert!(
                c.answer_rate > 0.5,
                "drop={}: answer rate collapsed",
                c.drop
            );
        }
        // The fault-free cell answers everything; faulty cells cost more
        // messages than the fault-free one at the same delay.
        let ideal = &report.cases[0];
        assert_eq!(ideal.answer_rate, 1.0);
        assert_eq!(ideal.retries, 0);
        let faulty = report
            .cases
            .iter()
            .find(|c| c.drop > 0.0 && c.delay == 0)
            .expect("grid has a faulty cell");
        assert!(faulty.retries > 0);
        assert!(
            faulty.cost_per_answer() > ideal.cost_per_answer(),
            "drops must make each answered query cost more messages"
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"chaos\""));
        assert_eq!(json.matches("\"drop\"").count(), report.cases.len());
    }

    #[test]
    fn crash_variant_adds_cases() {
        let mut cfg = ChaosConfig::quick(3);
        cfg.drops = vec![0.0];
        cfg.delays = vec![0];
        cfg.with_crash_variant = true;
        let report = run(&cfg);
        assert_eq!(report.cases.len(), 2);
        assert!(report.cases.iter().any(|c| c.crash));
        for c in &report.cases {
            assert_eq!(c.violations, 0);
        }
    }
}
