//! The centralized error-comparison engine behind Figures 4 and 5.
//!
//! Feeds the same stream into a SWAT tree, the Guha–Koudas sliding
//! histogram, and an exact ground-truth window; evaluates inner-product
//! queries at a configurable cadence in the paper's *fixed* mode (the
//! same most-recent-values query every time) or *random* mode (uniform
//! start offset and length); and accumulates relative and absolute
//! errors for both techniques.

use rand::Rng;
use swat_histogram::{HistogramConfig, SlidingHistogram};
use swat_sim::Accumulator;
use swat_tree::{ExactWindow, InnerProductQuery, QueryOptions, SwatConfig, SwatTree};

/// Query generation mode (§2.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// "we execute a query over the most recent values repeatedly": the
    /// same length-`M` query anchored at index 0 every time.
    Fixed,
    /// Uniformly random start offset *and* length — the workload of the
    /// distributed experiments (§5).
    Random,
    /// Random length, anchored at the newest value. This is how we read
    /// §2.7's "random query mode": the paper observes that its random
    /// *exponential* queries still "fit the model" of recency-biased
    /// interest (SWAT outperforms Histogram on them), which holds only if
    /// they stay anchored at index 0; with uniformly random offsets the
    /// recent-data bias disappears for both shapes.
    AnchoredRandom,
}

/// Query weight profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Exponentially decaying weights.
    Exponential,
    /// Linearly decaying weights.
    Linear,
}

impl Shape {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Exponential => "exponential",
            Shape::Linear => "linear",
        }
    }
}

/// Parameters of one centralized error experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Sliding-window size `N`.
    pub window: usize,
    /// Arrivals before measurement starts.
    pub warmup: usize,
    /// Total arrivals (including warmup).
    pub total: usize,
    /// Query generation mode.
    pub mode: Mode,
    /// Query weight profile.
    pub shape: Shape,
    /// Query length `M` in fixed mode.
    pub query_len: usize,
    /// Seed for random-mode query generation.
    pub seed: u64,
    /// SWAT reduced-resolution level (0 = full resolution).
    pub min_level: usize,
    /// SWAT per-node coefficient budget `k`.
    pub coefficients: usize,
    /// Histogram bucket budget `B` (the paper uses `3 log N ≈ 30`).
    pub buckets: usize,
    /// Histogram approximation knob ε.
    pub epsilon: f64,
    /// Whether to run the Histogram baseline at all (it dominates the
    /// run time; Figure 4 is SWAT-only).
    pub with_histogram: bool,
    /// Evaluate a query every `query_every`-th arrival.
    pub query_every: usize,
    /// Stop evaluating after this many measured queries (the histogram
    /// construction is expensive by design; see EXPERIMENTS.md).
    pub max_queries: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            window: 1024,
            warmup: 2048,
            total: 5000,
            mode: Mode::Fixed,
            shape: Shape::Exponential,
            query_len: 64,
            seed: 1,
            min_level: 0,
            coefficients: 1,
            buckets: 30,
            epsilon: 0.1,
            with_histogram: true,
            query_every: 1,
            max_queries: usize::MAX,
        }
    }
}

/// One sampled point of the error time series (Figure 4a/4b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Arrival count at evaluation time.
    pub t: usize,
    /// SWAT relative error of this query.
    pub swat_rel: f64,
    /// Cumulative mean of SWAT relative errors so far.
    pub swat_cum: f64,
}

/// Accumulated outcome of one experiment.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// SWAT relative errors.
    pub swat_rel: Accumulator,
    /// SWAT absolute errors.
    pub swat_abs: Accumulator,
    /// Histogram relative errors (empty if the baseline was disabled).
    pub hist_rel: Accumulator,
    /// Histogram absolute errors.
    pub hist_abs: Accumulator,
    /// Per-query time series of SWAT errors.
    pub series: Vec<SeriesPoint>,
    /// Number of queries evaluated.
    pub queries: usize,
}

impl ExperimentResult {
    /// Ratio of histogram to SWAT mean relative error (how many times
    /// better SWAT is — the paper's headline metric).
    pub fn improvement(&self) -> f64 {
        if self.swat_rel.mean() == 0.0 {
            f64::INFINITY
        } else {
            self.hist_rel.mean() / self.swat_rel.mean()
        }
    }
}

/// Run one centralized error experiment over `data` (must supply at
/// least `cfg.total` values).
///
/// # Panics
///
/// Panics if `data` is shorter than `cfg.total`, the window is not a
/// power of two, or the query length exceeds the window.
pub fn error_experiment(data: &[f64], cfg: &ExperimentConfig) -> ExperimentResult {
    assert!(
        data.len() >= cfg.total,
        "need {} values, got {}",
        cfg.total,
        data.len()
    );
    assert!(cfg.query_len <= cfg.window, "query longer than window");
    assert!(
        cfg.warmup >= 2 * cfg.window,
        "warmup must cover tree warm-up (2N)"
    );

    let mut tree = SwatTree::new(
        SwatConfig::with_coefficients(cfg.window, cfg.coefficients).expect("valid config"),
    );
    let mut hist = SlidingHistogram::new(
        HistogramConfig::new(cfg.window, cfg.buckets, cfg.epsilon).expect("valid config"),
    );
    let mut truth = ExactWindow::new(cfg.window);
    let mut rng = swat_sim::rng_stream(cfg.seed, 7);
    let opts = QueryOptions::at_level(cfg.min_level);

    let mut result = ExperimentResult::default();
    let mut cum_sum = 0.0;

    for (i, &v) in data[..cfg.total].iter().enumerate() {
        tree.push(v);
        if cfg.with_histogram {
            hist.push(v);
        }
        truth.push(v);
        let t = i + 1;
        if t <= cfg.warmup || t % cfg.query_every != 0 {
            continue;
        }
        if result.queries >= cfg.max_queries {
            break;
        }
        let query = make_query(cfg, &mut rng);
        let window_truth = truth.to_vec();
        let exact = query.exact(&window_truth);

        let swat_ans = tree
            .inner_product_with(&query, opts)
            .expect("warm tree covers the window")
            .value;
        let swat_abs = (swat_ans - exact).abs();
        let swat_rel = relative(swat_abs, exact);
        result.swat_abs.record(swat_abs);
        if let Some(r) = swat_rel {
            result.swat_rel.record(r);
            cum_sum += r;
            result.series.push(SeriesPoint {
                t,
                swat_rel: r,
                swat_cum: cum_sum / result.swat_rel.count() as f64,
            });
        }

        if cfg.with_histogram {
            let h = hist.build();
            let hist_ans = h.inner_product(query.indices(), query.weights());
            let hist_abs = (hist_ans - exact).abs();
            result.hist_abs.record(hist_abs);
            if let Some(r) = relative(hist_abs, exact) {
                result.hist_rel.record(r);
            }
        }
        result.queries += 1;
    }
    result
}

fn relative(abs_err: f64, exact: f64) -> Option<f64> {
    if exact.abs() < 1e-9 {
        None
    } else {
        Some(abs_err / exact.abs())
    }
}

fn make_query(cfg: &ExperimentConfig, rng: &mut impl Rng) -> InnerProductQuery {
    let (start, len) = match cfg.mode {
        Mode::Fixed => (0, cfg.query_len),
        Mode::Random => {
            let start = rng.gen_range(0..cfg.window);
            let len = rng.gen_range(1..=cfg.window - start);
            (start, len)
        }
        Mode::AnchoredRandom => (0, rng.gen_range(1..=cfg.window)),
    };
    match cfg.shape {
        Shape::Exponential => InnerProductQuery::exponential_at(start, len, f64::INFINITY),
        Shape::Linear => InnerProductQuery::linear_at(start, len, f64::INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_data::Dataset;

    fn small(mode: Mode, shape: Shape, with_histogram: bool) -> ExperimentConfig {
        ExperimentConfig {
            window: 64,
            warmup: 128,
            total: 400,
            mode,
            shape,
            query_len: 16,
            buckets: 8,
            epsilon: 0.1,
            with_histogram,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn fixed_mode_runs_and_accumulates() {
        let data = Dataset::Weather.series(3, 400);
        let r = error_experiment(&data, &small(Mode::Fixed, Shape::Exponential, true));
        assert!(r.queries > 200);
        assert!(r.swat_rel.count() > 0);
        assert!(r.hist_rel.count() > 0);
        assert!(r.swat_rel.mean() >= 0.0);
        assert_eq!(r.series.len() as u64, r.swat_rel.count());
    }

    #[test]
    fn swat_beats_histogram_on_smooth_exponential_queries() {
        // The paper's headline (Fig 5a): on real data with exponential
        // queries anchored at the newest values, SWAT's fine recent
        // resolution wins by a wide margin.
        let data = Dataset::Weather.series(9, 1200);
        let cfg = ExperimentConfig {
            window: 256,
            warmup: 512,
            total: 1200,
            query_len: 32,
            buckets: 24,
            epsilon: 0.1,
            ..ExperimentConfig::default()
        };
        let r = error_experiment(&data, &cfg);
        assert!(
            r.improvement() > 2.0,
            "SWAT {} vs Histogram {} (improvement {:.1}x)",
            r.swat_rel.mean(),
            r.hist_rel.mean(),
            r.improvement()
        );
    }

    #[test]
    fn random_mode_differs_from_fixed() {
        let data = Dataset::Synthetic.series(4, 400);
        let f = error_experiment(&data, &small(Mode::Fixed, Shape::Linear, false));
        let r = error_experiment(&data, &small(Mode::Random, Shape::Linear, false));
        assert!(f.queries > 0 && r.queries > 0);
        assert_ne!(f.swat_rel.mean(), r.swat_rel.mean());
    }

    #[test]
    fn max_queries_caps_work() {
        let data = Dataset::Synthetic.series(4, 400);
        let cfg = ExperimentConfig {
            max_queries: 10,
            ..small(Mode::Fixed, Shape::Exponential, false)
        };
        let r = error_experiment(&data, &cfg);
        assert_eq!(r.queries, 10);
    }

    #[test]
    fn min_level_increases_error() {
        let data = Dataset::Weather.series(5, 700);
        let base = ExperimentConfig {
            window: 128,
            warmup: 256,
            total: 700,
            query_len: 32,
            with_histogram: false,
            ..ExperimentConfig::default()
        };
        let fine = error_experiment(&data, &base);
        let coarse = error_experiment(
            &data,
            &ExperimentConfig {
                min_level: 5,
                ..base
            },
        );
        assert!(
            coarse.swat_abs.mean() > fine.swat_abs.mean(),
            "coarse {} !> fine {}",
            coarse.swat_abs.mean(),
            fine.swat_abs.mean()
        );
    }
}
