//! Query-serving throughput harness: reference vs the zero-allocation
//! engine vs the wavelet-domain kernel.
//!
//! Sweeps window size × coefficient budget × query mix over warm trees,
//! timing the frozen pre-engine implementations
//! (`swat_tree::query::reference`, one allocation-heavy cover per call)
//! against the batched scratch engine ([`SwatTree::point_many`],
//! [`SwatTree::inner_product_many`]) and the coefficient-domain kernel
//! ([`SwatTree::inner_product_coeffs`]), plus the [`StreamSet`] parallel
//! query fan-out across thread counts. Before any timing, every fast
//! path is checked against its slow path on the full query set —
//! bit-identical for the engine, bound-overlap for the kernel — and the
//! verdict lands in the artifact as `"agreement"`. Renders a table (via
//! [`crate::report`]) and the `results/BENCH_query.json` artifact
//! (schema in EXPERIMENTS.md); backs the `swat query-bench` CLI
//! subcommand and the criterion target in `benches/query.rs`.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rand::Rng;

use crate::report;
use swat_data::Dataset;
use swat_tree::query::reference;
use swat_tree::{
    multi::StreamSet, InnerProductAnswer, InnerProductQuery, PointAnswer, QueryOptions,
    QueryScratch, RangeQuery, SwatConfig, SwatTree,
};

/// The measurement grid.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Window sizes to measure (powers of two).
    pub windows: Vec<usize>,
    /// Coefficient budgets to measure.
    pub coefficients: Vec<usize>,
    /// Point queries per case.
    pub points: usize,
    /// Inner-product queries per case (mixed profiles, spans up to N/2).
    pub inners: usize,
    /// Range queries per case (full-window spans).
    pub ranges: usize,
    /// Stream count for the fan-out sweep.
    pub streams: usize,
    /// Thread counts for the fan-out sweep.
    pub threads: Vec<usize>,
    /// Timed repetitions per case; the fastest is reported.
    pub repetitions: usize,
    /// Seed for data and query generation.
    pub seed: u64,
}

impl QueryConfig {
    /// The default full-size grid (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        QueryConfig {
            windows: vec![1024, 4096],
            coefficients: vec![1, 8],
            points: 20_000,
            inners: 400,
            ranges: 50,
            streams: 8,
            threads: vec![1, 2, 4, 8],
            repetitions: 3,
            seed,
        }
    }

    /// A drastically shrunk grid for smoke tests (`SWAT_QUICK` style).
    pub fn quick(seed: u64) -> Self {
        QueryConfig {
            windows: vec![256],
            coefficients: vec![1, 4],
            points: 2_000,
            inners: 50,
            ranges: 10,
            streams: 4,
            threads: vec![1, 2],
            repetitions: 1,
            seed,
        }
    }
}

/// One measured (mode, window, k, streams, threads) point.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// Which path was timed (e.g. `"point_reference"`, `"point_batched"`).
    pub mode: &'static str,
    /// Window size `N`.
    pub window: usize,
    /// Coefficient budget `k`.
    pub k: usize,
    /// Streams queried (1 except in fan-out mode).
    pub streams: usize,
    /// Worker threads used (1 except in fan-out mode).
    pub threads: usize,
    /// Queries answered per repetition.
    pub queries: u64,
    /// Fastest repetition's wall time.
    pub elapsed: Duration,
    /// Throughput, `queries / elapsed`.
    pub queries_per_sec: f64,
}

/// Fast-vs-slow throughput ratios for one (window, k) grid point.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Window size `N`.
    pub window: usize,
    /// Coefficient budget `k`.
    pub k: usize,
    /// `point_batched` / `point_reference`.
    pub point: f64,
    /// `inner_batched` / `inner_reference`.
    pub inner: f64,
    /// `inner_kernel` / `inner_reference`.
    pub inner_kernel: f64,
    /// `range_scratch` / `range_reference`.
    pub range: f64,
}

/// A full run: the grid, the agreement verdict, and every measured case.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Seed the data and queries were generated from.
    pub seed: u64,
    /// Whether every fast path agreed with its slow path on the full
    /// query set (bit-identical for the engine, bound-overlap for the
    /// kernel). Timing results are meaningless if this is false.
    pub agreement: bool,
    /// Measured cases, in measurement order.
    pub cases: Vec<QueryCase>,
    /// Per-(window, k) speedup ratios.
    pub speedups: Vec<Speedup>,
}

/// The prebuilt query set for one grid point (built outside all timing).
pub struct QuerySet {
    /// Point-query window indices.
    pub indices: Vec<usize>,
    /// Inner-product queries, mixed exponential/linear/general profiles.
    pub inners: Vec<InnerProductQuery>,
    /// Range queries.
    pub ranges: Vec<RangeQuery>,
}

/// Build the query set for window `n`: biased-recent point indices, inner
/// products with spans up to `n/2`, full-window range queries.
pub fn build_queries(cfg: &QueryConfig, n: usize) -> QuerySet {
    let mut rng = swat_sim::rng_stream(cfg.seed, 0x5157_4259 ^ n as u64); // "QWRY"
    let indices: Vec<usize> = (0..cfg.points)
        .map(|_| {
            // The paper's biased query model: most lookups hit recent data.
            let span = 1usize << rng.gen_range(1..=n.trailing_zeros());
            rng.gen_range(0..span)
        })
        .collect();
    let inners: Vec<InnerProductQuery> = (0..cfg.inners)
        .map(|i| {
            let start = rng.gen_range(0..n / 2);
            let m = rng.gen_range(1..=n / 2);
            match i % 3 {
                0 => InnerProductQuery::exponential_at(start, m.min(n - start), 1e9),
                1 => InnerProductQuery::linear_at(start, m.min(n - start), 1e9),
                _ => {
                    // General profile: a sparse, unsorted handful.
                    let mut idx = Vec::with_capacity(8);
                    while idx.len() < 8 {
                        let c = rng.gen_range(0..n);
                        if !idx.contains(&c) {
                            idx.push(c);
                        }
                    }
                    let w: Vec<f64> = (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    InnerProductQuery::new(idx, w, 1e9).expect("indices are distinct")
                }
            }
        })
        .collect();
    let ranges: Vec<RangeQuery> = (0..cfg.ranges)
        .map(|_| RangeQuery {
            center: rng.gen_range(-1.0..1.0),
            radius: rng.gen_range(0.1..2.0),
            newest: 0,
            oldest: n - 1,
        })
        .collect();
    QuerySet {
        indices,
        inners,
        ranges,
    }
}

/// Kernel: point queries via the frozen pre-engine path.
pub fn points_reference(tree: &SwatTree, indices: &[usize]) -> f64 {
    let mut acc = 0.0;
    for &idx in indices {
        acc += reference::point_with(tree, idx, QueryOptions::default())
            .expect("warm tree covers the window")
            .value;
    }
    acc
}

/// Kernel: point queries via the batched scratch engine.
pub fn points_batched(
    tree: &SwatTree,
    indices: &[usize],
    scratch: &mut QueryScratch,
    out: &mut Vec<PointAnswer>,
) -> f64 {
    tree.point_many(indices, QueryOptions::default(), scratch, out)
        .expect("warm tree covers the window");
    out.iter().map(|a| a.value).sum()
}

/// Kernel: inner products via the frozen pre-engine path.
pub fn inners_reference(tree: &SwatTree, queries: &[InnerProductQuery]) -> f64 {
    let mut acc = 0.0;
    for q in queries {
        acc += reference::inner_product_with(tree, q, QueryOptions::default())
            .expect("warm tree covers the window")
            .value;
    }
    acc
}

/// Kernel: inner products via the batched scratch engine.
pub fn inners_batched(
    tree: &SwatTree,
    queries: &[InnerProductQuery],
    scratch: &mut QueryScratch,
    out: &mut Vec<InnerProductAnswer>,
) -> f64 {
    tree.inner_product_many(queries, QueryOptions::default(), scratch, out)
        .expect("warm tree covers the window");
    out.iter().map(|a| a.value).sum()
}

/// Kernel: inner products via the wavelet-domain coefficient kernel.
pub fn inners_kernel(
    tree: &SwatTree,
    queries: &[InnerProductQuery],
    scratch: &mut QueryScratch,
) -> f64 {
    let mut acc = 0.0;
    for q in queries {
        acc += tree
            .inner_product_coeffs(q, QueryOptions::default(), scratch)
            .expect("warm tree covers the window")
            .value;
    }
    acc
}

/// Kernel: range queries via the frozen pre-engine path.
pub fn ranges_reference(tree: &SwatTree, queries: &[RangeQuery]) -> usize {
    let mut acc = 0;
    for q in queries {
        acc += reference::range_query_with(tree, q, QueryOptions::default())
            .expect("warm tree covers the window")
            .len();
    }
    acc
}

/// Kernel: range queries via the scratch engine.
pub fn ranges_scratch(
    tree: &SwatTree,
    queries: &[RangeQuery],
    scratch: &mut QueryScratch,
    out: &mut Vec<swat_tree::RangeMatch>,
) -> usize {
    let mut acc = 0;
    for q in queries {
        tree.range_query_with_scratch(q, QueryOptions::default(), scratch, out)
            .expect("warm tree covers the window");
        acc += out.len();
    }
    acc
}

fn time_best<T>(repetitions: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed());
        drop(out);
    }
    best
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// Check every fast path against its slow path on the full query set.
fn check_agreement(tree: &SwatTree, qs: &QuerySet, scratch: &mut QueryScratch) -> bool {
    let opts = QueryOptions::default();
    let mut pts = Vec::new();
    if tree
        .point_many(&qs.indices, opts, scratch, &mut pts)
        .is_err()
    {
        return false;
    }
    for (&idx, got) in qs.indices.iter().zip(&pts) {
        let want = match reference::point_with(tree, idx, opts) {
            Ok(a) => a,
            Err(_) => return false,
        };
        if bits(got.value) != bits(want.value)
            || bits(got.error_bound) != bits(want.error_bound)
            || got.level != want.level
            || got.extrapolated != want.extrapolated
        {
            return false;
        }
    }
    let mut ips = Vec::new();
    if tree
        .inner_product_many(&qs.inners, opts, scratch, &mut ips)
        .is_err()
    {
        return false;
    }
    for (q, got) in qs.inners.iter().zip(&ips) {
        let want = match reference::inner_product_with(tree, q, opts) {
            Ok(a) => a,
            Err(_) => return false,
        };
        if bits(got.value) != bits(want.value)
            || bits(got.error_bound) != bits(want.error_bound)
            || got.meets_precision != want.meets_precision
            || got.nodes_used != want.nodes_used
            || got.extrapolated != want.extrapolated
        {
            return false;
        }
        // The kernel answers approximately; its bound must overlap the
        // exact path's (both contain the truth, so the intervals meet).
        let kernel = match tree.inner_product_coeffs(q, opts, scratch) {
            Ok(a) => a,
            Err(_) => return false,
        };
        if (kernel.value - want.value).abs() > kernel.error_bound + want.error_bound + 1e-9 {
            return false;
        }
    }
    let mut matches = Vec::new();
    for q in &qs.ranges {
        let want = match reference::range_query_with(tree, q, opts) {
            Ok(m) => m,
            Err(_) => return false,
        };
        if tree
            .range_query_with_scratch(q, opts, scratch, &mut matches)
            .is_err()
        {
            return false;
        }
        if matches.len() != want.len()
            || matches
                .iter()
                .zip(&want)
                .any(|(a, b)| a.index != b.index || bits(a.value) != bits(b.value))
        {
            return false;
        }
    }
    true
}

/// Measure the whole grid.
pub fn run(cfg: &QueryConfig) -> QueryReport {
    let mut cases = Vec::new();
    let mut speedups = Vec::new();
    let mut agreement = true;
    for &window in &cfg.windows {
        let qs = build_queries(cfg, window);
        let data = Dataset::Synthetic.series(cfg.seed, 3 * window);
        for &k in &cfg.coefficients {
            let config =
                SwatConfig::with_coefficients(window, k).expect("bench windows are powers of two");
            let mut tree = SwatTree::new(config);
            tree.extend(data.iter().copied());
            let mut scratch = QueryScratch::new();
            let mut pts = Vec::new();
            let mut ips = Vec::new();
            let mut matches = Vec::new();

            agreement &= check_agreement(&tree, &qs, &mut scratch);

            let case = |mode, streams, threads, queries: u64, elapsed: Duration| QueryCase {
                mode,
                window,
                k,
                streams,
                threads,
                queries,
                elapsed,
                queries_per_sec: queries as f64 / elapsed.as_secs_f64().max(1e-12),
            };

            let nq = qs.indices.len() as u64;
            let t_pref = time_best(cfg.repetitions, || points_reference(&tree, &qs.indices));
            cases.push(case("point_reference", 1, 1, nq, t_pref));
            let t_pbat = time_best(cfg.repetitions, || {
                points_batched(&tree, &qs.indices, &mut scratch, &mut pts)
            });
            cases.push(case("point_batched", 1, 1, nq, t_pbat));

            let ni = qs.inners.len() as u64;
            let t_iref = time_best(cfg.repetitions, || inners_reference(&tree, &qs.inners));
            cases.push(case("inner_reference", 1, 1, ni, t_iref));
            let t_ibat = time_best(cfg.repetitions, || {
                inners_batched(&tree, &qs.inners, &mut scratch, &mut ips)
            });
            cases.push(case("inner_batched", 1, 1, ni, t_ibat));
            let t_iker = time_best(cfg.repetitions, || {
                inners_kernel(&tree, &qs.inners, &mut scratch)
            });
            cases.push(case("inner_kernel", 1, 1, ni, t_iker));

            let nr = qs.ranges.len() as u64;
            let t_rref = time_best(cfg.repetitions, || ranges_reference(&tree, &qs.ranges));
            cases.push(case("range_reference", 1, 1, nr, t_rref));
            let t_rscr = time_best(cfg.repetitions, || {
                ranges_scratch(&tree, &qs.ranges, &mut scratch, &mut matches)
            });
            cases.push(case("range_scratch", 1, 1, nr, t_rscr));

            let ratio =
                |slow: Duration, fast: Duration| slow.as_secs_f64() / fast.as_secs_f64().max(1e-12);
            speedups.push(Speedup {
                window,
                k,
                point: ratio(t_pref, t_pbat),
                inner: ratio(t_iref, t_ibat),
                inner_kernel: ratio(t_iref, t_iker),
                range: ratio(t_rref, t_rscr),
            });

            // Parallel fan-out: the same point block against every stream
            // of a StreamSet (measured per answered query).
            let mut set = StreamSet::new(config, cfg.streams);
            let columns: Vec<Vec<f64>> = (0..cfg.streams)
                .map(|s| Dataset::Synthetic.series(cfg.seed.wrapping_add(s as u64), 3 * window))
                .collect();
            set.extend_batched(&columns, 2);
            for &threads in &cfg.threads {
                let elapsed = time_best(cfg.repetitions, || {
                    set.point_many(&qs.indices, QueryOptions::default(), threads)
                        .expect("warm trees cover the window")
                });
                cases.push(case(
                    "fanout_points",
                    cfg.streams,
                    threads,
                    nq * cfg.streams as u64,
                    elapsed,
                ));
            }
        }
    }
    QueryReport {
        seed: cfg.seed,
        agreement,
        cases,
        speedups,
    }
}

impl QueryReport {
    /// Render the cases and speedups as tables on stdout.
    pub fn print(&self) {
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.mode.to_owned(),
                    c.window.to_string(),
                    c.k.to_string(),
                    c.streams.to_string(),
                    c.threads.to_string(),
                    c.queries.to_string(),
                    report::fmt_duration(c.elapsed),
                    report::fmt(c.queries_per_sec),
                ]
            })
            .collect();
        report::print_table(
            "query throughput",
            &[
                "mode",
                "window",
                "k",
                "streams",
                "threads",
                "queries",
                "time",
                "queries/s",
            ],
            &rows,
        );
        let rows: Vec<Vec<String>> = self
            .speedups
            .iter()
            .map(|s| {
                vec![
                    s.window.to_string(),
                    s.k.to_string(),
                    format!("{:.2}x", s.point),
                    format!("{:.2}x", s.inner),
                    format!("{:.2}x", s.inner_kernel),
                    format!("{:.2}x", s.range),
                ]
            })
            .collect();
        report::print_table(
            "engine speedup vs reference",
            &["window", "k", "point", "inner", "inner_kernel", "range"],
            &rows,
        );
        println!(
            "\nfast-vs-slow agreement: {}",
            if self.agreement { "OK" } else { "FAILED" }
        );
    }

    /// Serialize as the `BENCH_query.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(512 + 160 * self.cases.len());
        out.push_str("{\n");
        out.push_str("  \"bench\": \"query\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"agreement\": {},\n", self.agreement));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"window\": {}, \"k\": {}, \"streams\": {}, \
                 \"threads\": {}, \"queries\": {}, \"elapsed_ns\": {}, \"queries_per_sec\": {:.1}}}{}\n",
                c.mode,
                c.window,
                c.k,
                c.streams,
                c.threads,
                c.queries,
                c.elapsed.as_nanos(),
                c.queries_per_sec,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"speedups\": [\n");
        for (i, s) in self.speedups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window\": {}, \"k\": {}, \"point\": {:.2}, \"inner\": {:.2}, \
                 \"inner_kernel\": {:.2}, \"range\": {:.2}}}{}\n",
                s.window,
                s.k,
                s.point,
                s.inner,
                s.inner_kernel,
                s.range,
                if i + 1 == self.speedups.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_and_agrees() {
        let mut cfg = QueryConfig::quick(7);
        cfg.points = 200;
        cfg.inners = 12;
        cfg.ranges = 3;
        let report = run(&cfg);
        assert!(report.agreement, "fast paths disagreed with reference");
        // windows × ks × (7 single-stream modes + |threads| fan-out cases)
        assert_eq!(
            report.cases.len(),
            cfg.windows.len() * cfg.coefficients.len() * (7 + cfg.threads.len())
        );
        assert_eq!(
            report.speedups.len(),
            cfg.windows.len() * cfg.coefficients.len()
        );
        for c in &report.cases {
            assert!(c.queries > 0);
            assert!(c.queries_per_sec > 0.0, "{}: no throughput", c.mode);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"query\""));
        assert!(json.contains("\"agreement\": true"));
        assert!(json.contains("\"mode\": \"inner_kernel\""));
        assert_eq!(json.matches("\"point\":").count(), report.speedups.len());
    }

    #[test]
    fn query_sets_are_deterministic_and_in_window() {
        let cfg = QueryConfig::quick(3);
        let a = build_queries(&cfg, 256);
        let b = build_queries(&cfg, 256);
        assert_eq!(a.indices, b.indices);
        assert!(a.indices.iter().all(|&i| i < 256));
        for (x, y) in a.inners.iter().zip(&b.inners) {
            assert_eq!(x, y);
        }
        assert!(a
            .inners
            .iter()
            .all(|q| q.indices().iter().all(|&i| i < 256)));
    }
}
