//! Reproduces Figure 6 of the SWAT paper: running time comparisons.
//!
//! * **6(a)** — maintenance time: feed synthetic streams of 100K / 1M /
//!   10M values into each summary with no queries. SWAT updates its tree
//!   on every arrival; Histogram maintains only the window ring plus the
//!   running sum and squared sum. The paper finds the two "very similar".
//! * **6(b)** — query response time: N = 1024, B = 30, ε = 0.1; evaluate
//!   uniformly generated exponential inner-product queries against both
//!   summaries. SWAT answers from `O(log² N)` coefficient work; Histogram
//!   must construct a `(1+ε)`-approximate V-optimal histogram first. The
//!   paper reports a gap of four orders of magnitude.

use std::time::Instant;

use rand::Rng;
use swat_bench::report::{fmt_duration, print_table};
use swat_data::Dataset;
use swat_histogram::{HistogramConfig, SlidingHistogram};
use swat_tree::{InnerProductQuery, SwatConfig, SwatTree};

fn main() {
    let quick = swat_bench::quick_mode();
    let seed = swat_bench::seed();
    fig6a(seed, quick);
    fig6b(seed, quick);
}

fn fig6a(seed: u64, quick: bool) {
    let sizes: &[usize] = if quick {
        &[100_000, 1_000_000]
    } else {
        &[100_000, 1_000_000, 10_000_000]
    };
    let window = 1024;
    let mut rows = Vec::new();
    for &n in sizes {
        let mut src = Dataset::Synthetic.stream(seed);
        let mut tree = SwatTree::new(SwatConfig::new(window).expect("valid"));
        let start = Instant::now();
        for _ in 0..n {
            tree.push(src.next().expect("endless"));
        }
        let swat_time = start.elapsed();

        let mut src = Dataset::Synthetic.stream(seed);
        let mut hist = SlidingHistogram::new(HistogramConfig::new(window, 30, 0.1).expect("valid"));
        let start = Instant::now();
        for _ in 0..n {
            hist.push(src.next().expect("endless"));
        }
        let hist_time = start.elapsed();
        rows.push(vec![
            format!("{}", n),
            fmt_duration(swat_time),
            fmt_duration(hist_time),
            format!(
                "{:.2}",
                swat_time.as_secs_f64() / hist_time.as_secs_f64().max(1e-12)
            ),
        ]);
    }
    print_table(
        "Figure 6(a): maintenance time (no queries)",
        &["stream size", "SWAT", "Histogram", "SWAT/Histogram"],
        &rows,
    );
    println!("\nExpected shape (paper): the maintenance times are very similar (same order).");
}

fn fig6b(seed: u64, quick: bool) {
    let window = 1024;
    let queries = if quick { 10 } else { 100 };
    let data = Dataset::Synthetic.series(seed, 3 * window);
    let mut tree = SwatTree::new(SwatConfig::new(window).expect("valid"));
    let mut hist = SlidingHistogram::new(HistogramConfig::new(window, 30, 0.1).expect("valid"));
    for &v in &data {
        tree.push(v);
        hist.push(v);
    }
    let mut rng = swat_sim::rng_stream(seed, 99);
    let qs: Vec<InnerProductQuery> = (0..queries)
        .map(|_| {
            let start = rng.gen_range(0..window);
            let len = rng.gen_range(1..=window - start);
            InnerProductQuery::exponential_at(start, len, f64::INFINITY)
        })
        .collect();

    // SWAT: answer directly from the tree.
    let start = Instant::now();
    let mut sink = 0.0;
    for q in &qs {
        sink += tree.inner_product(q).expect("warm").value;
    }
    let swat_total = start.elapsed();

    // Histogram: construct the (1+eps)-approximate histogram, then answer.
    let start = Instant::now();
    for q in &qs {
        let h = hist.build();
        sink += h.inner_product(q.indices(), q.weights());
    }
    let hist_total = start.elapsed();
    std::hint::black_box(sink);

    let swat_avg = swat_total / queries as u32;
    let hist_avg = hist_total / queries as u32;
    print_table(
        "Figure 6(b): average query response time (N=1024, B=30, eps=0.1)",
        &["technique", "avg response time", "total", "queries"],
        &[
            vec![
                "SWAT".into(),
                fmt_duration(swat_avg),
                fmt_duration(swat_total),
                queries.to_string(),
            ],
            vec![
                "Histogram".into(),
                fmt_duration(hist_avg),
                fmt_duration(hist_total),
                queries.to_string(),
            ],
        ],
    );
    println!(
        "\nSpeed-up: {:.0}x (paper: ~4 orders of magnitude; 2.8e-3 s vs 25.4 s on 2002 hardware)",
        hist_avg.as_secs_f64() / swat_avg.as_secs_f64().max(1e-12)
    );
}
