//! Ablations of the design choices called out in DESIGN.md §7.
//!
//! 1. **Enclosure-based update suppression** (SWAT-ASR): messages with
//!    the paper's suppression vs naive push-on-change.
//! 2. **Coefficients per node** (`k`): centralized error vs space.
//! 3. **Phase length**: SWAT-ASR messages vs ADR phase duration.

use swat_bench::centralized::{error_experiment, ExperimentConfig, Mode, Shape};
use swat_bench::report::{fmt, print_table};
use swat_data::Dataset;
use swat_net::Topology;
use swat_replication::asr::SwatAsr;
use swat_replication::harness::{run_scheme, WorkloadConfig};

fn main() {
    let seed = swat_bench::seed();
    let quick = swat_bench::quick_mode();
    enclosure_ablation(seed, quick);
    coefficient_ablation(seed, quick);
    phase_ablation(seed, quick);
    summary_form_ablation(seed);
    replication_granularity_ablation(seed, quick);
}

/// Range replicas (the paper's 1-coefficient mainline) vs k-coefficient
/// replicas (§3's general case): hit rate and messages on wavy data with
/// a moderately tight precision requirement.
fn replication_granularity_ablation(seed: u64, quick: bool) {
    use swat_replication::asr::SwatAsr;
    let horizon: u64 = if quick { 2_000 } else { 8_000 };
    let topo = Topology::single_client();
    let cfg = WorkloadConfig {
        window: 32,
        t_data: 2,
        t_query: 1,
        delta: 8.0,
        horizon,
        warmup: horizon / 5,
        seed,
        ..WorkloadConfig::default()
    };
    // Wavy data: ranges stay wide, but a few coefficients describe each
    // segment well.
    let data: Vec<f64> = (0..(horizon / 2 + 2))
        .map(|i| 50.0 + 10.0 * ((i as f64) * 0.4).sin())
        .collect();
    let mut rows = Vec::new();
    {
        let mut scheme = SwatAsr::new(topo.clone(), cfg.window);
        let out = run_scheme(&mut scheme, &topo, &data, &cfg);
        let hits = out.metrics.counter("local_hits");
        let queries = out.metrics.counter("queries").max(1);
        rows.push(vec![
            "ranges (paper)".to_owned(),
            out.ledger.total().to_string(),
            format!("{:.2}", hits as f64 / queries as f64),
        ]);
    }
    for k in [2usize, 4, 8] {
        let mut scheme = SwatAsr::with_coefficients(topo.clone(), cfg.window, k);
        let out = run_scheme(&mut scheme, &topo, &data, &cfg);
        let hits = out.metrics.counter("local_hits");
        let queries = out.metrics.counter("queries").max(1);
        rows.push(vec![
            format!("{k} coefficients"),
            out.ledger.total().to_string(),
            format!("{:.2}", hits as f64 / queries as f64),
        ]);
    }
    print_table(
        "Ablation 5: replica payload — ranges vs k coefficients (wavy data, tight delta)",
        &["replica form", "messages (post-warmup)", "local hit rate"],
        &rows,
    );
}

/// Prefix-k (mergeable, what the tree uses) vs largest-k (energy-optimal
/// but unmergeable) on static signals: how much L2 error the tree's
/// incremental capability costs at equal budget.
fn summary_form_ablation(seed: u64) {
    use swat_wavelet::{HaarCoeffs, ThresholdedCoeffs};
    let n = 1024;
    let mut rows = Vec::new();
    for (label, sig) in [
        ("weather", Dataset::Weather.series(seed, n)),
        ("synthetic", Dataset::Synthetic.series(seed, n)),
    ] {
        for k in [4usize, 16, 64] {
            let prefix = HaarCoeffs::from_signal(&sig, k).expect("valid");
            let rec = prefix.reconstruct();
            let e_prefix: f64 = sig.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum();
            let thresh = ThresholdedCoeffs::from_signal(&sig, k).expect("valid");
            let e_thresh = thresh.l2_error(&sig);
            rows.push(vec![
                label.to_owned(),
                k.to_string(),
                fmt(e_prefix.sqrt()),
                fmt(e_thresh.sqrt()),
                format!("{:.2}", e_prefix.sqrt() / e_thresh.sqrt().max(1e-12)),
            ]);
        }
    }
    print_table(
        "Ablation 4: mergeable prefix-k vs energy-optimal largest-k (static L2 error)",
        &[
            "dataset",
            "k",
            "prefix-k L2",
            "largest-k L2",
            "prefix/largest",
        ],
        &rows,
    );
}

fn enclosure_ablation(seed: u64, quick: bool) {
    let horizon: u64 = if quick { 2_000 } else { 8_000 };
    let topo = Topology::complete_binary(2);
    let cfg = WorkloadConfig {
        window: 64,
        t_data: 2,
        t_query: 1,
        // Loose precision so clients actually hold replicas — enclosure
        // suppression only matters once updates have someone to reach.
        delta: 400.0,
        horizon,
        warmup: horizon / 5,
        seed,
        ..WorkloadConfig::default()
    };
    // A drifting random walk: segment ranges change constantly, but most
    // new ranges stay enclosed in a slightly stale cached one — exactly
    // the traffic the paper's suppression rule avoids.
    let data: Vec<f64> = swat_data::walk::RandomWalk::new(seed, 0.0, 100.0, 2.0)
        .take((horizon / 2 + 2) as usize)
        .collect();
    let mut rows = Vec::new();
    for (label, enabled) in [("suppression ON (paper)", true), ("suppression OFF", false)] {
        let mut scheme = SwatAsr::with_enclosure_suppression(topo.clone(), cfg.window, enabled);
        let out = run_scheme(&mut scheme, &topo, &data, &cfg);
        rows.push(vec![label.to_owned(), out.ledger.total().to_string()]);
    }
    print_table(
        "Ablation 1: enclosure-based update suppression (SWAT-ASR, 6 clients)",
        &["variant", "messages (post-warmup)"],
        &rows,
    );
}

fn coefficient_ablation(seed: u64, quick: bool) {
    let window = 256;
    let total = if quick { 3 * window } else { 10 * window };
    let data = Dataset::Weather.series(seed, total);
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let cfg = ExperimentConfig {
            window,
            warmup: 2 * window,
            total,
            mode: Mode::Fixed,
            shape: Shape::Exponential,
            query_len: 64,
            seed,
            coefficients: k,
            with_histogram: false,
            ..ExperimentConfig::default()
        };
        let r = error_experiment(&data, &cfg);
        // Space: 3 log N - 2 summaries of <= k coefficients each.
        let summaries = 3 * window.trailing_zeros() as usize - 2;
        rows.push(vec![
            k.to_string(),
            fmt(r.swat_rel.mean()),
            fmt(r.swat_abs.mean()),
            format!("~{} coeffs", summaries * k),
        ]);
    }
    print_table(
        "Ablation 2: coefficients per node (k), fixed exponential queries, N=256",
        &["k", "mean relative error", "mean absolute error", "space"],
        &rows,
    );
}

fn phase_ablation(seed: u64, quick: bool) {
    let horizon: u64 = if quick { 2_000 } else { 8_000 };
    let topo = Topology::single_client();
    let data = Dataset::Weather.series(seed, (horizon + 2) as usize);
    let mut rows = Vec::new();
    for phase in [5u64, 10, 20, 40, 80, 160] {
        let cfg = WorkloadConfig {
            window: 32,
            t_data: 2,
            t_query: 1,
            delta: 20.0,
            horizon,
            warmup: horizon / 5,
            seed,
            phase,
            ..WorkloadConfig::default()
        };
        let mut scheme = SwatAsr::new(topo.clone(), cfg.window);
        let out = run_scheme(&mut scheme, &topo, &data, &cfg);
        let hits = out.metrics.counter("local_hits");
        let queries = out.metrics.counter("queries").max(1);
        rows.push(vec![
            phase.to_string(),
            out.ledger.total().to_string(),
            format!("{:.2}", hits as f64 / queries as f64),
        ]);
    }
    print_table(
        "Ablation 3: ADR phase length (SWAT-ASR, single client)",
        &["phase length", "messages (post-warmup)", "local hit rate"],
        &rows,
    );
}
