//! Reproduces Figure 5 of the SWAT paper: approximation quality of SWAT
//! vs the Guha–Koudas Histogram baseline, N = 1024, B = 30, 1K warmup.
//!
//! Panels:
//! * (a)/(b) real data, ε = 0.1, fixed query mode, exponential + linear;
//! * (c) synthetic data, ε = 0.001, fixed query mode;
//! * (d) real data, linear queries, random mode, ε ∈ {0.1, 0.01, 0.001};
//!   ("random mode" here is random query *length* anchored at the newest
//!   value — see `centralized::Mode::AnchoredRandom` for why);
//! * (e) real data, exponential queries, random mode, same ε sweep;
//! * (f) synthetic data, ε = 0.001, random mode, both query types.
//!
//! Histogram constructions are expensive by design (that is the paper's
//! point); each panel therefore measures a capped number of queries —
//! enough for stable means. See EXPERIMENTS.md for the recorded results.

use swat_bench::centralized::{error_experiment, ExperimentConfig, Mode, Shape};
use swat_bench::report::{fmt, print_table};
use swat_data::Dataset;

struct Panel {
    name: &'static str,
    dataset: Dataset,
    mode: Mode,
    shape: Shape,
    epsilon: f64,
}

fn main() {
    let quick = swat_bench::quick_mode();
    let seed = swat_bench::seed();
    let window = 1024;
    let warmup = 2 * window; // covers both the paper's 1K warmup and tree warm-up
    let max_queries = if quick { 20 } else { 200 };
    let total = warmup + 8 * max_queries * 4;

    let panels = [
        Panel {
            name: "5(a/b) real, fixed, exponential, eps=0.1",
            dataset: Dataset::Weather,
            mode: Mode::Fixed,
            shape: Shape::Exponential,
            epsilon: 0.1,
        },
        Panel {
            name: "5(a/b) real, fixed, linear, eps=0.1",
            dataset: Dataset::Weather,
            mode: Mode::Fixed,
            shape: Shape::Linear,
            epsilon: 0.1,
        },
        Panel {
            name: "5(c) synthetic, fixed, exponential, eps=0.001",
            dataset: Dataset::Synthetic,
            mode: Mode::Fixed,
            shape: Shape::Exponential,
            epsilon: 0.001,
        },
        Panel {
            name: "5(c) synthetic, fixed, linear, eps=0.001",
            dataset: Dataset::Synthetic,
            mode: Mode::Fixed,
            shape: Shape::Linear,
            epsilon: 0.001,
        },
        Panel {
            name: "5(d) real, random, linear, eps=0.1",
            dataset: Dataset::Weather,
            mode: Mode::AnchoredRandom,
            shape: Shape::Linear,
            epsilon: 0.1,
        },
        Panel {
            name: "5(d) real, random, linear, eps=0.01",
            dataset: Dataset::Weather,
            mode: Mode::AnchoredRandom,
            shape: Shape::Linear,
            epsilon: 0.01,
        },
        Panel {
            name: "5(d) real, random, linear, eps=0.001",
            dataset: Dataset::Weather,
            mode: Mode::AnchoredRandom,
            shape: Shape::Linear,
            epsilon: 0.001,
        },
        Panel {
            name: "5(e) real, random, exponential, eps=0.1",
            dataset: Dataset::Weather,
            mode: Mode::AnchoredRandom,
            shape: Shape::Exponential,
            epsilon: 0.1,
        },
        Panel {
            name: "5(e) real, random, exponential, eps=0.001",
            dataset: Dataset::Weather,
            mode: Mode::AnchoredRandom,
            shape: Shape::Exponential,
            epsilon: 0.001,
        },
        Panel {
            name: "5(f) synthetic, random, exponential, eps=0.001",
            dataset: Dataset::Synthetic,
            mode: Mode::AnchoredRandom,
            shape: Shape::Exponential,
            epsilon: 0.001,
        },
        Panel {
            name: "5(f) synthetic, random, linear, eps=0.001",
            dataset: Dataset::Synthetic,
            mode: Mode::AnchoredRandom,
            shape: Shape::Linear,
            epsilon: 0.001,
        },
    ];

    let mut rows = Vec::new();
    for p in &panels {
        let data = p.dataset.series(seed, total);
        let cfg = ExperimentConfig {
            window,
            warmup,
            total,
            mode: p.mode,
            shape: p.shape,
            query_len: 32,
            seed,
            buckets: 30,
            epsilon: p.epsilon,
            query_every: 4,
            max_queries,
            ..ExperimentConfig::default()
        };
        let r = error_experiment(&data, &cfg);
        rows.push(vec![
            p.name.to_owned(),
            fmt(r.swat_rel.mean()),
            fmt(r.hist_rel.mean()),
            format!("{:.1}x", r.improvement()),
            r.queries.to_string(),
        ]);
        eprintln!("done: {}", p.name);
    }
    print_table(
        "Figure 5: average relative error, SWAT vs Histogram (N=1024, B=30)",
        &["panel", "SWAT", "Histogram", "Hist/SWAT", "queries"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): SWAT wins big on fixed-mode exponential queries\n\
         (up to ~50x on real data, ~25x on synthetic), modestly on fixed linear;\n\
         random-mode linear queries favor Histogram slightly; random exponential favors SWAT."
    );
}
