//! Reproduces Figure 9 of the SWAT paper: single-client replication
//! experiments over a window of 32, measuring exchanged messages.
//!
//! * **9(a)** — real (weather) data, sweep of the `T_d / T_q` ratio;
//! * **9(b)** — synthetic data, same sweep;
//! * **9(c)** — fixed rates (`T_q = 1`, `T_d = 2`), precision sweep.

use swat_bench::report::print_table;
use swat_data::Dataset;
use swat_net::Topology;
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::SchemeKind;

fn main() {
    let quick = swat_bench::quick_mode();
    let seed = swat_bench::seed();
    let horizon: u64 = if quick { 2_000 } else { 12_000 };
    let warmup = horizon / 5;

    for (panel, dataset) in [("9(a)", Dataset::Weather), ("9(b)", Dataset::Synthetic)] {
        ratio_sweep(panel, dataset, seed, horizon, warmup);
    }
    precision_sweep(seed, horizon, warmup);
}

fn ratio_sweep(panel: &str, dataset: Dataset, seed: u64, horizon: u64, warmup: u64) {
    let topo = Topology::single_client();
    // (T_d period, T_q period) pairs spanning data-rate/query-rate ratios
    // 1/8 .. 8 (the paper's axis is a *rate* ratio: rate = 1/period).
    let rates: &[(u64, u64)] = &[(8, 1), (4, 1), (2, 1), (1, 1), (1, 2), (1, 4), (1, 8)];
    let mut rows = Vec::new();
    for &(t_data, t_query) in rates {
        let cfg = WorkloadConfig {
            window: 32,
            t_data,
            t_query,
            delta: 20.0,
            horizon,
            warmup,
            seed,
            ..WorkloadConfig::default()
        };
        let max_needed = (horizon / t_data + 2) as usize;
        let data = dataset.series(seed, max_needed);
        let mut row = vec![format!("{:.3}", t_query as f64 / t_data as f64)];
        for kind in SchemeKind::ALL {
            let out = run(kind, &topo, &data, &cfg);
            row.push(out.ledger.total().to_string());
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure {panel}: messages vs data/query rate ratio ({}, N=32, single client)",
            dataset.name()
        ),
        &["data rate / query rate", "SWAT-ASR", "DC", "APS"],
        &rows,
    );
    println!(
        "Expected shape: on the left (data rate < query rate) caching pays off and\n\
         SWAT-ASR's segment-granular replicas need far fewer messages; on the right\n\
         (write-heavy) the adaptive schemes stop caching and costs fall again."
    );
}

fn precision_sweep(seed: u64, horizon: u64, warmup: u64) {
    let topo = Topology::single_client();
    let mut rows = Vec::new();
    for &delta in &[80.0, 40.0, 20.0, 10.0, 5.0, 2.5] {
        let cfg = WorkloadConfig {
            window: 32,
            t_data: 2,
            t_query: 1,
            delta,
            horizon,
            warmup,
            seed,
            ..WorkloadConfig::default()
        };
        let data = Dataset::Weather.series(seed, (horizon / 2 + 2) as usize);
        let mut row = vec![format!("{delta}")];
        for kind in SchemeKind::ALL {
            let out = run(kind, &topo, &data, &cfg);
            row.push(out.ledger.total().to_string());
        }
        rows.push(row);
    }
    print_table(
        "Figure 9(c): messages vs precision requirement (real data, T_q=1, T_d=2, N=32)",
        &["delta", "SWAT-ASR", "DC", "APS"],
        &rows,
    );
    println!(
        "Expected shape: costs grow as precision tightens (smaller delta); SWAT-ASR\n\
         stays up to ~4-5x below DC and APS (the paper's Figure 9(c))."
    );
}
