//! Space comparison (§2.7 closing remark and §5.1).
//!
//! * Centralized: SWAT keeps `3 log N − 2` summaries (`O(k log N)`
//!   bytes); the Histogram baseline retains the whole window (`O(N)`).
//! * Distributed: SWAT-ASR caches one range per *segment* per replica
//!   site (`O(M log N)` total); DC and APS cache one interval per *item*
//!   per client (`O(M N)`).

use swat_bench::report::print_table;
use swat_data::Dataset;
use swat_histogram::{HistogramConfig, SlidingHistogram};
use swat_net::Topology;
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::SchemeKind;
use swat_tree::{SwatConfig, SwatTree};

fn main() {
    let seed = swat_bench::seed();
    centralized(seed);
    distributed(seed);
}

fn centralized(seed: u64) {
    let mut rows = Vec::new();
    for log_n in [8usize, 9, 10, 12, 14] {
        let n = 1usize << log_n;
        let data = Dataset::Synthetic.series(seed, 2 * n);
        let mut tree = SwatTree::new(SwatConfig::new(n).expect("valid"));
        let mut hist = SlidingHistogram::new(HistogramConfig::new(n, 30, 0.1).expect("valid"));
        for &v in &data {
            tree.push(v);
            hist.push(v);
        }
        rows.push(vec![
            n.to_string(),
            tree.summary_count().to_string(),
            tree.space_bytes().to_string(),
            n.to_string(),
            hist.space_bytes().to_string(),
        ]);
    }
    print_table(
        "Centralized space: SWAT O(log N) vs Histogram O(N)",
        &[
            "N",
            "SWAT summaries",
            "SWAT bytes",
            "Histogram values",
            "Histogram bytes",
        ],
        &rows,
    );
}

fn distributed(seed: u64) {
    let topo = Topology::complete_binary(2); // 6 clients
    let cfg = WorkloadConfig {
        window: 64,
        t_data: 8,
        t_query: 1,
        delta: 40.0,
        horizon: 4_000,
        warmup: 800,
        seed,
        ..WorkloadConfig::default()
    };
    let data = Dataset::Weather.series(seed, 600);
    let mut rows = Vec::new();
    for kind in SchemeKind::ALL {
        let out = run(kind, &topo, &data, &cfg);
        rows.push(vec![
            out.scheme.to_owned(),
            out.approximations.to_string(),
            out.ledger.total().to_string(),
        ]);
    }
    print_table(
        "Distributed space: cached approximations after a read-heavy run (6 clients, N=64)",
        &["scheme", "approximations", "messages (post-warmup)"],
        &rows,
    );
    println!(
        "\nExpected shape: SWAT-ASR holds O(M log N) = at most {} ranges;\n\
         per-item schemes approach O(M N) = {} intervals under read-heavy load.",
        topo.len() * 6,
        topo.client_count() * 64
    );
}
