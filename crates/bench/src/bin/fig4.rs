//! Reproduces Figure 4 of the SWAT paper.
//!
//! * **4(a)** — relative error of a fixed exponential inner-product query
//!   evaluated at every arrival over 10K incoming points, window N = 256.
//!   The paper does not name the dataset; its reported cumulative error
//!   (~0.01) matches the smooth real dataset, which we use.
//!   The paper observes *periodic* error behaviour ("approximations at
//!   the upper levels in the tree can diverge for short durations").
//! * **4(b)** — the cumulative mean of those relative errors (the paper
//!   reports it settles around 0.01).
//! * **4(c)** — average absolute error as the resolution is reduced
//!   (§2.5), window N = 512: exponential queries degrade linearly with
//!   the level, linear queries exponentially.

use swat_bench::centralized::{error_experiment, ExperimentConfig, Mode, Shape};
use swat_bench::report::{fmt, print_table};
use swat_data::Dataset;

fn main() {
    let quick = swat_bench::quick_mode();
    let seed = swat_bench::seed();
    fig4ab(seed, quick);
    fig4c(seed, quick);
}

fn fig4ab(seed: u64, quick: bool) {
    let total = if quick { 2_000 } else { 10_000 };
    let window = 256;
    let data = Dataset::Weather.series(seed, total);
    let cfg = ExperimentConfig {
        window,
        warmup: 2 * window,
        total,
        mode: Mode::Fixed,
        shape: Shape::Exponential,
        query_len: 64,
        seed,
        with_histogram: false,
        ..ExperimentConfig::default()
    };
    let r = error_experiment(&data, &cfg);

    // 4(a): sample the series coarsely for the console; report the error
    // periodicity by autocorrelating at power-of-two lags.
    let rels: Vec<f64> = r.series.iter().map(|p| p.swat_rel).collect();
    let rows: Vec<Vec<String>> = r
        .series
        .iter()
        .step_by((r.series.len() / 24).max(1))
        .map(|p| vec![p.t.to_string(), fmt(p.swat_rel), fmt(p.swat_cum)])
        .collect();
    print_table(
        "Figure 4(a)/(b): relative error over time (N=256, fixed exponential query, real data)",
        &["t", "relative error", "cumulative error"],
        &rows,
    );
    let lag_rows: Vec<Vec<String>> = [2usize, 4, 8, 16, 32, 64, 128, 3, 5, 7]
        .iter()
        .map(|&lag| vec![lag.to_string(), fmt(autocorrelation(&rels, lag))])
        .collect();
    print_table(
        "Figure 4(a) periodicity: autocorrelation of the error series",
        &["lag", "autocorrelation"],
        &lag_rows,
    );
    println!(
        "\nFigure 4(b) summary: cumulative mean relative error = {} (paper: ~0.01), max = {}",
        fmt(r.swat_rel.mean()),
        fmt(r.swat_rel.max()),
    );
}

fn fig4c(seed: u64, quick: bool) {
    let window = 512;
    let total = if quick { 3 * window } else { 8 * window };
    let data = Dataset::Weather.series(seed ^ 0xC0FFEE, total);
    let mut rows = Vec::new();
    let mut prev = (0.0f64, 0.0f64);
    for min_level in 0..9usize {
        let run = |shape| {
            let cfg = ExperimentConfig {
                window,
                warmup: 2 * window,
                total,
                mode: Mode::Fixed,
                shape,
                // Short enough that the whole query sits in the fine
                // region, so the reduced resolution is what drives the
                // error (the regime of the paper's §2.6 analysis).
                query_len: 32,
                seed,
                min_level,
                with_histogram: false,
                ..ExperimentConfig::default()
            };
            error_experiment(&data, &cfg).swat_abs.mean()
        };
        let exp_err = run(Shape::Exponential);
        let lin_err = run(Shape::Linear);
        rows.push(vec![
            min_level.to_string(),
            fmt(exp_err),
            fmt(lin_err),
            if min_level == 0 {
                "-".into()
            } else {
                format!(
                    "{} / {}",
                    fmt(exp_err - prev.0),
                    fmt(lin_err / prev.1.max(1e-12))
                )
            },
        ]);
        prev = (exp_err, lin_err);
    }
    print_table(
        "Figure 4(c): average absolute error vs resolution level (N=512)",
        &[
            "min level",
            "exponential query",
            "linear query",
            "exp increment / lin ratio",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: exponential grows ~linearly with the level, linear grows ~exponentially."
    );
}

/// Autocorrelation of `xs` at `lag` (0 if degenerate).
fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    cov / var
}
