//! Reproduces Figure 10 of the SWAT paper: multi-client replication over
//! complete binary trees, window N = 64, measuring exchanged messages.
//!
//! * **10(a)** — weather data, growing client populations (2/6/14/30);
//! * **10(b)** — synthetic data, 6 clients, precision sweep.

use swat_bench::report::print_table;
use swat_data::Dataset;
use swat_net::Topology;
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::SchemeKind;

fn main() {
    let quick = swat_bench::quick_mode();
    let seed = swat_bench::seed();
    let horizon: u64 = if quick { 2_000 } else { 10_000 };
    let warmup = horizon / 5;
    fig10a(seed, horizon, warmup, quick);
    fig10b(seed, horizon, warmup);
}

fn fig10a(seed: u64, horizon: u64, warmup: u64, quick: bool) {
    let depths: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3, 4] };
    let mut rows = Vec::new();
    for &depth in depths {
        let topo = Topology::complete_binary(depth);
        let cfg = WorkloadConfig {
            window: 64,
            t_data: 2,
            t_query: 1,
            delta: 30.0,
            horizon,
            warmup,
            seed,
            ..WorkloadConfig::default()
        };
        let data = Dataset::Weather.series(seed, (horizon / 2 + 2) as usize);
        let mut row = vec![topo.client_count().to_string()];
        for kind in SchemeKind::ALL {
            let out = run(kind, &topo, &data, &cfg);
            row.push(out.ledger.total().to_string());
        }
        rows.push(row);
    }
    print_table(
        "Figure 10(a): messages vs number of clients (weather data, N=64, binary tree)",
        &["clients", "SWAT-ASR", "DC", "APS"],
        &rows,
    );
    println!(
        "Expected shape: SWAT-ASR grows slowest with the client count — segments\n\
         are shared down the hierarchy (paper: DC up to 3x, APS up to 4x more messages)."
    );
}

fn fig10b(seed: u64, horizon: u64, warmup: u64) {
    let topo = Topology::complete_binary(2); // 6 clients, the paper's setup
    let mut rows = Vec::new();
    for &delta in &[120.0, 60.0, 30.0, 15.0, 7.5] {
        let cfg = WorkloadConfig {
            window: 64,
            t_data: 2,
            t_query: 1,
            delta,
            horizon,
            warmup,
            seed,
            ..WorkloadConfig::default()
        };
        let data = Dataset::Synthetic.series(seed, (horizon / 2 + 2) as usize);
        let mut row = vec![format!("{delta}")];
        for kind in SchemeKind::ALL {
            let out = run(kind, &topo, &data, &cfg);
            row.push(out.ledger.total().to_string());
        }
        rows.push(row);
    }
    print_table(
        "Figure 10(b): messages vs precision (synthetic data, 6 clients, N=64)",
        &["delta", "SWAT-ASR", "DC", "APS"],
        &rows,
    );
    println!(
        "Expected shape: SWAT-ASR beats the per-item baselines by a factor of ~3-4\n\
         across the precision range (the paper's Figure 10(b))."
    );
}
