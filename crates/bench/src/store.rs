//! Store bench: non-blocking flush latency and disk-fault survival.
//!
//! Two measurements around the tiered `swat-store` (ISSUE 10), rendered
//! as tables (via [`crate::report`]) and as the `results/BENCH_store.json`
//! artifact (schema in EXPERIMENTS.md); backs `swat store-bench`:
//!
//! 1. **Flush non-blocking.** A store with a small `freeze_rows` ingests
//!    `rows` rows, so dozens of freeze → background-flush cycles happen
//!    mid-run; every `push_row` call is timed individually. The headline
//!    claim is `flush_nonblocking`: no push ever *waits* on segment
//!    serialization, fsync, or compaction — that work happens behind the
//!    caller's back. A checkpoint barrier is timed alongside for
//!    contrast: that is what the old blocking design paid on the ingest
//!    path.
//!
//!    On a small host (this grid often runs on one core) the raw
//!    wall-clock maximum also picks up *involuntary scheduler
//!    preemption*: the flusher thread is CPU-runnable, so the kernel
//!    occasionally parks the pusher for a multi-millisecond timeslice at
//!    a random row — indistinguishable from a blocking flush by wall
//!    clock alone, but a property of the scheduler, not the store. The
//!    two are separated with the thread's `voluntary_ctxt_switches`
//!    counter (`/proc/thread-self/status`): a push that blocks on I/O or
//!    a held lock goes off-CPU *voluntarily*; a preempted push does not.
//!    Every stall ≥ 1 ms is classified, the gate is **zero blocking
//!    stalls** (plus p99 under 1 ms), and both the raw maximum and the
//!    preempted count are reported unfiltered.
//! 2. **Injected-fault grid.** `ENOSPC` / `EIO` / torn-write faults ×
//!    crash points spread over both fault domains (foreground WAL,
//!    background flush). Each cell runs the workload with the fault
//!    injected at that step, tracks the rows acknowledged by `sync()`,
//!    kills the store, and recovers. Required outcome, every cell: zero
//!    acked-data loss, zero panics, and a recovered digest bit-identical
//!    to the uncrashed twin at the recovered prefix.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_store::{DurableStore, IoFaultKind, IoFaultPlan, IoFaults, RecoveryManager, StoreOptions};
use swat_tree::{StreamSet, SwatConfig};

/// The experiment shape.
#[derive(Debug, Clone)]
pub struct StoreBenchConfig {
    /// Sliding-window size (power of two).
    pub window: usize,
    /// Wavelet coefficients kept per summary node.
    pub coeffs: usize,
    /// Synchronized streams per store.
    pub streams: usize,
    /// Rows ingested by the latency experiment.
    pub rows: u64,
    /// Rows per frozen generation (small, so flushes happen mid-run).
    pub freeze_rows: u64,
    /// Rows ingested by each fault-grid cell.
    pub grid_rows: u64,
    /// Crash points sampled per fault kind and domain.
    pub grid_points: usize,
    /// Master seed.
    pub seed: u64,
}

impl StoreBenchConfig {
    /// The default full-size run (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        StoreBenchConfig {
            window: 64,
            coeffs: 2,
            streams: 4,
            rows: 20_000,
            freeze_rows: 512,
            grid_rows: 600,
            grid_points: 12,
            seed,
        }
    }

    /// A drastically shrunk run for smoke tests.
    pub fn quick(seed: u64) -> Self {
        StoreBenchConfig {
            window: 16,
            coeffs: 1,
            streams: 2,
            rows: 2_000,
            freeze_rows: 128,
            grid_rows: 120,
            grid_points: 4,
            seed,
        }
    }

    fn swat_config(&self) -> SwatConfig {
        SwatConfig::with_coefficients(self.window, self.coeffs)
            .expect("bench windows are powers of two")
    }

    fn opts(&self) -> StoreOptions {
        StoreOptions {
            freeze_rows: self.freeze_rows,
            compact_fanin: 4,
            retry_backoff: Duration::from_millis(1),
            ..StoreOptions::default()
        }
    }
}

/// The push-latency measurement under background flushing.
#[derive(Debug, Clone)]
pub struct FlushLatency {
    /// Rows pushed (and individually timed).
    pub pushes: u64,
    /// Mean `push_row` latency, microseconds.
    pub mean_micros: f64,
    /// 99th-percentile `push_row` latency, microseconds.
    pub p99_micros: u64,
    /// Worst single `push_row` wall time, microseconds (unfiltered —
    /// includes scheduler preemption on small hosts).
    pub max_micros: u64,
    /// Pushes whose wall time reached 1 ms.
    pub stalls: u64,
    /// Stalls where the pushing thread went off-CPU *voluntarily* —
    /// i.e. actually waited on flush I/O or a lock. The gate: zero.
    pub blocking_stalls: u64,
    /// Stalls attributed to involuntary scheduler preemption (the
    /// voluntary-switch counter did not move across the push).
    pub preempted_stalls: u64,
    /// Background segment flushes completed during the run.
    pub flushes: u64,
    /// Background compactions completed during the run.
    pub compactions: u64,
    /// Wall time of one explicit `checkpoint()` barrier afterwards — the
    /// blocking cost the ingest path no longer pays, microseconds.
    pub checkpoint_micros: u64,
    /// The headline: no push ever blocked on background flushing — zero
    /// voluntary-wait stalls and p99 under 1 ms while flushes ran.
    pub flush_nonblocking: bool,
}

/// Aggregate over the injected-fault grid.
#[derive(Debug, Clone)]
pub struct FaultGrid {
    /// Cells run (kinds × crash points × domains).
    pub cells: u64,
    /// Cells where recovery lost acknowledged rows (must be 0).
    pub acked_rows_lost: u64,
    /// Cells whose recovered digest differed from the uncrashed twin at
    /// the recovered prefix (must be 0).
    pub digest_mismatches: u64,
    /// Cells that panicked (must be 0; a panic aborts the bench).
    pub panics: u64,
    /// Cells where the store reported typed degradation while running
    /// (expected: the fault was injected mid-flush).
    pub typed_degradations: u64,
    /// Cells where recovery returned a typed error with nothing acked
    /// (legal: the fault destroyed the store before the first ack).
    pub typed_errors: u64,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct StoreBenchReport {
    /// The configuration measured.
    pub config: StoreBenchConfig,
    /// Push-latency measurement.
    pub latency: FlushLatency,
    /// Injected-fault grid aggregate.
    pub grid: FaultGrid,
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    // tmpfs when available: the grid replays the workload per cell and
    // would otherwise be bound by a disk-backed /tmp's fsync latency.
    let base = Path::new("/dev/shm");
    let base = if base.is_dir() {
        base.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!(
        "swat-store-bench-{}-{}-{}",
        std::process::id(),
        label,
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Per-stream data columns.
fn columns(cfg: &StoreBenchConfig, rows: u64) -> Vec<Vec<f64>> {
    (0..cfg.streams)
        .map(|s| Dataset::Weather.series(cfg.seed.wrapping_add(s as u64), rows as usize))
        .collect()
}

/// The calling thread's cumulative voluntary context switches — moves
/// exactly when the thread goes off-CPU by its own doing (blocking I/O,
/// a contended lock), not when the scheduler preempts it. `None` off
/// Linux or in restricted sandboxes; the caller then falls back to the
/// conservative reading (every stall counts as blocking).
fn voluntary_switches() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/status").ok()?;
    let line = text
        .lines()
        .find(|l| l.starts_with("voluntary_ctxt_switches"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

const STALL_MICROS: u64 = 1_000;

fn run_latency(cfg: &StoreBenchConfig) -> FlushLatency {
    let dir = scratch_dir("latency");
    let _ = std::fs::remove_dir_all(&dir);
    let data = columns(cfg, cfg.rows);
    let mut store = DurableStore::create_with(&dir, cfg.swat_config(), cfg.streams, cfg.opts())
        .expect("scratch directory is writable");
    let mut row = vec![0.0; cfg.streams];
    let mut lat = Vec::with_capacity(cfg.rows as usize);
    let mut stalls = 0u64;
    let mut blocking_stalls = 0u64;
    // Refreshed outside the timed region before every push, so a stall's
    // voluntary-switch delta is attributable to that push alone.
    let mut vol = voluntary_switches();
    for i in 0..cfg.rows as usize {
        for (s, col) in data.iter().enumerate() {
            row[s] = col[i];
        }
        let start = Instant::now();
        store.push_row(&row).expect("bench rows are finite");
        let micros = start.elapsed().as_micros() as u64;
        lat.push(micros);
        if micros >= STALL_MICROS {
            stalls += 1;
            let now = voluntary_switches();
            match (vol, now) {
                (Some(before), Some(after)) if after == before => {} // preempted
                _ => blocking_stalls += 1,
            }
            vol = now;
        } else {
            vol = voluntary_switches();
        }
    }
    let start = Instant::now();
    store.checkpoint().expect("fault-free checkpoint succeeds");
    let checkpoint_micros = start.elapsed().as_micros() as u64;
    let status = store.status();
    assert!(
        status.flushes >= cfg.rows / cfg.freeze_rows.max(1),
        "the latency run must actually exercise background flushing"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    lat.sort_unstable();
    let max_micros = *lat.last().expect("at least one push");
    let p99_micros = lat[(lat.len() * 99) / 100 - 1];
    let mean_micros = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
    FlushLatency {
        pushes: cfg.rows,
        mean_micros,
        p99_micros,
        max_micros,
        stalls,
        blocking_stalls,
        preempted_stalls: stalls - blocking_stalls,
        flushes: status.flushes,
        compactions: status.compactions,
        checkpoint_micros,
        flush_nonblocking: blocking_stalls == 0 && p99_micros < STALL_MICROS,
    }
}

/// Digest of the uncrashed twin at every prefix of the grid workload.
fn grid_digests(cfg: &StoreBenchConfig, data: &[Vec<f64>]) -> Vec<u64> {
    let mut set = StreamSet::new(cfg.swat_config(), cfg.streams);
    let mut out = vec![set.answers_digest()];
    let mut row = vec![0.0; cfg.streams];
    for i in 0..cfg.grid_rows as usize {
        for (s, col) in data.iter().enumerate() {
            row[s] = col[i];
        }
        set.push_row(&row);
        out.push(set.answers_digest());
    }
    out
}

/// One grid cell: run the workload with `plan` installed in the chosen
/// domain, sync periodically to establish the acked prefix, kill the
/// store, recover, and score the outcome.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    cfg: &StoreBenchConfig,
    data: &[Vec<f64>],
    digests: &[u64],
    plan: IoFaultPlan,
    in_flush_domain: bool,
    grid: &mut FaultGrid,
) {
    let dir = scratch_dir("grid");
    let _ = std::fs::remove_dir_all(&dir);
    let faults = IoFaults::with_plan(plan);
    let mut opts = cfg.opts();
    if in_flush_domain {
        opts.flush_faults = faults;
    } else {
        opts.wal_faults = faults;
    }
    grid.cells += 1;
    let Ok(mut store) = DurableStore::create_with(&dir, cfg.swat_config(), cfg.streams, opts)
    else {
        // The fault killed creation itself; nothing acked, nothing owed.
        let _ = std::fs::remove_dir_all(&dir);
        grid.typed_errors += 1;
        return;
    };
    let mut row = vec![0.0; cfg.streams];
    let mut acked = 0u64;
    let mut degraded_seen = false;
    for i in 0..cfg.grid_rows as usize {
        for (s, col) in data.iter().enumerate() {
            row[s] = col[i];
        }
        store.push_row(&row).expect("bench rows are finite");
        if (i + 1) % 37 == 0 {
            match store.sync() {
                Ok(()) => acked = store.arrivals(),
                Err(_) => degraded_seen = true,
            }
        }
    }
    let _ = store.checkpoint();
    match store.sync() {
        Ok(()) => acked = store.arrivals(),
        Err(_) => degraded_seen = true,
    }
    if degraded_seen {
        grid.typed_degradations += 1;
    }
    store.crash();

    match RecoveryManager::recover_with(&dir, cfg.opts()) {
        Ok((recovered, report)) => {
            let p = report.recovered_arrivals;
            if p < acked {
                grid.acked_rows_lost += acked - p;
            }
            if p > cfg.grid_rows || recovered.answers_digest() != digests[p as usize] {
                grid.digest_mismatches += 1;
            }
        }
        Err(_typed) => {
            grid.typed_errors += 1;
            if acked > 0 {
                grid.acked_rows_lost += acked;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_grid(cfg: &StoreBenchConfig) -> FaultGrid {
    let data = columns(cfg, cfg.grid_rows);
    let digests = grid_digests(cfg, &data);
    let mut grid = FaultGrid {
        cells: 0,
        acked_rows_lost: 0,
        digest_mismatches: 0,
        panics: 0,
        typed_degradations: 0,
        typed_errors: 0,
    };

    // Probe both domains' step horizons with a fault-free run.
    let probe_wal = IoFaults::none();
    let probe_flush = IoFaults::none();
    {
        let dir = scratch_dir("probe");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            wal_faults: probe_wal.clone(),
            flush_faults: probe_flush.clone(),
            ..cfg.opts()
        };
        let mut store = DurableStore::create_with(&dir, cfg.swat_config(), cfg.streams, opts)
            .expect("scratch directory is writable");
        let mut row = vec![0.0; cfg.streams];
        for i in 0..cfg.grid_rows as usize {
            for (s, col) in data.iter().enumerate() {
                row[s] = col[i];
            }
            store.push_row(&row).expect("bench rows are finite");
            if (i + 1) % 37 == 0 {
                store.sync().expect("fault-free sync succeeds");
            }
        }
        store.checkpoint().expect("fault-free checkpoint succeeds");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let kinds = [
        IoFaultKind::Enospc,
        IoFaultKind::Eio,
        IoFaultKind::Torn { keep_permille: 400 },
    ];
    for (domain_flush, horizon) in [(false, probe_wal.steps()), (true, probe_flush.steps())] {
        let points = cfg.grid_points.max(1) as u64;
        let stride = (horizon / points).max(1);
        for kind in kinds {
            let mut step = 0;
            while step < horizon {
                run_cell(
                    cfg,
                    &data,
                    &digests,
                    IoFaultPlan::at(step, kind),
                    domain_flush,
                    &mut grid,
                );
                step += stride;
            }
        }
    }
    grid
}

/// Run the whole bench.
pub fn run(cfg: &StoreBenchConfig) -> StoreBenchReport {
    let latency = run_latency(cfg);
    let grid = run_grid(cfg);
    StoreBenchReport {
        config: cfg.clone(),
        latency,
        grid,
    }
}

impl StoreBenchReport {
    /// Render both measurements as tables on stdout.
    pub fn print(&self) {
        report::print_table(
            "push latency under background flushing",
            &[
                "pushes",
                "mean µs",
                "p99 µs",
                "max µs",
                "stalls",
                "blocking",
                "preempted",
                "flushes",
                "compactions",
                "ckpt µs",
                "non-blocking",
            ],
            &[vec![
                self.latency.pushes.to_string(),
                report::fmt(self.latency.mean_micros),
                self.latency.p99_micros.to_string(),
                self.latency.max_micros.to_string(),
                self.latency.stalls.to_string(),
                self.latency.blocking_stalls.to_string(),
                self.latency.preempted_stalls.to_string(),
                self.latency.flushes.to_string(),
                self.latency.compactions.to_string(),
                self.latency.checkpoint_micros.to_string(),
                if self.latency.flush_nonblocking {
                    "yes"
                } else {
                    "NO"
                }
                .to_owned(),
            ]],
        );
        report::print_table(
            "injected-fault grid (ENOSPC / EIO / torn × crash points)",
            &[
                "cells",
                "acked lost",
                "digest mism",
                "panics",
                "degraded",
                "typed err",
            ],
            &[vec![
                self.grid.cells.to_string(),
                self.grid.acked_rows_lost.to_string(),
                self.grid.digest_mismatches.to_string(),
                self.grid.panics.to_string(),
                self.grid.typed_degradations.to_string(),
                self.grid.typed_errors.to_string(),
            ]],
        );
    }

    /// Serialize as the `BENCH_store.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"store\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"window\": {},\n", self.config.window));
        out.push_str(&format!("  \"coeffs\": {},\n", self.config.coeffs));
        out.push_str(&format!("  \"streams\": {},\n", self.config.streams));
        out.push_str(&format!("  \"rows\": {},\n", self.config.rows));
        out.push_str(&format!(
            "  \"freeze_rows\": {},\n",
            self.config.freeze_rows
        ));
        out.push_str(&format!("  \"grid_rows\": {},\n", self.config.grid_rows));
        out.push_str(&format!(
            "  \"latency\": {{\"pushes\": {}, \"mean_micros\": {:.2}, \"p99_micros\": {}, \
             \"max_micros\": {}, \"stalls\": {}, \"blocking_stalls\": {}, \
             \"preempted_stalls\": {}, \"flushes\": {}, \"compactions\": {}, \
             \"checkpoint_micros\": {}, \"flush_nonblocking\": {}}},\n",
            self.latency.pushes,
            self.latency.mean_micros,
            self.latency.p99_micros,
            self.latency.max_micros,
            self.latency.stalls,
            self.latency.blocking_stalls,
            self.latency.preempted_stalls,
            self.latency.flushes,
            self.latency.compactions,
            self.latency.checkpoint_micros,
            self.latency.flush_nonblocking,
        ));
        out.push_str(&format!(
            "  \"fault_grid\": {{\"cells\": {}, \"acked_rows_lost\": {}, \
             \"digest_mismatches\": {}, \"panics\": {}, \"typed_degradations\": {}, \
             \"typed_errors\": {}}}\n",
            self.grid.cells,
            self.grid.acked_rows_lost,
            self.grid.digest_mismatches,
            self.grid.panics,
            self.grid.typed_degradations,
            self.grid.typed_errors,
        ));
        out.push_str("}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_survives_the_grid_without_losing_acked_rows() {
        let report = run(&StoreBenchConfig::quick(11));
        assert!(report.latency.flushes > 0, "flushing must happen mid-run");
        assert_eq!(report.grid.acked_rows_lost, 0, "acked rows are sacred");
        assert_eq!(report.grid.digest_mismatches, 0);
        assert_eq!(report.grid.panics, 0);
        assert!(report.grid.cells > 0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"store\""));
        assert!(json.contains("\"acked_rows_lost\": 0"));
    }
}
