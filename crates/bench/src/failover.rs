//! The failover bench: what a leader kill actually costs.
//!
//! A full failover cluster comes up in-process (real `TcpListener`s,
//! `--peer`-style full membership, standbys armed), a client drives an
//! oracle-checked workload, then the **leader** is killed abruptly —
//! the single point of failure every earlier topology had. The bench
//! measures the three numbers the robustness claim hangs on:
//!
//! * **election latency** — kill until some surviving node reports
//!   itself leader of a term > 0,
//! * **unavailability window** — kill until the first post-kill ingest
//!   is fully acked again,
//! * **answered fraction** — how much of the probe traffic got *any*
//!   typed response in each phase (before / during / after).
//!
//! Correctness is enforced where it is well-defined: in the quiesced
//! before/after phases every point answer must be bit-identical to the
//! in-process `ShardedStreamSet` oracle over the acked rows, and the
//! final top-k must be complete and exact. During the outage the
//! cluster may refuse (`Unavailable`, `NotLeaderR`, silence) — never
//! answer wrongly — so the after-phase sweep re-reads *every* stream,
//! which would catch an acked-then-lost row from a bad promotion.
//! Artifact: `results/BENCH_failover.json` (schema in EXPERIMENTS.md).

use std::net::SocketAddr;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use swat_daemon::{
    bind, spawn_on, DaemonClient, DaemonConfig, FailoverClient, Request, Response, Role,
};
use swat_replication::RetryPolicy;
use swat_tree::{QueryOptions, ShardedStreamSet, SwatConfig};

use crate::report;

/// Workload shape for the failover bench.
#[derive(Debug, Clone)]
pub struct FailoverBenchConfig {
    /// Seed recorded in the artifact (the workload is deterministic).
    pub seed: u64,
    /// Global stream count.
    pub streams: usize,
    /// Shards (the cluster has `shards + 1` nodes).
    pub shards: usize,
    /// Tree window (power of two).
    pub window: usize,
    /// Coefficients kept per node.
    pub coeffs: usize,
    /// Acked ingests before the kill.
    pub rows_before: usize,
    /// Acked ingests after recovery.
    pub rows_after: usize,
    /// Follower patience before claiming a term, milliseconds.
    pub election_timeout_ms: u64,
    /// Hard deadline on recovery, milliseconds — the bench fails if the
    /// cluster has not re-elected and re-acked by then.
    pub deadline_ms: u64,
}

impl FailoverBenchConfig {
    /// Smoke-sized run (still real TCP, still a real election).
    pub fn quick(seed: u64) -> Self {
        FailoverBenchConfig {
            seed,
            streams: 8,
            shards: 2,
            window: 16,
            coeffs: 4,
            rows_before: 24,
            rows_after: 24,
            election_timeout_ms: 250,
            deadline_ms: 30_000,
        }
    }

    /// Full run.
    pub fn full(seed: u64) -> Self {
        FailoverBenchConfig {
            seed,
            streams: 16,
            shards: 3,
            window: 32,
            coeffs: 4,
            rows_before: 120,
            rows_after: 120,
            election_timeout_ms: 300,
            deadline_ms: 60_000,
        }
    }
}

/// Measured outcome of one phase.
#[derive(Debug, Clone)]
pub struct FailoverPhase {
    /// `"before"`, `"during"`, or `"after"`.
    pub label: &'static str,
    /// Requests issued.
    pub requests: usize,
    /// Requests that got any typed response.
    pub answered: usize,
    /// Answers that disagreed with the oracle — must be zero.
    pub wrong: usize,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
}

impl FailoverPhase {
    /// `answered / requests` (1.0 for an empty phase).
    pub fn answered_fraction(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.answered as f64 / self.requests as f64
        }
    }
}

/// The `BENCH_failover.json` report.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Seed recorded for reproducibility.
    pub seed: u64,
    /// Streams × shards of the measured cluster.
    pub streams: usize,
    /// Shards (nodes = shards + 1).
    pub shards: usize,
    /// Tree window.
    pub window: usize,
    /// Kill → first node reporting itself leader of a term > 0.
    pub election_ms: f64,
    /// Kill → first fully-acked post-kill ingest.
    pub unavailability_ms: f64,
    /// The term the cluster converged on (> 0 after a real election).
    pub recovered_term: u64,
    /// The node leading that term.
    pub recovered_leader: u64,
    /// Whether the cluster recovered inside the deadline.
    pub recovered: bool,
    /// The three phases, in order.
    pub phases: Vec<FailoverPhase>,
}

impl FailoverReport {
    /// Whether every oracle-checked answer agreed with the oracle.
    pub fn zero_wrong_answers(&self) -> bool {
        self.phases.iter().all(|p| p.wrong == 0)
    }

    /// Print the human-readable table.
    pub fn print(&self) {
        println!(
            "failover bench: {} streams × {} shards (+1 leader), window {} (real TCP, localhost)",
            self.streams, self.shards, self.window
        );
        println!(
            "leader killed: election {:.0} ms, unavailability {:.0} ms, \
             recovered leader node {} at term {}{}",
            self.election_ms,
            self.unavailability_ms,
            self.recovered_leader,
            self.recovered_term,
            if self.recovered { "" } else { " (TIMED OUT)" }
        );
        let rows: Vec<Vec<String>> = self
            .phases
            .iter()
            .map(|p| {
                vec![
                    p.label.to_string(),
                    p.requests.to_string(),
                    p.answered.to_string(),
                    format!("{:.2}", p.answered_fraction()),
                    format!("{:.0}", p.p50_us),
                    p.wrong.to_string(),
                ]
            })
            .collect();
        report::print_table(
            "availability around the kill",
            &["phase", "reqs", "answered", "fraction", "p50 µs", "wrong"],
            &rows,
        );
    }

    /// Serialize as the `BENCH_failover.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"failover\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"streams\": {},\n", self.streams));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"nodes\": {},\n", self.shards + 1));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str(&format!("  \"election_ms\": {:.2},\n", self.election_ms));
        out.push_str(&format!(
            "  \"unavailability_ms\": {:.2},\n",
            self.unavailability_ms
        ));
        out.push_str(&format!("  \"recovered_term\": {},\n", self.recovered_term));
        out.push_str(&format!(
            "  \"recovered_leader\": {},\n",
            self.recovered_leader
        ));
        out.push_str(&format!("  \"recovered\": {},\n", self.recovered));
        out.push_str(&format!(
            "  \"zero_wrong_answers\": {},\n",
            self.zero_wrong_answers()
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"requests\": {}, \"answered\": {}, \
                 \"answered_fraction\": {:.4}, \"latency_p50_us\": {:.2}, \"wrong\": {}}}{}\n",
                p.label,
                p.requests,
                p.answered,
                p.answered_fraction(),
                p.p50_us,
                p.wrong,
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn row(cfg: &FailoverBenchConfig, r: u64) -> Vec<f64> {
    (0..cfg.streams)
        .map(|i| ((r as usize * 13 + i * 5 + cfg.seed as usize) % 31) as f64 - 15.0)
        .collect()
}

/// Ask one node for its `(node, term, leader)` view; `None` if it is
/// unreachable or answered something else.
fn probe_status(addr: SocketAddr) -> Option<(u64, u64, u64)> {
    let mut c = DaemonClient::connect(addr, Duration::from_millis(300)).ok()?;
    match c.call(&Request::Status).ok()? {
        Response::StatusR {
            node, term, leader, ..
        } => Some((node, term, leader)),
        _ => None,
    }
}

struct PhaseAcc {
    latencies_us: Vec<f64>,
    requests: usize,
    answered: usize,
    wrong: usize,
}

impl PhaseAcc {
    fn new() -> Self {
        PhaseAcc {
            latencies_us: Vec::new(),
            requests: 0,
            answered: 0,
            wrong: 0,
        }
    }

    fn finish(mut self, label: &'static str) -> FailoverPhase {
        self.latencies_us
            .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        FailoverPhase {
            label,
            requests: self.requests,
            answered: self.answered,
            wrong: self.wrong,
            p50_us: percentile(&self.latencies_us, 0.50),
        }
    }
}

/// Drive `count` acked ingests starting at `first_id`, each followed by
/// an oracle-checked point query on a rotating stream.
fn quiesced_phase(
    cfg: &FailoverBenchConfig,
    client: &mut FailoverClient,
    oracle: &mut ShardedStreamSet,
    first_id: u64,
    count: usize,
) -> PhaseAcc {
    let mut acc = PhaseAcc::new();
    for i in 0..count {
        let id = first_id + i as u64;
        let data = row(cfg, id);
        let t0 = Instant::now();
        let resp = client.ingest_acked(id, data.clone(), 8);
        acc.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        acc.requests += 1;
        match resp {
            Ok(Response::IngestOk { failed_shards, .. }) if failed_shards.is_empty() => {
                acc.answered += 1;
                oracle.push_row(&data);
            }
            Ok(_) => {
                // A quiesced cluster that cannot fully ack is wrong for
                // this bench's purposes: the phases bracket an outage,
                // they must not contain one.
                acc.answered += 1;
                acc.wrong += 1;
            }
            Err(_) => {}
        }
        let stream = (i % cfg.streams) as u64;
        let want = oracle
            .tree(stream as usize)
            .point_with(0, QueryOptions::default())
            .ok();
        let t0 = Instant::now();
        let resp = client.call(&Request::Point { stream, index: 0 });
        acc.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        acc.requests += 1;
        match (resp, want) {
            (Ok(Response::PointR { answer }), Some(w)) => {
                acc.answered += 1;
                if answer.value.to_bits() != w.value.to_bits() {
                    acc.wrong += 1;
                }
            }
            (Ok(Response::ErrorR { .. }), None) => acc.answered += 1,
            (Ok(_), _) => {
                acc.answered += 1;
                acc.wrong += 1;
            }
            (Err(_), _) => {}
        }
    }
    acc
}

/// Run the failover bench: spawn the cluster, drive a clean phase, kill
/// the leader, measure the outage, drive a post-recovery phase.
///
/// # Panics
///
/// Panics if the localhost cluster cannot be spawned — a bench without
/// a cluster has nothing to measure.
pub fn run(cfg: &FailoverBenchConfig) -> FailoverReport {
    assert!(cfg.shards >= 2, "failover needs >= 2 shards");
    let config = SwatConfig::with_coefficients(cfg.window, cfg.coeffs).expect("valid config");

    // Two-phase bring-up: bind everything first so every node knows the
    // full peer list before any node starts serving.
    let nodes = cfg.shards + 1;
    let listeners: Vec<_> = (0..nodes)
        .map(|_| bind("127.0.0.1:0".parse().expect("static addr")).expect("binds"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("bound"))
        .collect();
    let mut handles = Vec::new();
    for (id, listener) in listeners.into_iter().enumerate() {
        let role = if id == 0 {
            Role::Leader {
                replicas: Vec::new(),
            }
        } else {
            Role::Replica { shard: id - 1 }
        };
        let mut nc = DaemonConfig::localhost(role, config, cfg.streams, cfg.shards);
        nc.peers = addrs.clone();
        nc.standbys = true;
        nc.io_timeout = Duration::from_millis(200);
        nc.hb_period = Duration::from_millis(50);
        nc.miss_threshold = 2;
        nc.election_timeout = Duration::from_millis(cfg.election_timeout_ms);
        handles.push(Some(spawn_on(listener, nc).expect("node comes up")));
    }

    let mut client = FailoverClient::new(
        addrs.clone(),
        RetryPolicy {
            max_retries: 3,
            timeout: 30,
        },
        Duration::from_millis(500),
    );
    let mut oracle = ShardedStreamSet::new(config, cfg.streams, cfg.shards);

    let before = quiesced_phase(cfg, &mut client, &mut oracle, 0, cfg.rows_before);

    // Kill the leader abruptly: no drain, no goodbye.
    handles[0].take().expect("spawned above").kill();
    let t_kill = Instant::now();
    let deadline = t_kill + Duration::from_millis(cfg.deadline_ms);

    let mut during = PhaseAcc::new();
    let mut election_ms = f64::NAN;
    let mut unavailability_ms = f64::NAN;
    let mut recovered_term = 0u64;
    let mut recovered_leader = 0u64;
    let kill_id = cfg.rows_before as u64;
    let kill_row = row(cfg, kill_id);
    while Instant::now() < deadline {
        // Election probe: has any survivor claimed a term yet?
        if election_ms.is_nan() {
            for &addr in &addrs[1..] {
                during.requests += 1;
                if let Some((node, term, leader)) = probe_status(addr) {
                    during.answered += 1;
                    if term > 0 && leader == node {
                        election_ms = t_kill.elapsed().as_secs_f64() * 1e3;
                        recovered_term = term;
                        recovered_leader = leader;
                        break;
                    }
                }
            }
        }
        // Availability probe: the same write id retried until it fully
        // acks (duplicate-safe, so partial applications converge).
        let t0 = Instant::now();
        let resp = client.ingest_acked(kill_id, kill_row.clone(), 1);
        during.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        during.requests += 1;
        match resp {
            Ok(Response::IngestOk { failed_shards, .. }) if failed_shards.is_empty() => {
                during.answered += 1;
                unavailability_ms = t_kill.elapsed().as_secs_f64() * 1e3;
                oracle.push_row(&kill_row);
                break;
            }
            Ok(_) => during.answered += 1,
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let recovered = !unavailability_ms.is_nan();
    if election_ms.is_nan() {
        // The ack can race ahead of the probe loop; read the final view.
        for &addr in &addrs[1..] {
            if let Some((node, term, leader)) = probe_status(addr) {
                if term > 0 && leader == node {
                    election_ms = t_kill.elapsed().as_secs_f64() * 1e3;
                    recovered_term = term;
                    recovered_leader = leader;
                    break;
                }
            }
        }
    }

    let mut after = if recovered {
        quiesced_phase(cfg, &mut client, &mut oracle, kill_id + 1, cfg.rows_after)
    } else {
        PhaseAcc::new()
    };
    if recovered {
        // Full sweep: every stream's newest point must match the oracle
        // over the acked rows — an acked-then-lost row from a bad
        // standby promotion would surface here.
        for stream in 0..cfg.streams as u64 {
            let want = oracle
                .tree(stream as usize)
                .point_with(0, QueryOptions::default())
                .ok();
            after.requests += 1;
            match (client.call(&Request::Point { stream, index: 0 }), want) {
                (Ok(Response::PointR { answer }), Some(w)) => {
                    after.answered += 1;
                    if answer.value.to_bits() != w.value.to_bits() {
                        after.wrong += 1;
                    }
                }
                (Ok(Response::ErrorR { .. }), None) => after.answered += 1,
                (Ok(_), _) => {
                    after.answered += 1;
                    after.wrong += 1;
                }
                (Err(_), _) => {}
            }
        }
        // And the global top-k must still be exact and complete.
        after.requests += 1;
        match client.call(&Request::TopK { k: 5 }) {
            Ok(Response::TopKR { complete, entries }) => {
                after.answered += 1;
                let (want, _) = oracle.global_top_k(5, 1);
                if !complete || entries != want.entries() {
                    after.wrong += 1;
                }
            }
            Ok(_) => {
                after.answered += 1;
                after.wrong += 1;
            }
            Err(_) => {}
        }
    }

    for h in handles.into_iter().flatten() {
        let _ = h.stop();
    }

    FailoverReport {
        seed: cfg.seed,
        streams: cfg.streams,
        shards: cfg.shards,
        window: cfg.window,
        election_ms,
        unavailability_ms,
        recovered_term,
        recovered_leader,
        recovered,
        phases: vec![
            before.finish("before"),
            during.finish("during"),
            after.finish("after"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_recovers_with_zero_wrong_answers() {
        let report = run(&FailoverBenchConfig::quick(7));
        assert!(report.recovered, "the cluster must re-elect and re-ack");
        assert!(report.recovered_term > 0, "recovery means a new term");
        assert_ne!(report.recovered_leader, 0, "node 0 is dead");
        assert!(report.election_ms.is_finite());
        assert!(report.unavailability_ms.is_finite());
        assert!(report.zero_wrong_answers(), "failover must never be wrong");
        let before = &report.phases[0];
        let after = &report.phases[2];
        assert_eq!(before.wrong, 0);
        assert_eq!(after.wrong, 0);
        assert!(before.answered_fraction() > 0.99, "clean phase answers");
        assert!(after.answered_fraction() > 0.99, "recovered phase answers");
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"failover\""));
        assert!(json.contains("\"zero_wrong_answers\": true"));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
