//! Benchmark harness for the SWAT reproduction.
//!
//! One binary per figure of the paper's evaluation (run with
//! `cargo run --release -p swat-bench --bin <figN>`):
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `fig4`  | Fig 4(a)–(c): error over time, cumulative error, error vs number of levels |
//! | `fig5`  | Fig 5(a)–(f): SWAT vs Histogram error in fixed and random query modes |
//! | `fig6`  | Fig 6(a)–(b): maintenance time and query response time |
//! | `fig9`  | Fig 9(a)–(c): single-client replication message costs |
//! | `fig10` | Fig 10(a)–(b): multi-client replication message costs |
//! | `space` | §2.7/§5.1 space comparisons |
//! | `ablation` | DESIGN.md ablations: k coefficients, enclosure suppression, phase length |
//!
//! The shared experiment engines live here so the binaries stay thin and
//! the integration tests can exercise the same code paths at reduced
//! scale. Criterion micro-benchmarks are under `benches/`.
//!
//! Beyond the figures, [`ingest`] measures ingestion throughput
//! (per-push vs batched vs sharded) and writes the
//! `results/BENCH_ingest.json` regression baseline; it backs the
//! `swat ingest-bench` CLI subcommand. [`query`] measures query-serving
//! throughput (reference vs the zero-allocation engine vs the
//! wavelet-domain kernel, plus parallel multi-stream fan-out) and writes
//! `results/BENCH_query.json`; it backs `swat query-bench`. [`chaos`]
//! sweeps SWAT-ASR under fault injection (drop rate × delay, optional
//! crash windows) and writes `results/BENCH_chaos.json`; it backs
//! `swat chaos`. [`recovery`] measures crash recovery over the
//! `swat-store` durability layer (clean-crash recovery time,
//! fault-injected recovery trials, and the messages a checkpointed
//! restart saves the chaos driver) and writes
//! `results/BENCH_recovery.json`; it backs `swat recovery-bench`.
//! [`repair`] compares the self-healing driver against a static tree
//! under interior crashes (topology × crash-duration grid) and writes
//! `results/BENCH_repair.json`; it backs `swat repair-bench`.
//! [`scale`] sweeps the sharded million-stream tier
//! ([`swat_tree::shard::ShardedStreamSet`]) over stream counts,
//! measuring ingest rows/sec, per-stream fixed memory cost, and the
//! latency of the exact two-round distributed top-k merge, with oracle
//! verification below a stream-count limit; it writes
//! `results/BENCH_scale.json` and backs `swat scale-bench`. [`daemon`]
//! spawns a real-TCP localhost `swatd` cluster (leader + shard
//! replicas), measures request latency (p50/p99) and throughput clean
//! versus with one replica killed mid-run — enforcing zero wrong
//! answers in both phases — and writes `results/BENCH_daemon.json`; it
//! backs `swat daemon-bench`. [`failover`] kills the *leader* of a
//! full failover cluster (term-based elections, epoch-fenced standby
//! promotion) and measures election latency, the unavailability
//! window, and the answered fraction before/during/after — enforcing
//! zero wrong answers over the acked rows; it writes
//! `results/BENCH_failover.json` and backs `swat failover-bench`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod centralized;
pub mod chaos;
pub mod daemon;
pub mod failover;
pub mod ingest;
pub mod query;
pub mod recovery;
pub mod repair;
pub mod report;
pub mod scale;
pub mod store;

/// Default seed used by all figure binaries (override with `SWAT_SEED`).
pub const DEFAULT_SEED: u64 = 20030226; // the paper's date

/// Read an environment override for quick smoke runs: `SWAT_QUICK=1`
/// shrinks every experiment drastically (used by CI-style checks).
pub fn quick_mode() -> bool {
    std::env::var("SWAT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The seed, honoring `SWAT_SEED`.
pub fn seed() -> u64 {
    std::env::var("SWAT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}
