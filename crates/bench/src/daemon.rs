//! The daemon bench: request latency and throughput of a real-TCP
//! localhost `swatd` cluster, clean versus one-replica-killed.
//!
//! One leader and `shards` replicas come up in-process (real
//! `TcpListener`s, real per-connection threads — the exact production
//! path), a client drives an ingest+query workload twice:
//!
//! 1. **clean** — all replicas alive; every answer is checked against
//!    the in-process `ShardedStreamSet` oracle (bit-exact),
//! 2. **degraded** — the last shard's replica is killed abruptly
//!    mid-run; answered queries on surviving shards must stay
//!    bit-exact, everything touching the dead shard must degrade
//!    *explicitly* (`failed_shards` / `Unavailable` / incomplete
//!    top-k), never silently.
//!
//! The report records per-request latency (p50/p99) and throughput for
//! both phases and fails the run on any wrong answer — the robustness
//! claim is "degraded, never wrong", and the bench enforces it on every
//! run. Artifact: `results/BENCH_daemon.json` (schema in
//! EXPERIMENTS.md).

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use swat_daemon::{spawn, DaemonClient, DaemonConfig, Response, Role};
use swat_tree::{QueryOptions, ShardedStreamSet, SwatConfig};

use crate::report;

/// Workload shape for the daemon bench.
#[derive(Debug, Clone)]
pub struct DaemonBenchConfig {
    /// Seed recorded in the artifact (the workload itself is
    /// deterministic).
    pub seed: u64,
    /// Global stream count.
    pub streams: usize,
    /// Shards (= replicas).
    pub shards: usize,
    /// Tree window (power of two).
    pub window: usize,
    /// Coefficients kept per node.
    pub coeffs: usize,
    /// Ingest requests per phase.
    pub rows: usize,
    /// Point queries per phase.
    pub points: usize,
    /// Distributed top-k requests per phase.
    pub topks: usize,
}

impl DaemonBenchConfig {
    /// Smoke-sized run (still real TCP, still oracle-checked).
    pub fn quick(seed: u64) -> Self {
        DaemonBenchConfig {
            seed,
            streams: 8,
            shards: 2,
            window: 16,
            coeffs: 4,
            rows: 48,
            points: 32,
            topks: 4,
        }
    }

    /// Full run.
    pub fn full(seed: u64) -> Self {
        DaemonBenchConfig {
            seed,
            streams: 32,
            shards: 4,
            window: 64,
            coeffs: 4,
            rows: 400,
            points: 300,
            topks: 20,
        }
    }
}

/// Measured outcome of one phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// `"clean"` or `"degraded"`.
    pub label: &'static str,
    /// Requests issued.
    pub requests: usize,
    /// Wall-clock for the whole phase.
    pub elapsed: Duration,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: f64,
    /// Requests per second over the phase.
    pub throughput_rps: f64,
    /// Responses that degraded explicitly (`failed_shards`,
    /// `Unavailable`, incomplete top-k, `Overloaded`).
    pub degraded: usize,
    /// Answers that disagreed with the oracle — must be zero.
    pub wrong: usize,
}

/// The `BENCH_daemon.json` report.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Seed recorded for reproducibility.
    pub seed: u64,
    /// Streams × shards of the measured cluster.
    pub streams: usize,
    /// Shards (= replicas).
    pub shards: usize,
    /// Tree window.
    pub window: usize,
    /// Both phases, clean first.
    pub phases: Vec<PhaseStats>,
}

impl DaemonReport {
    /// Whether every answered request agreed with the oracle.
    pub fn zero_wrong_answers(&self) -> bool {
        self.phases.iter().all(|p| p.wrong == 0)
    }

    /// Print the human-readable table.
    pub fn print(&self) {
        println!(
            "daemon bench: {} streams × {} shards, window {} (real TCP, localhost)",
            self.streams, self.shards, self.window
        );
        let rows: Vec<Vec<String>> = self
            .phases
            .iter()
            .map(|p| {
                vec![
                    p.label.to_string(),
                    p.requests.to_string(),
                    format!("{:.1}ms", p.elapsed.as_secs_f64() * 1e3),
                    format!("{:.0}", p.p50_us),
                    format!("{:.0}", p.p99_us),
                    format!("{:.0}", p.throughput_rps),
                    p.degraded.to_string(),
                    p.wrong.to_string(),
                ]
            })
            .collect();
        report::print_table(
            "request latency and throughput",
            &[
                "phase", "reqs", "elapsed", "p50 µs", "p99 µs", "req/s", "degraded", "wrong",
            ],
            &rows,
        );
    }

    /// Serialize as the `BENCH_daemon.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"daemon\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"streams\": {},\n", self.streams));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str(&format!(
            "  \"zero_wrong_answers\": {},\n",
            self.zero_wrong_answers()
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"requests\": {}, \"elapsed_ns\": {}, \
                 \"latency_p50_us\": {:.2}, \"latency_p99_us\": {:.2}, \
                 \"throughput_rps\": {:.1}, \"degraded\": {}, \"wrong\": {}}}{}\n",
                p.label,
                p.requests,
                p.elapsed.as_nanos(),
                p.p50_us,
                p.p99_us,
                p.throughput_rps,
                p.degraded,
                p.wrong,
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn row(cfg: &DaemonBenchConfig, r: u64) -> Vec<f64> {
    (0..cfg.streams)
        .map(|i| ((r as usize * 13 + i * 5 + cfg.seed as usize) % 31) as f64 - 15.0)
        .collect()
}

struct Phase {
    latencies_us: Vec<f64>,
    elapsed: Duration,
    degraded: usize,
    wrong: usize,
    requests: usize,
}

/// One workload phase: interleaved ingests, points, and top-ks, every
/// answer cross-checked. `killed_shard` is `Some` in the degraded
/// phase; the oracle then only covers surviving shards' streams.
fn drive(
    cfg: &DaemonBenchConfig,
    client: &mut DaemonClient,
    oracle: &mut ShardedStreamSet,
    first_id: u64,
    killed_shard: Option<usize>,
) -> Phase {
    let mut p = Phase {
        latencies_us: Vec::new(),
        elapsed: Duration::ZERO,
        degraded: 0,
        wrong: 0,
        requests: 0,
    };
    let started = Instant::now();
    let call =
        |client: &mut DaemonClient, req: swat_daemon::Request, p: &mut Phase| -> Option<Response> {
            let t0 = Instant::now();
            let resp = client.call(&req).ok();
            p.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
            p.requests += 1;
            resp
        };
    let point_total = cfg.points.max(1);
    let topk_every = (cfg.rows / cfg.topks.max(1)).max(1);
    let mut points_done = 0usize;
    for i in 0..cfg.rows {
        let id = first_id + i as u64;
        let data = row(cfg, id);
        match call(
            client,
            swat_daemon::Request::Ingest {
                req_id: id,
                row: data.clone(),
            },
            &mut p,
        ) {
            Some(Response::IngestOk { failed_shards, .. }) => {
                let allowed = killed_shard.map(|s| vec![s as u32]).unwrap_or_default();
                if failed_shards.is_empty() {
                    oracle.push_row(&data);
                } else if failed_shards == allowed {
                    p.degraded += 1;
                    // Surviving shards applied it; the oracle mirrors
                    // that for the streams we still query.
                    oracle.push_row(&data);
                } else {
                    p.wrong += 1;
                }
            }
            Some(Response::Overloaded) => p.degraded += 1,
            _ => p.wrong += 1,
        }
        // Interleave point queries across streams, skipping the dead
        // shard's streams (those are checked separately as explicit
        // Unavailable).
        while points_done * cfg.rows < point_total * (i + 1) {
            let stream = (points_done % cfg.streams) as u64;
            points_done += 1;
            let owner = swat_tree::shard_of(stream, cfg.shards);
            let want = oracle
                .tree(stream as usize)
                .point_with(0, QueryOptions::default())
                .ok();
            match call(
                client,
                swat_daemon::Request::Point { stream, index: 0 },
                &mut p,
            ) {
                Some(Response::PointR { answer }) => match want {
                    Some(w) if Some(owner) != killed_shard => {
                        if answer.value.to_bits() != w.value.to_bits() {
                            p.wrong += 1;
                        }
                    }
                    // A dead shard returning a value would be either a
                    // stale replica or an invented answer — both wrong.
                    _ => p.wrong += 1,
                },
                Some(Response::Unavailable { .. }) if Some(owner) == killed_shard => {
                    p.degraded += 1;
                }
                Some(Response::ErrorR { .. }) if want.is_none() => {}
                _ => p.wrong += 1,
            }
        }
        if i % topk_every == topk_every - 1 {
            match call(client, swat_daemon::Request::TopK { k: 5 }, &mut p) {
                Some(Response::TopKR { complete, entries }) => {
                    if killed_shard.is_none() {
                        let (want, _) = oracle.global_top_k(5, 1);
                        if !complete || entries != want.entries() {
                            p.wrong += 1;
                        }
                    } else if complete {
                        // A cluster missing a shard must say so.
                        p.wrong += 1;
                    } else {
                        p.degraded += 1;
                    }
                }
                _ => p.wrong += 1,
            }
        }
    }
    p.elapsed = started.elapsed();
    p
}

/// Run the daemon bench: spawn the cluster, drive the clean phase, kill
/// the last shard's replica, drive the degraded phase, tear down.
///
/// # Panics
///
/// Panics if the localhost cluster cannot be spawned or the client
/// cannot connect — a bench without a cluster has nothing to measure.
pub fn run(cfg: &DaemonBenchConfig) -> DaemonReport {
    assert!(cfg.shards >= 2, "the bench kills one of >= 2 shards");
    let config = SwatConfig::with_coefficients(cfg.window, cfg.coeffs).expect("valid config");
    let mut replicas = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..cfg.shards {
        let rc = DaemonConfig::localhost(Role::Replica { shard }, config, cfg.streams, cfg.shards);
        let h = spawn(rc).expect("replica binds");
        addrs.push(h.addr());
        replicas.push(h);
    }
    let mut lc = DaemonConfig::localhost(
        Role::Leader { replicas: addrs },
        config,
        cfg.streams,
        cfg.shards,
    );
    lc.io_timeout = Duration::from_millis(200);
    lc.hb_period = Duration::from_millis(50);
    lc.miss_threshold = 2;
    let leader = spawn(lc).expect("leader binds");
    let mut client =
        DaemonClient::connect(leader.addr(), Duration::from_secs(2)).expect("client connects");

    let mut oracle = ShardedStreamSet::new(config, cfg.streams, cfg.shards);
    let clean = drive(cfg, &mut client, &mut oracle, 0, None);

    // Kill the last shard's replica abruptly: no drain, no goodbye.
    let killed = cfg.shards - 1;
    replicas.pop().expect("spawned above").kill();
    let degraded = drive(cfg, &mut client, &mut oracle, cfg.rows as u64, Some(killed));

    let _ = leader.stop();
    for r in replicas {
        let _ = r.stop();
    }

    let phases = [("clean", clean), ("degraded", degraded)]
        .into_iter()
        .map(|(label, mut p)| {
            p.latencies_us
                .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            PhaseStats {
                label,
                requests: p.requests,
                elapsed: p.elapsed,
                p50_us: percentile(&p.latencies_us, 0.50),
                p99_us: percentile(&p.latencies_us, 0.99),
                throughput_rps: p.requests as f64 / p.elapsed.as_secs_f64().max(1e-9),
                degraded: p.degraded,
                wrong: p.wrong,
            }
        })
        .collect();
    DaemonReport {
        seed: cfg.seed,
        streams: cfg.streams,
        shards: cfg.shards,
        window: cfg.window,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_has_zero_wrong_answers_and_visible_degradation() {
        let report = run(&DaemonBenchConfig::quick(7));
        assert_eq!(report.phases.len(), 2);
        let clean = &report.phases[0];
        let degraded = &report.phases[1];
        assert_eq!(clean.wrong, 0, "clean phase must be exact");
        assert_eq!(clean.degraded, 0, "nothing degrades while all live");
        assert_eq!(degraded.wrong, 0, "degraded phase must never be wrong");
        assert!(
            degraded.degraded > 0,
            "killing a replica must surface explicitly"
        );
        assert!(clean.throughput_rps > 0.0);
        assert!(clean.p50_us <= clean.p99_us);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"daemon\""));
        assert!(json.contains("\"zero_wrong_answers\": true"));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
