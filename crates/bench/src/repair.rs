//! Repair sweep: self-healing versus a static tree under interior
//! crashes.
//!
//! Sweeps a grid of topology shape × crash duration. Each cell crashes
//! one *interior* client (a node with live descendants — the failure
//! that actually partitions a static tree) for a fraction of the
//! measured span, then runs the fault-aware driver twice on the same
//! plan: once static ([`ChaosOptions::heal`]` = None`) and once healed.
//! Reports per-cell answered counts for both, the healing overhead
//! (heartbeats, probes, repairs), and the headline `dominates` flag:
//! the healed run must answer strictly more measured queries than the
//! static one in every cell, at zero correctness violations. Renders as
//! a table (via [`crate::report`]) and as the `results/BENCH_repair.json`
//! artifact (schema documented in EXPERIMENTS.md); backs the
//! `swat repair-bench` CLI subcommand.

use std::time::{SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_net::{FaultPlan, MsgKind, NodeId, Topology};
use swat_replication::harness::WorkloadConfig;
use swat_replication::{run_chaos, ChaosOptions, HealPolicy, SchemeKind};

/// A topology shape in the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// `Topology::chain(n)`.
    Chain(usize),
    /// `Topology::complete_binary(depth)`.
    Binary(usize),
    /// `Topology::random_tree(n, seed)`; the seed comes from the sweep.
    Random(usize),
}

impl TopoSpec {
    /// Stable display/JSON name, e.g. `chain-6`.
    pub fn name(self) -> String {
        match self {
            TopoSpec::Chain(n) => format!("chain-{n}"),
            TopoSpec::Binary(d) => format!("binary-{d}"),
            TopoSpec::Random(n) => format!("random-{n}"),
        }
    }

    /// Build the topology. Random trees re-seed until the tree has an
    /// interior client, so every cell can stage the partition this
    /// bench exists to measure.
    fn build(self, seed: u64) -> Topology {
        match self {
            TopoSpec::Chain(n) => Topology::chain(n),
            TopoSpec::Binary(d) => Topology::complete_binary(d),
            TopoSpec::Random(n) => {
                for bump in 0..64 {
                    let t = Topology::random_tree(n, seed.wrapping_add(bump));
                    if interior_client(&t).is_some() {
                        return t;
                    }
                }
                // A star 64 times in a row is practically impossible for
                // n >= 3; fall back to a chain so the bench still runs.
                Topology::chain(n)
            }
        }
    }
}

/// The deepest interior client: a non-source node that has children, so
/// crashing it orphans a subtree. Ties break toward larger subtrees.
fn interior_client(topo: &Topology) -> Option<NodeId> {
    topo.clients()
        .filter(|&c| !topo.is_leaf(c))
        .max_by_key(|&c| (subtree_size(topo, c), c.index()))
}

fn subtree_size(topo: &Topology, node: NodeId) -> usize {
    1 + topo
        .children(node)
        .iter()
        .map(|&c| subtree_size(topo, c))
        .sum::<usize>()
}

/// The sweep grid.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Topology shapes to sweep.
    pub topos: Vec<TopoSpec>,
    /// Crash durations to sweep, as fractions of the measured span.
    pub crash_fracs: Vec<f64>,
    /// Sliding-window size (power of two).
    pub window: usize,
    /// Simulation horizon in ticks.
    pub horizon: u64,
    /// Warm-up ticks excluded from measurement.
    pub warmup: u64,
    /// Query precision requirement `δ`.
    pub delta: f64,
    /// Master seed (workload, fault, and random-tree randomness all
    /// derive from it).
    pub seed: u64,
    /// Failure-detection parameters for the healed runs.
    pub heal: HealPolicy,
}

impl RepairConfig {
    /// The default full-size grid (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        RepairConfig {
            topos: vec![
                TopoSpec::Chain(6),
                TopoSpec::Binary(3),
                TopoSpec::Random(10),
            ],
            crash_fracs: vec![0.34, 0.67, 1.0],
            window: 32,
            horizon: 4000,
            warmup: 500,
            delta: 20.0,
            seed,
            heal: HealPolicy::default(),
        }
    }

    /// A drastically shrunk grid for smoke tests.
    pub fn quick(seed: u64) -> Self {
        RepairConfig {
            topos: vec![TopoSpec::Chain(4), TopoSpec::Binary(2)],
            crash_fracs: vec![0.5],
            window: 16,
            horizon: 900,
            warmup: 150,
            delta: 20.0,
            seed,
            heal: HealPolicy::default(),
        }
    }

    fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            window: self.window,
            delta: self.delta,
            horizon: self.horizon,
            warmup: self.warmup,
            seed: self.seed,
            ..WorkloadConfig::default()
        }
    }
}

/// One measured (topology, crash fraction) cell: the same crash plan run
/// static and healed.
#[derive(Debug, Clone)]
pub struct RepairCase {
    /// Topology name (`chain-6`, `binary-3`, `random-10`).
    pub topology: String,
    /// Node count including the source.
    pub nodes: usize,
    /// Crashed interior client.
    pub crashed_node: usize,
    /// Fraction of the measured span the node is down.
    pub crash_frac: f64,
    /// Measured queries issued (identical in both runs).
    pub queries: u64,
    /// Measured queries answered by the static run.
    pub static_answered: u64,
    /// Measured queries answered by the healed run.
    pub healed_answered: u64,
    /// Post-warmup messages, static run.
    pub static_messages: u64,
    /// Post-warmup messages, healed run (includes healing overhead).
    pub healed_messages: u64,
    /// Post-warmup heartbeat messages (pings, pongs, repair probes).
    pub heartbeats: u64,
    /// Liveness probes issued during repairs (whole run).
    pub probes: u64,
    /// Re-parenting repairs performed.
    pub repairs: u64,
    /// Post-crash rejoins performed.
    pub rejoins: u64,
    /// Duplicate deliveries suppressed by write-id dedup (healed run).
    pub dup_suppressed: u64,
    /// Correctness violations across both runs (always 0 unless the
    /// driver is buggy).
    pub violations: usize,
}

impl RepairCase {
    /// `static_answered / queries`.
    pub fn static_rate(&self) -> f64 {
        self.static_answered as f64 / self.queries.max(1) as f64
    }

    /// `healed_answered / queries`.
    pub fn healed_rate(&self) -> f64 {
        self.healed_answered as f64 / self.queries.max(1) as f64
    }

    /// The headline: did healing answer strictly more measured queries
    /// than the static tree on the same crash plan?
    pub fn dominates(&self) -> bool {
        self.healed_answered > self.static_answered
    }
}

/// A full sweep: the grid plus every measured cell.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Master seed.
    pub seed: u64,
    /// Simulation horizon per cell.
    pub horizon: u64,
    /// Query precision requirement.
    pub delta: f64,
    /// Failure-detection parameters used by every healed run.
    pub heal: HealPolicy,
    /// Measured cells, in sweep order.
    pub cases: Vec<RepairCase>,
}

impl RepairReport {
    /// Whether every cell's healed run strictly dominated its static
    /// run.
    pub fn all_dominate(&self) -> bool {
        self.cases.iter().all(RepairCase::dominates)
    }
}

/// Run one cell of the sweep.
fn run_cell(cfg: &RepairConfig, spec: TopoSpec, crash_frac: f64) -> RepairCase {
    let topo = spec.build(cfg.seed);
    let data = Dataset::Weather.series(cfg.seed, cfg.horizon as usize + 1);
    let node = interior_client(&topo).unwrap_or(NodeId(topo.len() - 1));
    // The outage starts one-eighth into the measured span and lasts
    // `crash_frac` of three-quarters of it, so even a full-fraction
    // crash ends inside the horizon and the rejoin is observable.
    let span = cfg.horizon - cfg.warmup;
    let from = cfg.warmup + span / 8;
    let len = ((span as f64 * 0.75) * crash_frac).round() as u64;
    let plan = FaultPlan::new(cfg.seed ^ 0x4EFA17)
        .with_crash(node, from, from + len.max(1))
        .expect("crash window is nonempty");
    let static_opts = ChaosOptions {
        plan: plan.clone(),
        check_invariants: true,
        ..ChaosOptions::default()
    };
    let healed_opts = ChaosOptions {
        plan,
        check_invariants: true,
        heal: Some(cfg.heal),
        ..ChaosOptions::default()
    };
    let workload = cfg.workload();
    let static_out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &workload, &static_opts)
        .expect("SWAT-ASR supports every plan");
    let healed_out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &workload, &healed_opts)
        .expect("SWAT-ASR supports every plan");
    RepairCase {
        topology: spec.name(),
        nodes: topo.len(),
        crashed_node: node.index(),
        crash_frac,
        queries: healed_out.run.metrics.counter("queries"),
        static_answered: static_out.net.counter("net.queries_answered"),
        healed_answered: healed_out.net.counter("net.queries_answered"),
        static_messages: static_out.run.ledger.total(),
        healed_messages: healed_out.run.ledger.total(),
        heartbeats: healed_out.run.ledger.count(MsgKind::Heartbeat),
        probes: healed_out.net.counter("net.probes"),
        repairs: healed_out.net.counter("net.repairs"),
        rejoins: healed_out.net.counter("net.rejoins"),
        dup_suppressed: healed_out.net.counter("net.dup_suppressed"),
        violations: static_out.violations.len() + healed_out.violations.len(),
    }
}

/// Measure the whole grid.
pub fn run(cfg: &RepairConfig) -> RepairReport {
    let mut cases = Vec::new();
    for &spec in &cfg.topos {
        for &frac in &cfg.crash_fracs {
            cases.push(run_cell(cfg, spec, frac));
        }
    }
    RepairReport {
        seed: cfg.seed,
        horizon: cfg.horizon,
        delta: cfg.delta,
        heal: cfg.heal,
        cases,
    }
}

impl RepairReport {
    /// Render the cells as a table on stdout.
    pub fn print(&self) {
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.topology.clone(),
                    format!("{:.2}", c.crash_frac),
                    c.queries.to_string(),
                    format!("{:.3}", c.static_rate()),
                    format!("{:.3}", c.healed_rate()),
                    c.heartbeats.to_string(),
                    c.repairs.to_string(),
                    c.rejoins.to_string(),
                    if c.dominates() { "yes" } else { "NO" }.to_owned(),
                    c.violations.to_string(),
                ]
            })
            .collect();
        report::print_table(
            "repair sweep (healed vs static under interior crashes)",
            &[
                "topology", "crash", "queries", "static", "healed", "hb", "repairs", "rejoins",
                "dom", "viol",
            ],
            &rows,
        );
    }

    /// Serialize as the `BENCH_repair.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(256 + 240 * self.cases.len());
        out.push_str("{\n");
        out.push_str("  \"bench\": \"repair\",\n");
        out.push_str("  \"scheme\": \"SWAT-ASR\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"horizon\": {},\n", self.horizon));
        out.push_str(&format!("  \"delta\": {},\n", self.delta));
        out.push_str(&format!(
            "  \"heal\": {{\"period\": {}, \"miss_threshold\": {}}},\n",
            self.heal.period, self.heal.miss_threshold
        ));
        out.push_str(&format!("  \"all_dominate\": {},\n", self.all_dominate()));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"topology\": \"{}\", \"nodes\": {}, \"crashed_node\": {}, \
                 \"crash_frac\": {}, \"queries\": {}, \"static_answered\": {}, \
                 \"healed_answered\": {}, \"static_answer_rate\": {:.4}, \
                 \"healed_answer_rate\": {:.4}, \"static_messages\": {}, \
                 \"healed_messages\": {}, \"heartbeats\": {}, \"probes\": {}, \
                 \"repairs\": {}, \"rejoins\": {}, \"dup_suppressed\": {}, \
                 \"dominates\": {}, \"violations\": {}}}{}\n",
                c.topology,
                c.nodes,
                c.crashed_node,
                c.crash_frac,
                c.queries,
                c.static_answered,
                c.healed_answered,
                c.static_rate(),
                c.healed_rate(),
                c.static_messages,
                c.healed_messages,
                c.heartbeats,
                c.probes,
                c.repairs,
                c.rejoins,
                c.dup_suppressed,
                c.dominates(),
                c.violations,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_heals_every_cell() {
        let cfg = RepairConfig::quick(crate::DEFAULT_SEED);
        let report = run(&cfg);
        assert_eq!(report.cases.len(), cfg.topos.len() * cfg.crash_fracs.len());
        for c in &report.cases {
            assert_eq!(c.violations, 0, "{} frac={}", c.topology, c.crash_frac);
            assert!(c.queries > 0);
            assert!(c.heartbeats > 0, "{}: detection never ran", c.topology);
            assert!(c.repairs > 0, "{}: no repair performed", c.topology);
            assert!(
                c.dominates(),
                "{} frac={}: healed {} must beat static {}",
                c.topology,
                c.crash_frac,
                c.healed_answered,
                c.static_answered
            );
        }
        assert!(report.all_dominate());
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"repair\""));
        assert!(json.contains("\"all_dominate\": true"));
        assert_eq!(json.matches("\"topology\"").count(), report.cases.len());
    }

    #[test]
    fn interior_client_prefers_big_subtrees() {
        let chain = Topology::chain(4);
        assert_eq!(interior_client(&chain), Some(NodeId(1)));
        let star = Topology::from_parents(vec![None, Some(0), Some(0), Some(0)]).unwrap();
        assert_eq!(interior_client(&star), None);
        assert!(interior_client(&TopoSpec::Random(6).build(123)).is_some());
        assert_eq!(TopoSpec::Random(6).name(), "random-6");
    }
}
