//! Recovery bench: crash-consistency cost and the durable-restart win.
//!
//! Three measurements around the `swat-store` durability layer, rendered
//! as a table (via [`crate::report`]) and as the
//! `results/BENCH_recovery.json` artifact (schema documented in
//! EXPERIMENTS.md); backs the `swat recovery-bench` CLI subcommand:
//!
//! 1. **Clean-crash recovery.** A multi-stream store ingests `rows`
//!    rows with periodic checkpoints, crashes (process death after
//!    `sync`), and is recovered; we time
//!    [`swat_store::RecoveryManager::recover`] and require the recovered
//!    [`answers_digest`](swat_tree::StreamSet::answers_digest) to be
//!    bit-identical to the never-crashed store's.
//! 2. **Fault-injected recovery.** Seeded trials corrupt the dead
//!    store's files ([`swat_store::FaultInjector`]: bit flips, torn
//!    writes, deletions) before recovery. Every trial must end in a
//!    verified-consistent prefix (digest equal to the uncrashed store at
//!    that prefix) or a typed error — never a panic, never a wrong
//!    answer.
//! 3. **Recovery messages saved.** The chaos driver's quiet-stream crash
//!    scenario run under both durability models:
//!    [`Durability::Directory`] re-replicates over the network while
//!    [`Durability::Checkpointed`] restores replicas from local durable
//!    state, and the message-ledger difference is the headline win.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_net::{FaultPlan as NetFaultPlan, MsgKind, NodeId, Topology};
use swat_replication::harness::WorkloadConfig;
use swat_replication::{run_chaos, ChaosOptions, Durability, SchemeKind};
use swat_store::{DurableStore, FaultInjector, RecoveryManager};
use swat_tree::{StreamSet, SwatConfig};

/// The experiment shape.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Sliding-window size (power of two).
    pub window: usize,
    /// Wavelet coefficients kept per summary node.
    pub coeffs: usize,
    /// Synchronized streams per store.
    pub streams: usize,
    /// Rows ingested before the crash.
    pub rows: u64,
    /// Checkpoint cadence in rows.
    pub checkpoint_every: u64,
    /// Fault-injected recovery trials.
    pub fault_trials: u64,
    /// Maximum storage faults injected per trial.
    pub max_faults: usize,
    /// Master seed (data, fault plans, and the chaos workload derive
    /// from it).
    pub seed: u64,
}

impl RecoveryConfig {
    /// The default full-size run (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        RecoveryConfig {
            window: 64,
            coeffs: 2,
            streams: 4,
            rows: 4000,
            checkpoint_every: 256,
            fault_trials: 48,
            max_faults: 4,
            seed,
        }
    }

    /// A drastically shrunk run for smoke tests.
    pub fn quick(seed: u64) -> Self {
        RecoveryConfig {
            window: 16,
            coeffs: 1,
            streams: 2,
            rows: 200,
            checkpoint_every: 64,
            fault_trials: 6,
            max_faults: 3,
            seed,
        }
    }

    fn swat_config(&self) -> SwatConfig {
        SwatConfig::with_coefficients(self.window, self.coeffs)
            .expect("bench windows are powers of two")
    }
}

/// The clean-crash measurement.
#[derive(Debug, Clone)]
pub struct CleanRecovery {
    /// Wall-clock time of [`RecoveryManager::recover`], in microseconds.
    pub recovery_micros: u64,
    /// WAL rows replayed on top of the base checkpoint.
    pub wal_rows_replayed: u64,
    /// Arrival clock of the base checkpoint used.
    pub checkpoint_t: Option<u64>,
    /// Recovered digest equals the never-crashed store's digest.
    pub digest_match: bool,
}

/// Aggregate over the fault-injected trials.
#[derive(Debug, Clone)]
pub struct FaultTrials {
    /// Trials run.
    pub trials: u64,
    /// Trials that recovered to a verified-consistent prefix.
    pub consistent: u64,
    /// Trials that failed with a typed [`swat_store::StoreError`].
    pub typed_errors: u64,
    /// Of the consistent trials, how many recovered every acknowledged
    /// row (no prefix loss at all).
    pub lossless: u64,
    /// Mean recovery time over successful trials, in microseconds.
    pub mean_recovery_micros: f64,
    /// Slowest successful recovery, in microseconds.
    pub max_recovery_micros: u64,
}

/// The Directory-vs-Checkpointed chaos comparison.
#[derive(Debug, Clone)]
pub struct DurabilityComparison {
    /// Total post-warmup messages under [`Durability::Directory`].
    pub directory_messages: u64,
    /// Total post-warmup messages under [`Durability::Checkpointed`].
    pub checkpointed_messages: u64,
    /// `directory_messages - checkpointed_messages`.
    pub messages_saved: u64,
    /// QueryForward + Answer messages saved by local restoration.
    pub query_messages_saved: u64,
    /// Soundness violations across both runs (must be zero).
    pub violations: usize,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct RecoveryBenchReport {
    /// The configuration measured.
    pub config: RecoveryConfig,
    /// Clean-crash recovery measurement.
    pub clean: CleanRecovery,
    /// Fault-injected trial aggregate.
    pub faults: FaultTrials,
    /// Chaos-driver durability comparison.
    pub chaos: DurabilityComparison,
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "swat-recovery-bench-{}-{}-{}",
        std::process::id(),
        label,
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Per-stream data columns for the store experiments.
fn columns(cfg: &RecoveryConfig) -> Vec<Vec<f64>> {
    (0..cfg.streams)
        .map(|s| Dataset::Weather.series(cfg.seed.wrapping_add(s as u64), cfg.rows as usize))
        .collect()
}

/// Build the store in `dir`, crash it after `sync`, and return the
/// uncrashed twin's digest at every row prefix (`digests[i]` = digest
/// after `i` rows).
fn build_and_crash(cfg: &RecoveryConfig, dir: &Path, data: &[Vec<f64>]) -> Vec<u64> {
    let mut store = DurableStore::create(dir, cfg.swat_config(), cfg.streams)
        .expect("scratch directory is writable");
    let mut twin = StreamSet::new(cfg.swat_config(), cfg.streams);
    let mut digests = Vec::with_capacity(cfg.rows as usize + 1);
    digests.push(twin.answers_digest());
    let mut row = vec![0.0; cfg.streams];
    for i in 0..cfg.rows as usize {
        for (s, col) in data.iter().enumerate() {
            row[s] = col[i];
        }
        store.push_row(&row).expect("bench rows are finite");
        twin.push_row(&row);
        digests.push(twin.answers_digest());
        if (i as u64 + 1).is_multiple_of(cfg.checkpoint_every) {
            store.checkpoint().expect("checkpoint succeeds");
        }
    }
    store.sync().expect("sync succeeds");
    drop(store); // the crash: process death with the WAL synced
    digests
}

/// Snapshot every store file so fault trials can reset cheaply instead
/// of re-running the fsync-heavy build.
fn capture_files(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<(PathBuf, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("store directory exists")
        .map(|e| {
            let path = e.expect("directory entry is readable").path();
            let bytes = std::fs::read(&path).expect("store file is readable");
            (path, bytes)
        })
        .collect();
    files.sort();
    files
}

fn reset_files(dir: &Path, files: &[(PathBuf, Vec<u8>)]) {
    for entry in std::fs::read_dir(dir).expect("store directory exists") {
        std::fs::remove_file(entry.expect("directory entry is readable").path())
            .expect("store file is removable");
    }
    for (path, bytes) in files {
        std::fs::write(path, bytes).expect("store file is writable");
    }
}

fn run_clean(cfg: &RecoveryConfig, dir: &Path, digests: &[u64]) -> CleanRecovery {
    let start = Instant::now();
    let (store, report) = RecoveryManager::recover(dir).expect("uncorrupted store recovers");
    let recovery_micros = start.elapsed().as_micros() as u64;
    assert_eq!(store.arrivals(), cfg.rows, "synced WAL loses nothing");
    CleanRecovery {
        recovery_micros,
        wal_rows_replayed: report.wal_rows_replayed,
        checkpoint_t: report.checkpoint_t,
        digest_match: store.answers_digest() == digests[cfg.rows as usize],
    }
}

fn run_fault_trials(cfg: &RecoveryConfig, dir: &Path, digests: &[u64]) -> FaultTrials {
    let pristine = capture_files(dir);
    let mut injector = FaultInjector::new(cfg.seed ^ 0xFA017);
    let mut out = FaultTrials {
        trials: cfg.fault_trials,
        consistent: 0,
        typed_errors: 0,
        lossless: 0,
        mean_recovery_micros: 0.0,
        max_recovery_micros: 0,
    };
    let mut micros_sum = 0u64;
    for _ in 0..cfg.fault_trials {
        reset_files(dir, &pristine);
        let plan = injector.plan(dir, cfg.max_faults).expect("dir is listable");
        plan.apply(dir).expect("faults apply");
        let start = Instant::now();
        match RecoveryManager::recover(dir) {
            Ok((store, _report)) => {
                let micros = start.elapsed().as_micros() as u64;
                let p = store.arrivals() as usize;
                assert!(
                    p <= cfg.rows as usize && store.answers_digest() == digests[p],
                    "recovered state must be a verified-consistent prefix"
                );
                out.consistent += 1;
                if p == cfg.rows as usize {
                    out.lossless += 1;
                }
                micros_sum += micros;
                out.max_recovery_micros = out.max_recovery_micros.max(micros);
            }
            Err(_typed) => out.typed_errors += 1,
        }
    }
    if out.consistent > 0 {
        out.mean_recovery_micros = micros_sum as f64 / out.consistent as f64;
    }
    out
}

/// The quiet-stream crash scenario: a weather ramp that goes flat before
/// the crash window, so source-side enclosure suppression emits no
/// updates and the crashed node's restored approximations stay fresh —
/// the regime where local durable state replaces network re-replication.
fn run_durability_comparison(cfg: &RecoveryConfig) -> DurabilityComparison {
    let topo = Topology::chain(2);
    let mut data = Dataset::Weather.series(cfg.seed, 300);
    let last = *data.last().expect("series is nonempty");
    data.resize(900, last);
    let workload = WorkloadConfig {
        window: 16,
        horizon: 600,
        warmup: 150,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    };
    let plan = NetFaultPlan::new(cfg.seed ^ 0xD0_7A)
        .with_crash(NodeId(1), 400, 460)
        .expect("crash window is nonempty");
    let run_mode = |durability: Durability| {
        let options = ChaosOptions {
            plan: plan.clone(),
            check_invariants: true,
            durability,
            ..ChaosOptions::default()
        };
        let out = run_chaos(SchemeKind::SwatAsr, &topo, &data, &workload, &options)
            .expect("SWAT-ASR supports crash plans");
        (
            out.run.ledger.total(),
            out.run.ledger.count(MsgKind::QueryForward) + out.run.ledger.count(MsgKind::Answer),
            out.violations.len(),
        )
    };
    let (dir_total, dir_query, dir_viol) = run_mode(Durability::Directory);
    let (ck_total, ck_query, ck_viol) = run_mode(Durability::Checkpointed);
    DurabilityComparison {
        directory_messages: dir_total,
        checkpointed_messages: ck_total,
        messages_saved: dir_total.saturating_sub(ck_total),
        query_messages_saved: dir_query.saturating_sub(ck_query),
        violations: dir_viol + ck_viol,
    }
}

/// Run the whole bench.
pub fn run(cfg: &RecoveryConfig) -> RecoveryBenchReport {
    let dir = scratch_dir("store");
    let data = columns(cfg);
    let digests = build_and_crash(cfg, &dir, &data);
    let clean = run_clean(cfg, &dir, &digests);
    // `run_clean` recovered in place (re-anchoring with a fresh
    // checkpoint); fault trials reset from the pre-recovery files.
    let pre_recovery_dir = scratch_dir("faults");
    std::fs::create_dir_all(&pre_recovery_dir).expect("scratch directory is creatable");
    let rebuilt_digests = build_and_crash(cfg, &pre_recovery_dir, &data);
    assert_eq!(digests, rebuilt_digests, "builds are deterministic");
    let faults = run_fault_trials(cfg, &pre_recovery_dir, &digests);
    let chaos = run_durability_comparison(cfg);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&pre_recovery_dir);
    RecoveryBenchReport {
        config: cfg.clone(),
        clean,
        faults,
        chaos,
    }
}

impl RecoveryBenchReport {
    /// Render the three measurements as tables on stdout.
    pub fn print(&self) {
        report::print_table(
            "clean-crash recovery",
            &[
                "rows",
                "ckpt every",
                "base ckpt",
                "replayed",
                "µs",
                "digest",
            ],
            &[vec![
                self.config.rows.to_string(),
                self.config.checkpoint_every.to_string(),
                self.clean
                    .checkpoint_t
                    .map_or("wal-0".to_owned(), |t| t.to_string()),
                self.clean.wal_rows_replayed.to_string(),
                self.clean.recovery_micros.to_string(),
                if self.clean.digest_match {
                    "match"
                } else {
                    "MISMATCH"
                }
                .to_owned(),
            ]],
        );
        report::print_table(
            "fault-injected recovery trials",
            &[
                "trials",
                "consistent",
                "lossless",
                "typed err",
                "mean µs",
                "max µs",
            ],
            &[vec![
                self.faults.trials.to_string(),
                self.faults.consistent.to_string(),
                self.faults.lossless.to_string(),
                self.faults.typed_errors.to_string(),
                report::fmt(self.faults.mean_recovery_micros),
                self.faults.max_recovery_micros.to_string(),
            ]],
        );
        report::print_table(
            "recovery messages saved (chaos, quiet-stream crash)",
            &["directory", "checkpointed", "saved", "query saved", "viol"],
            &[vec![
                self.chaos.directory_messages.to_string(),
                self.chaos.checkpointed_messages.to_string(),
                self.chaos.messages_saved.to_string(),
                self.chaos.query_messages_saved.to_string(),
                self.chaos.violations.to_string(),
            ]],
        );
    }

    /// Serialize as the `BENCH_recovery.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"recovery\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"window\": {},\n", self.config.window));
        out.push_str(&format!("  \"coeffs\": {},\n", self.config.coeffs));
        out.push_str(&format!("  \"streams\": {},\n", self.config.streams));
        out.push_str(&format!("  \"rows\": {},\n", self.config.rows));
        out.push_str(&format!(
            "  \"checkpoint_every\": {},\n",
            self.config.checkpoint_every
        ));
        out.push_str(&format!(
            "  \"clean\": {{\"recovery_micros\": {}, \"wal_rows_replayed\": {}, \
             \"checkpoint_t\": {}, \"digest_match\": {}}},\n",
            self.clean.recovery_micros,
            self.clean.wal_rows_replayed,
            self.clean
                .checkpoint_t
                .map_or("null".to_owned(), |t| t.to_string()),
            self.clean.digest_match,
        ));
        out.push_str(&format!(
            "  \"faults\": {{\"trials\": {}, \"consistent\": {}, \"lossless\": {}, \
             \"typed_errors\": {}, \"mean_recovery_micros\": {:.1}, \
             \"max_recovery_micros\": {}}},\n",
            self.faults.trials,
            self.faults.consistent,
            self.faults.lossless,
            self.faults.typed_errors,
            self.faults.mean_recovery_micros,
            self.faults.max_recovery_micros,
        ));
        out.push_str(&format!(
            "  \"chaos\": {{\"directory_messages\": {}, \"checkpointed_messages\": {}, \
             \"messages_saved\": {}, \"query_messages_saved\": {}, \"violations\": {}}}\n",
            self.chaos.directory_messages,
            self.chaos.checkpointed_messages,
            self.chaos.messages_saved,
            self.chaos.query_messages_saved,
            self.chaos.violations,
        ));
        out.push_str("}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_consistent_and_saves_messages() {
        let report = run(&RecoveryConfig::quick(7));
        assert!(report.clean.digest_match);
        assert!(report.clean.wal_rows_replayed > 0, "crash lands mid-WAL");
        assert_eq!(
            report.faults.consistent + report.faults.typed_errors,
            report.faults.trials,
            "every trial ends in consistency or a typed error"
        );
        assert_eq!(report.chaos.violations, 0);
        assert!(
            report.chaos.messages_saved > 0,
            "checkpointed durability must save messages in the quiet-stream scenario"
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"recovery\""));
        assert!(json.contains("\"digest_match\": true"));
    }
}
