//! Ingestion throughput harness: per-push vs frozen-reference vs blocked
//! batch vs sharded.
//!
//! Measures the ingestion paths the tree offers — [`SwatTree::push`] per
//! value, the **frozen** pre-block scalar path
//! (`swat_tree::ingest::reference`, the before-side of every speedup
//! claim), the blocked [`SwatTree::push_batch`] cascade (swept across
//! chunk caps), and [`StreamSet::extend_batched`] sharding many streams
//! across scoped threads (swept across stream counts) — over a grid of
//! window sizes and coefficient budgets. Renders the result both as a
//! table (via [`crate::report`]) and as the `results/BENCH_ingest.json`
//! perf-baseline artifact (schema documented in EXPERIMENTS.md), whose
//! summary carries `batch_ge_reference`: whether the blocked path beat
//! the frozen reference at every grid point *in the same run* — the
//! relative assertion `scripts/check.sh` gates on, immune to machine
//! speed. Runs outside criterion so the CLI's `ingest-bench` subcommand
//! and CI can produce the artifact directly; the criterion target in
//! `benches/ingest.rs` reuses the same kernels.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_tree::ingest::reference;
use swat_tree::{multi::StreamSet, IngestScratch, SwatConfig, SwatTree};

/// The measurement grid.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Window sizes to measure (powers of two).
    pub windows: Vec<usize>,
    /// Coefficient budgets to measure.
    pub coefficients: Vec<usize>,
    /// Total values ingested per case (split across streams in sharded
    /// mode, so every case does the same amount of work).
    pub values: usize,
    /// Stream counts for the sharded mode (swept so scaling is measured
    /// with streams >> threads, not at a fixed toy count).
    pub streams: Vec<usize>,
    /// Thread counts for the sharded mode.
    pub threads: Vec<usize>,
    /// Blocked-path chunk caps for the batch mode (0 = the default cap).
    pub chunks: Vec<usize>,
    /// Timed repetitions per case; the fastest is reported.
    pub repetitions: usize,
    /// Seed for the synthetic input data.
    pub seed: u64,
}

impl IngestConfig {
    /// The default full-size grid (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        IngestConfig {
            windows: vec![1024, 16384],
            coefficients: vec![1, 8],
            values: 1 << 20,
            streams: vec![64, 1024],
            threads: vec![1, 2, 4, 8],
            chunks: vec![64, 1024],
            repetitions: 3,
            seed,
        }
    }

    /// A drastically shrunk grid for smoke tests (`SWAT_QUICK` style).
    pub fn quick(seed: u64) -> Self {
        IngestConfig {
            windows: vec![256],
            coefficients: vec![1, 4],
            values: 1 << 14,
            streams: vec![16],
            threads: vec![1, 2],
            chunks: vec![0],
            repetitions: 1,
            seed,
        }
    }
}

/// One measured (mode, window, k, streams, threads, chunk) point.
#[derive(Debug, Clone)]
pub struct IngestCase {
    /// `"push"`, `"reference"`, `"batch"`, or `"sharded"`.
    pub mode: &'static str,
    /// Window size `N`.
    pub window: usize,
    /// Coefficient budget `k`.
    pub k: usize,
    /// Number of streams ingested (1 except in sharded mode).
    pub streams: usize,
    /// Worker threads used (1 except in sharded mode).
    pub threads: usize,
    /// Blocked-path chunk cap (0 where the mode has none / the default).
    pub chunk: usize,
    /// Total values ingested.
    pub values: u64,
    /// Fastest repetition's wall time.
    pub elapsed: Duration,
    /// Throughput, `values / elapsed`.
    pub values_per_sec: f64,
}

/// A full run: the grid plus every measured case.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Seed the input data was generated from.
    pub seed: u64,
    /// Total values ingested per case.
    pub values_per_case: usize,
    /// Measured cases, in measurement order.
    pub cases: Vec<IngestCase>,
}

/// Kernel: per-value `push` ingestion (the production scalar path).
pub fn ingest_per_push(config: SwatConfig, data: &[f64]) -> SwatTree {
    let mut tree = SwatTree::new(config);
    for &v in data {
        tree.push(v);
    }
    tree
}

/// Kernel: the frozen pre-block scalar batch path — the baseline the
/// blocked cascade's speedups are measured against, in the same run.
pub fn ingest_reference(config: SwatConfig, data: &[f64]) -> SwatTree {
    let mut tree = SwatTree::new(config);
    reference::push_batch(&mut tree, data);
    tree
}

/// Kernel: single-tree blocked batched ingestion. `chunk = 0` uses the
/// default chunk cap; anything else sweeps the cascade amortization.
pub fn ingest_batched(config: SwatConfig, data: &[f64], chunk: usize) -> SwatTree {
    let mut tree = SwatTree::new(config);
    if chunk == 0 {
        tree.push_batch(data);
    } else {
        let mut scratch = IngestScratch::with_max_chunk(chunk);
        tree.push_batch_with_scratch(data, &mut scratch);
    }
    tree
}

/// Kernel: multi-stream sharded ingestion.
pub fn ingest_sharded(config: SwatConfig, columns: &[Vec<f64>], threads: usize) -> StreamSet {
    let mut set = StreamSet::new(config, columns.len());
    set.extend_batched(columns, threads);
    set
}

fn time_best<T>(repetitions: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed());
        drop(out);
    }
    best
}

/// Measure the whole grid.
pub fn run(cfg: &IngestConfig) -> IngestReport {
    let data = Dataset::Synthetic.series(cfg.seed, cfg.values);
    // One column set per swept stream count; every sharded case ingests
    // cfg.values total regardless of how they are split.
    let column_sets: Vec<(usize, Vec<Vec<f64>>)> = cfg
        .streams
        .iter()
        .map(|&streams| {
            let per_stream = cfg.values / streams.max(1);
            let columns = (0..streams)
                .map(|s| Dataset::Synthetic.series(cfg.seed.wrapping_add(s as u64), per_stream))
                .collect();
            (streams, columns)
        })
        .collect();
    let mut cases = Vec::new();
    for &window in &cfg.windows {
        for &k in &cfg.coefficients {
            let config =
                SwatConfig::with_coefficients(window, k).expect("bench windows are powers of two");
            let case = |mode, streams, threads, chunk, values: u64, elapsed: Duration| IngestCase {
                mode,
                window,
                k,
                streams,
                threads,
                chunk,
                values,
                elapsed,
                values_per_sec: values as f64 / elapsed.as_secs_f64().max(1e-12),
            };
            let elapsed = time_best(cfg.repetitions, || ingest_per_push(config, &data));
            cases.push(case("push", 1, 1, 0, data.len() as u64, elapsed));
            let elapsed = time_best(cfg.repetitions, || ingest_reference(config, &data));
            cases.push(case("reference", 1, 1, 0, data.len() as u64, elapsed));
            for &chunk in &cfg.chunks {
                let elapsed = time_best(cfg.repetitions, || ingest_batched(config, &data, chunk));
                cases.push(case("batch", 1, 1, chunk, data.len() as u64, elapsed));
            }
            for (streams, columns) in &column_sets {
                let sharded_total: u64 = columns.iter().map(|c| c.len() as u64).sum();
                for &threads in &cfg.threads {
                    let elapsed =
                        time_best(cfg.repetitions, || ingest_sharded(config, columns, threads));
                    cases.push(case(
                        "sharded",
                        *streams,
                        threads,
                        0,
                        sharded_total,
                        elapsed,
                    ));
                }
            }
        }
    }
    IngestReport {
        seed: cfg.seed,
        values_per_case: cfg.values,
        cases,
    }
}

impl IngestReport {
    /// `true` when, at every (window, k) grid point, the best blocked
    /// batch case beat the frozen reference measured in the same run —
    /// the machine-independent assertion the check-script smoke gates on.
    pub fn batch_ge_reference(&self) -> bool {
        self.cases
            .iter()
            .filter(|c| c.mode == "reference")
            .all(|r| {
                self.cases
                    .iter()
                    .filter(|c| c.mode == "batch" && c.window == r.window && c.k == r.k)
                    .any(|b| b.values_per_sec >= r.values_per_sec)
            })
    }

    /// Render the cases as a table on stdout.
    pub fn print(&self) {
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.mode.to_owned(),
                    c.window.to_string(),
                    c.k.to_string(),
                    c.streams.to_string(),
                    c.threads.to_string(),
                    c.chunk.to_string(),
                    c.values.to_string(),
                    report::fmt_duration(c.elapsed),
                    report::fmt(c.values_per_sec),
                ]
            })
            .collect();
        report::print_table(
            "ingestion throughput",
            &[
                "mode", "window", "k", "streams", "threads", "chunk", "values", "time", "values/s",
            ],
            &rows,
        );
        println!(
            "batch >= reference at every grid point: {}",
            self.batch_ge_reference()
        );
    }

    /// Serialize as the `BENCH_ingest.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(256 + 180 * self.cases.len());
        out.push_str("{\n");
        out.push_str("  \"bench\": \"ingest\",\n");
        out.push_str("  \"schema\": 2,\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!(
            "  \"values_per_case\": {},\n",
            self.values_per_case
        ));
        out.push_str(&format!(
            "  \"batch_ge_reference\": {},\n",
            self.batch_ge_reference()
        ));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"window\": {}, \"k\": {}, \"streams\": {}, \
                 \"threads\": {}, \"chunk\": {}, \"values\": {}, \"elapsed_ns\": {}, \
                 \"values_per_sec\": {:.1}}}{}\n",
                c.mode,
                c.window,
                c.k,
                c.streams,
                c.threads,
                c.chunk,
                c.values,
                c.elapsed.as_nanos(),
                c.values_per_sec,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_and_reports() {
        let mut cfg = IngestConfig::quick(7);
        cfg.values = 1 << 10;
        let report = run(&cfg);
        // windows × ks × (push + reference + |chunks| batch
        //                 + |streams| × |threads| sharded)
        assert_eq!(
            report.cases.len(),
            cfg.windows.len()
                * cfg.coefficients.len()
                * (2 + cfg.chunks.len() + cfg.streams.len() * cfg.threads.len())
        );
        for c in &report.cases {
            assert!(c.values > 0);
            assert!(c.values_per_sec > 0.0, "{}: no throughput", c.mode);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"ingest\""));
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"mode\": \"reference\""));
        assert!(json.contains("\"mode\": \"sharded\""));
        assert!(json.contains("\"batch_ge_reference\": "));
        assert_eq!(
            json.matches("\"mode\"").count(),
            report.cases.len(),
            "one JSON object per case"
        );
    }

    #[test]
    fn kernels_agree_on_final_state() {
        let config = SwatConfig::with_coefficients(64, 4).unwrap();
        let data = Dataset::Synthetic.series(3, 500);
        let a = ingest_per_push(config, &data);
        let b = ingest_batched(config, &data, 0);
        let c = ingest_batched(config, &data, 64);
        let r = ingest_reference(config, &data);
        assert_eq!(a.arrivals(), b.arrivals());
        let na: Vec<_> = a.nodes().collect();
        let nb: Vec<_> = b.nodes().collect();
        let nc: Vec<_> = c.nodes().collect();
        let nr: Vec<_> = r.nodes().collect();
        assert_eq!(na, nb);
        assert_eq!(na, nc);
        assert_eq!(na, nr);
        assert_eq!(a.answers_digest(), r.answers_digest());
    }

    #[test]
    fn write_json_creates_directories() {
        let dir = std::env::temp_dir().join("swat-ingest-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = IngestConfig::quick(1);
        cfg.values = 1 << 9;
        cfg.windows = vec![64];
        cfg.coefficients = vec![1];
        cfg.streams = vec![4];
        cfg.threads = vec![1];
        let report = run(&cfg);
        let path = dir.join("nested").join("BENCH_ingest.json");
        report.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("values_per_sec"));
        assert!(text.contains("batch_ge_reference"));
    }
}
