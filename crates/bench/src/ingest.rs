//! Ingestion throughput harness: per-push vs batched vs sharded.
//!
//! Measures the three ingestion paths the tree offers —
//! [`SwatTree::push`] per value, [`SwatTree::push_batch`] over a block,
//! and [`StreamSet::extend_batched`] sharding many streams across scoped
//! threads — over a grid of window sizes and coefficient budgets, and
//! renders the result both as a table (via [`crate::report`]) and as the
//! `results/BENCH_ingest.json` perf-baseline artifact (schema documented
//! in EXPERIMENTS.md). Runs outside criterion so the CLI's `ingest-bench`
//! subcommand and CI can produce the artifact directly; the criterion
//! target in `benches/ingest.rs` reuses the same kernels.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_tree::{multi::StreamSet, SwatConfig, SwatTree};

/// The measurement grid.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Window sizes to measure (powers of two).
    pub windows: Vec<usize>,
    /// Coefficient budgets to measure.
    pub coefficients: Vec<usize>,
    /// Total values ingested per case (split across streams in sharded
    /// mode, so every case does the same amount of work).
    pub values: usize,
    /// Stream count for the sharded mode.
    pub streams: usize,
    /// Thread counts for the sharded mode.
    pub threads: Vec<usize>,
    /// Timed repetitions per case; the fastest is reported.
    pub repetitions: usize,
    /// Seed for the synthetic input data.
    pub seed: u64,
}

impl IngestConfig {
    /// The default full-size grid (a few seconds of wall clock).
    pub fn full(seed: u64) -> Self {
        IngestConfig {
            windows: vec![1024, 16384],
            coefficients: vec![1, 8],
            values: 1 << 20,
            streams: 8,
            threads: vec![1, 2, 4, 8],
            repetitions: 3,
            seed,
        }
    }

    /// A drastically shrunk grid for smoke tests (`SWAT_QUICK` style).
    pub fn quick(seed: u64) -> Self {
        IngestConfig {
            windows: vec![256],
            coefficients: vec![1, 4],
            values: 1 << 14,
            streams: 4,
            threads: vec![1, 2],
            repetitions: 1,
            seed,
        }
    }
}

/// One measured (mode, window, k, streams, threads) point.
#[derive(Debug, Clone)]
pub struct IngestCase {
    /// `"push"`, `"batch"`, or `"sharded"`.
    pub mode: &'static str,
    /// Window size `N`.
    pub window: usize,
    /// Coefficient budget `k`.
    pub k: usize,
    /// Number of streams ingested (1 except in sharded mode).
    pub streams: usize,
    /// Worker threads used (1 except in sharded mode).
    pub threads: usize,
    /// Total values ingested.
    pub values: u64,
    /// Fastest repetition's wall time.
    pub elapsed: Duration,
    /// Throughput, `values / elapsed`.
    pub values_per_sec: f64,
}

/// A full run: the grid plus every measured case.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Seed the input data was generated from.
    pub seed: u64,
    /// Total values ingested per case.
    pub values_per_case: usize,
    /// Measured cases, in measurement order.
    pub cases: Vec<IngestCase>,
}

/// Kernel: per-value `push` ingestion (the baseline path).
pub fn ingest_per_push(config: SwatConfig, data: &[f64]) -> SwatTree {
    let mut tree = SwatTree::new(config);
    for &v in data {
        tree.push(v);
    }
    tree
}

/// Kernel: single-tree batched ingestion.
pub fn ingest_batched(config: SwatConfig, data: &[f64]) -> SwatTree {
    let mut tree = SwatTree::new(config);
    tree.push_batch(data);
    tree
}

/// Kernel: multi-stream sharded ingestion.
pub fn ingest_sharded(config: SwatConfig, columns: &[Vec<f64>], threads: usize) -> StreamSet {
    let mut set = StreamSet::new(config, columns.len());
    set.extend_batched(columns, threads);
    set
}

fn time_best<T>(repetitions: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed());
        drop(out);
    }
    best
}

/// Measure the whole grid.
pub fn run(cfg: &IngestConfig) -> IngestReport {
    let data = Dataset::Synthetic.series(cfg.seed, cfg.values);
    let per_stream = cfg.values / cfg.streams.max(1);
    let columns: Vec<Vec<f64>> = (0..cfg.streams)
        .map(|s| Dataset::Synthetic.series(cfg.seed.wrapping_add(s as u64), per_stream))
        .collect();
    let mut cases = Vec::new();
    for &window in &cfg.windows {
        for &k in &cfg.coefficients {
            let config =
                SwatConfig::with_coefficients(window, k).expect("bench windows are powers of two");
            let case = |mode, streams, threads, values: u64, elapsed: Duration| IngestCase {
                mode,
                window,
                k,
                streams,
                threads,
                values,
                elapsed,
                values_per_sec: values as f64 / elapsed.as_secs_f64().max(1e-12),
            };
            let elapsed = time_best(cfg.repetitions, || ingest_per_push(config, &data));
            cases.push(case("push", 1, 1, data.len() as u64, elapsed));
            let elapsed = time_best(cfg.repetitions, || ingest_batched(config, &data));
            cases.push(case("batch", 1, 1, data.len() as u64, elapsed));
            let sharded_total = (per_stream * cfg.streams) as u64;
            for &threads in &cfg.threads {
                let elapsed = time_best(cfg.repetitions, || {
                    ingest_sharded(config, &columns, threads)
                });
                cases.push(case(
                    "sharded",
                    cfg.streams,
                    threads,
                    sharded_total,
                    elapsed,
                ));
            }
        }
    }
    IngestReport {
        seed: cfg.seed,
        values_per_case: cfg.values,
        cases,
    }
}

impl IngestReport {
    /// Render the cases as a table on stdout.
    pub fn print(&self) {
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.mode.to_owned(),
                    c.window.to_string(),
                    c.k.to_string(),
                    c.streams.to_string(),
                    c.threads.to_string(),
                    c.values.to_string(),
                    report::fmt_duration(c.elapsed),
                    report::fmt(c.values_per_sec),
                ]
            })
            .collect();
        report::print_table(
            "ingestion throughput",
            &[
                "mode", "window", "k", "streams", "threads", "values", "time", "values/s",
            ],
            &rows,
        );
    }

    /// Serialize as the `BENCH_ingest.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(256 + 160 * self.cases.len());
        out.push_str("{\n");
        out.push_str("  \"bench\": \"ingest\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!(
            "  \"values_per_case\": {},\n",
            self.values_per_case
        ));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"window\": {}, \"k\": {}, \"streams\": {}, \
                 \"threads\": {}, \"values\": {}, \"elapsed_ns\": {}, \"values_per_sec\": {:.1}}}{}\n",
                c.mode,
                c.window,
                c.k,
                c.streams,
                c.threads,
                c.values,
                c.elapsed.as_nanos(),
                c.values_per_sec,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_and_reports() {
        let mut cfg = IngestConfig::quick(7);
        cfg.values = 1 << 10;
        let report = run(&cfg);
        // windows × ks × (push + batch + |threads| sharded cases)
        assert_eq!(
            report.cases.len(),
            cfg.windows.len() * cfg.coefficients.len() * (2 + cfg.threads.len())
        );
        for c in &report.cases {
            assert!(c.values > 0);
            assert!(c.values_per_sec > 0.0, "{}: no throughput", c.mode);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"ingest\""));
        assert!(json.contains("\"mode\": \"sharded\""));
        assert_eq!(
            json.matches("\"mode\"").count(),
            report.cases.len(),
            "one JSON object per case"
        );
    }

    #[test]
    fn kernels_agree_on_final_state() {
        let config = SwatConfig::with_coefficients(64, 4).unwrap();
        let data = Dataset::Synthetic.series(3, 500);
        let a = ingest_per_push(config, &data);
        let b = ingest_batched(config, &data);
        assert_eq!(a.arrivals(), b.arrivals());
        let na: Vec<_> = a.nodes().collect();
        let nb: Vec<_> = b.nodes().collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn write_json_creates_directories() {
        let dir = std::env::temp_dir().join("swat-ingest-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = IngestConfig::quick(1);
        cfg.values = 1 << 9;
        cfg.windows = vec![64];
        cfg.coefficients = vec![1];
        cfg.threads = vec![1];
        let report = run(&cfg);
        let path = dir.join("nested").join("BENCH_ingest.json");
        report.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("values_per_sec"));
    }
}
