//! Scale harness: sharded ingest and distributed merge at large stream
//! counts.
//!
//! Sweeps [`ShardedStreamSet`] over a grid of stream counts and thread
//! counts, measuring ingest throughput (rows/sec and values/sec), the
//! per-stream fixed memory cost (`bytes/stream`, the quantity the
//! inline level slab in `swat-tree` exists to shrink), and the latency
//! of the exact two-round distributed top-k merge. Below a configurable
//! stream-count limit every case is also verified against the unsharded
//! [`StreamSet`] oracle: digests must match bit for bit and the
//! distributed top-k must equal the brute-force ranking. Renders a
//! table (via [`crate::report`]) and the `results/BENCH_scale.json`
//! artifact (schema in EXPERIMENTS.md); backs the `swat scale-bench`
//! CLI subcommand.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::report;
use swat_data::Dataset;
use swat_tree::shard::{root_summary, ShardedStreamSet};
use swat_tree::{multi::StreamSet, SwatConfig};
use swat_wavelet::TopCoeff;

/// The measurement grid.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Stream counts to sweep (each is one batch of cases).
    pub stream_counts: Vec<usize>,
    /// Number of hash shards.
    pub shards: usize,
    /// Thread counts for ingest and merge.
    pub threads: Vec<usize>,
    /// Window size `N` (power of two).
    pub window: usize,
    /// Coefficient budget `k`.
    pub k: usize,
    /// Rows ingested per stream (`2 * window` warms every tree).
    pub rows: usize,
    /// Retention bound of the distributed top-k merge.
    pub top_k: usize,
    /// Timed repetitions per case; the fastest is reported.
    pub repetitions: usize,
    /// Verify against the unsharded oracle only up to this stream count
    /// (the oracle doubles memory and time at the top of the sweep).
    pub verify_limit: usize,
    /// Seed for the synthetic input data.
    pub seed: u64,
}

impl ScaleConfig {
    /// The default full-size sweep, reaching 100k streams.
    pub fn full(seed: u64) -> Self {
        ScaleConfig {
            stream_counts: vec![1_000, 10_000, 100_000],
            shards: 16,
            threads: vec![1, 4, 8],
            window: 64,
            k: 4,
            rows: 128,
            top_k: 32,
            repetitions: 2,
            verify_limit: 10_000,
            seed,
        }
    }

    /// A drastically shrunk sweep for smoke tests, oracle-verified
    /// throughout.
    pub fn quick(seed: u64) -> Self {
        ScaleConfig {
            stream_counts: vec![100, 1_000],
            shards: 4,
            threads: vec![1, 2],
            window: 32,
            k: 2,
            rows: 64,
            top_k: 8,
            repetitions: 1,
            verify_limit: usize::MAX,
            seed,
        }
    }
}

/// One measured (streams, threads) point.
#[derive(Debug, Clone)]
pub struct ScaleCase {
    /// Number of streams.
    pub streams: usize,
    /// Number of shards.
    pub shards: usize,
    /// Worker threads used for ingest and merge.
    pub threads: usize,
    /// Rows ingested per stream.
    pub rows: usize,
    /// Total values ingested (`streams * rows`).
    pub values: u64,
    /// Fastest ingest repetition's wall time.
    pub ingest_elapsed: Duration,
    /// Synchronized rows per second (`rows / ingest_elapsed`).
    pub rows_per_sec: f64,
    /// Individual values per second (`values / ingest_elapsed`).
    pub values_per_sec: f64,
    /// Per-stream fixed memory cost after ingest.
    pub bytes_per_stream: usize,
    /// Wall time of one exact distributed top-k merge.
    pub merge_elapsed: Duration,
    /// Round-one candidates the coordinator received.
    pub merge_round1: usize,
    /// Shards rescanned in round two.
    pub merge_refined: usize,
    /// Shards pruned by the threshold τ.
    pub merge_pruned: usize,
    /// Whether this case was checked against the unsharded oracle.
    pub oracle_checked: bool,
    /// Digest + top-k agreement with the oracle (`true` when unchecked
    /// cases are skipped by `verify_limit`).
    pub oracle_agrees: bool,
}

/// A full run: the grid plus every measured case.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Seed the input data was generated from.
    pub seed: u64,
    /// Window size `N`.
    pub window: usize,
    /// Coefficient budget `k`.
    pub k: usize,
    /// Top-k retention bound.
    pub top_k: usize,
    /// Measured cases, in measurement order.
    pub cases: Vec<ScaleCase>,
}

/// Generate the per-stream columns for `streams` streams.
fn make_columns(seed: u64, streams: usize, rows: usize) -> Vec<Vec<f64>> {
    (0..streams)
        .map(|s| Dataset::Synthetic.series(seed.wrapping_add(s as u64), rows))
        .collect()
}

/// Kernel: sharded ingest of every column.
pub fn ingest_sharded(
    config: SwatConfig,
    shards: usize,
    columns: &[Vec<f64>],
    threads: usize,
) -> ShardedStreamSet {
    let mut set = ShardedStreamSet::new(config, columns.len(), shards);
    set.extend_batched(columns, threads);
    set
}

/// Brute-force top-k oracle over the unsharded set's root summaries.
fn brute_force_top_k(set: &StreamSet, k: usize) -> Vec<TopCoeff> {
    let mut all = Vec::new();
    for g in 0..set.streams() {
        if let Some(root) = root_summary(set.tree(g)) {
            for (index, &value) in root.coeffs().coefficients().iter().enumerate() {
                all.push(TopCoeff {
                    stream: g as u64,
                    index: index as u32,
                    value,
                });
            }
        }
    }
    all.sort_by(|a, b| {
        b.weight()
            .partial_cmp(&a.weight())
            .unwrap()
            .then_with(|| (a.stream, a.index).cmp(&(b.stream, b.index)))
    });
    all.truncate(k);
    all
}

fn time_best<T>(repetitions: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
            out = Some(value);
        }
    }
    (best, out.expect("at least one repetition ran"))
}

/// Measure the whole sweep.
pub fn run(cfg: &ScaleConfig) -> ScaleReport {
    let config =
        SwatConfig::with_coefficients(cfg.window, cfg.k).expect("bench windows are powers of two");
    let mut cases = Vec::new();
    for &streams in &cfg.stream_counts {
        let columns = make_columns(cfg.seed, streams, cfg.rows);
        // The oracle (and its digest / top-k) once per stream count.
        let oracle = (streams <= cfg.verify_limit).then(|| {
            let mut set = StreamSet::new(config, streams);
            set.extend_batched(&columns, 1);
            let digest = set.answers_digest();
            let top = brute_force_top_k(&set, cfg.top_k);
            (digest, top)
        });
        for &threads in &cfg.threads {
            let (ingest_elapsed, set) = time_best(cfg.repetitions, || {
                ingest_sharded(config, cfg.shards, &columns, threads)
            });
            let (merge_elapsed, (top, stats)) =
                time_best(cfg.repetitions, || set.global_top_k(cfg.top_k, threads));
            let oracle_checked = oracle.is_some();
            let oracle_agrees = match &oracle {
                None => true,
                Some((digest, want)) => {
                    set.answers_digest() == *digest && top.entries() == &want[..]
                }
            };
            let values = (streams * cfg.rows) as u64;
            let secs = ingest_elapsed.as_secs_f64().max(1e-12);
            cases.push(ScaleCase {
                streams,
                shards: cfg.shards,
                threads,
                rows: cfg.rows,
                values,
                ingest_elapsed,
                rows_per_sec: cfg.rows as f64 / secs,
                values_per_sec: values as f64 / secs,
                bytes_per_stream: set.bytes_per_stream().unwrap_or(0),
                merge_elapsed,
                merge_round1: stats.round1_candidates,
                merge_refined: stats.shards_refined,
                merge_pruned: stats.shards_pruned,
                oracle_checked,
                oracle_agrees,
            });
        }
    }
    ScaleReport {
        seed: cfg.seed,
        window: cfg.window,
        k: cfg.k,
        top_k: cfg.top_k,
        cases,
    }
}

impl ScaleReport {
    /// Whether every oracle-checked case agreed bit for bit.
    pub fn all_agree(&self) -> bool {
        self.cases.iter().all(|c| c.oracle_agrees)
    }

    /// Render the cases as a table on stdout.
    pub fn print(&self) {
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.streams.to_string(),
                    c.shards.to_string(),
                    c.threads.to_string(),
                    c.values.to_string(),
                    report::fmt_duration(c.ingest_elapsed),
                    report::fmt(c.values_per_sec),
                    c.bytes_per_stream.to_string(),
                    report::fmt_duration(c.merge_elapsed),
                    format!("{}/{}", c.merge_pruned, c.merge_pruned + c.merge_refined),
                    if !c.oracle_checked {
                        "skipped".to_owned()
                    } else if c.oracle_agrees {
                        "ok".to_owned()
                    } else {
                        "MISMATCH".to_owned()
                    },
                ]
            })
            .collect();
        report::print_table(
            "sharded scale sweep",
            &[
                "streams", "shards", "threads", "values", "ingest", "values/s", "B/stream",
                "merge", "pruned", "oracle",
            ],
            &rows,
        );
    }

    /// Serialize as the `BENCH_scale.json` artifact (schema in
    /// EXPERIMENTS.md). Hand-rolled: the workspace deliberately has no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut out = String::with_capacity(256 + 220 * self.cases.len());
        out.push_str("{\n");
        out.push_str("  \"bench\": \"scale\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str(&format!("  \"k\": {},\n", self.k));
        out.push_str(&format!("  \"top_k\": {},\n", self.top_k));
        out.push_str(&format!("  \"all_agree\": {},\n", self.all_agree()));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"streams\": {}, \"shards\": {}, \"threads\": {}, \"rows\": {}, \
                 \"values\": {}, \"ingest_elapsed_ns\": {}, \"rows_per_sec\": {:.1}, \
                 \"values_per_sec\": {:.1}, \"bytes_per_stream\": {}, \
                 \"merge_elapsed_ns\": {}, \"merge_round1\": {}, \"merge_refined\": {}, \
                 \"merge_pruned\": {}, \"oracle_checked\": {}, \"oracle_agrees\": {}}}{}\n",
                c.streams,
                c.shards,
                c.threads,
                c.rows,
                c.values,
                c.ingest_elapsed.as_nanos(),
                c.rows_per_sec,
                c.values_per_sec,
                c.bytes_per_stream,
                c.merge_elapsed.as_nanos(),
                c.merge_round1,
                c.merge_refined,
                c.merge_pruned,
                c.oracle_checked,
                c.oracle_agrees,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON artifact, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        let mut cfg = ScaleConfig::quick(7);
        cfg.stream_counts = vec![20, 60];
        cfg.rows = 2 * cfg.window;
        cfg
    }

    #[test]
    fn quick_sweep_runs_verified_and_reports() {
        let cfg = tiny();
        let report = run(&cfg);
        assert_eq!(
            report.cases.len(),
            cfg.stream_counts.len() * cfg.threads.len()
        );
        for c in &report.cases {
            assert!(c.values_per_sec > 0.0);
            assert!(c.bytes_per_stream > 0);
            assert!(c.oracle_checked, "tiny sweeps verify every case");
            assert!(
                c.oracle_agrees,
                "streams={} threads={}",
                c.streams, c.threads
            );
            assert_eq!(c.merge_refined + c.merge_pruned, c.shards);
        }
        assert!(report.all_agree());
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"scale\""));
        assert!(json.contains("\"all_agree\": true"));
        assert_eq!(json.matches("\"streams\"").count(), report.cases.len());
    }

    #[test]
    fn verify_limit_skips_the_oracle() {
        let mut cfg = tiny();
        cfg.stream_counts = vec![30];
        cfg.threads = vec![1];
        cfg.verify_limit = 10;
        let report = run(&cfg);
        assert!(!report.cases[0].oracle_checked);
        assert!(report.cases[0].oracle_agrees, "unchecked cases don't fail");
    }

    #[test]
    fn write_json_creates_directories() {
        let dir = std::env::temp_dir().join("swat-scale-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = tiny();
        cfg.stream_counts = vec![10];
        cfg.threads = vec![1];
        let report = run(&cfg);
        let path = dir.join("nested").join("BENCH_scale.json");
        report.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("bytes_per_stream"));
    }
}
