//! Criterion micro-benchmarks for the ingestion paths: per-value `push`,
//! the frozen pre-block scalar reference, the blocked `push_batch`
//! cascade (per chunk cap), and sharded multi-stream `extend_batched`.
//! The kernels are the same ones the `swat ingest-bench` CLI harness
//! times (see `swat_bench::ingest`), so criterion numbers and the
//! `results/BENCH_ingest.json` artifact stay comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swat_bench::ingest::{ingest_batched, ingest_per_push, ingest_reference, ingest_sharded};
use swat_data::Dataset;
use swat_tree::SwatConfig;

const VALUES: usize = 1 << 14;

fn bench_push_vs_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest/reference_vs_batch");
    g.sample_size(20);
    let data = Dataset::Synthetic.series(1, VALUES);
    g.throughput(Throughput::Elements(data.len() as u64));
    for (n, k) in [(1024usize, 1usize), (1024, 8), (16384, 1), (16384, 8)] {
        let config = SwatConfig::with_coefficients(n, k).expect("valid");
        g.bench_with_input(
            BenchmarkId::new("push", format!("n{n}_k{k}")),
            &config,
            |b, &config| b.iter(|| ingest_per_push(config, black_box(&data))),
        );
        g.bench_with_input(
            BenchmarkId::new("reference", format!("n{n}_k{k}")),
            &config,
            |b, &config| b.iter(|| ingest_reference(config, black_box(&data))),
        );
        g.bench_with_input(
            BenchmarkId::new("batch", format!("n{n}_k{k}")),
            &config,
            |b, &config| b.iter(|| ingest_batched(config, black_box(&data), 0)),
        );
    }
    g.finish();
}

fn bench_chunk_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest/chunk_sweep");
    g.sample_size(20);
    let data = Dataset::Synthetic.series(2, VALUES);
    g.throughput(Throughput::Elements(data.len() as u64));
    let config = SwatConfig::with_coefficients(4096, 8).expect("valid");
    for chunk in [8usize, 64, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| ingest_batched(config, black_box(&data), chunk))
        });
    }
    g.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest/sharded");
    g.sample_size(20);
    let streams = 64usize;
    let per_stream = VALUES / streams;
    let columns: Vec<Vec<f64>> = (0..streams)
        .map(|s| Dataset::Synthetic.series(s as u64, per_stream))
        .collect();
    g.throughput(Throughput::Elements((streams * per_stream) as u64));
    let config = SwatConfig::with_coefficients(1024, 1).expect("valid");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| ingest_sharded(config, black_box(&columns), threads)),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_push_vs_batch,
    bench_chunk_sweep,
    bench_sharded
);
criterion_main!(benches);
