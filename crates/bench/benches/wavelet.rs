//! Criterion micro-benchmarks for the wavelet substrate: transforms and
//! the O(k) coefficient merge powering the tree update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swat_data::Dataset;
use swat_wavelet::{daubechies, haar, HaarCoeffs};

fn bench_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavelet/haar_forward");
    g.sample_size(30);
    for log_n in [8u32, 12, 16] {
        let n = 1usize << log_n;
        let data = Dataset::Synthetic.series(1, n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| black_box(haar::forward(data).expect("power of two")))
        });
    }
    g.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavelet/haar_inverse");
    g.sample_size(30);
    let n = 4096;
    let coeffs = haar::forward(&Dataset::Synthetic.series(2, n)).expect("ok");
    for k in [1usize, 16, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(haar::inverse(&coeffs[..k], n).expect("ok")))
        });
    }
    g.finish();
}

fn bench_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavelet/haar_point");
    g.sample_size(30);
    let n = 4096;
    let coeffs = haar::forward(&Dataset::Synthetic.series(2, n)).expect("ok");
    g.bench_function("single_point", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            idx = (idx * 5 + 1) % n;
            black_box(haar::point(&coeffs, n, idx).expect("ok"))
        })
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavelet/merge");
    g.sample_size(30);
    let data = Dataset::Synthetic.series(3, 2048);
    for k in [1usize, 8, 64] {
        let newer = HaarCoeffs::from_signal(&data[..1024], k).expect("ok");
        let older = HaarCoeffs::from_signal(&data[1024..], k).expect("ok");
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(HaarCoeffs::merge(&newer, &older, k).expect("ok")))
        });
    }
    g.finish();
}

fn bench_daubechies(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavelet/daubechies4");
    g.sample_size(30);
    let data = Dataset::Synthetic.series(4, 4096);
    g.throughput(Throughput::Elements(4096));
    g.bench_function("forward", |b| {
        b.iter(|| black_box(daubechies::forward(&data).expect("ok")))
    });
    g.finish();
}

fn bench_thresholded(c: &mut Criterion) {
    use swat_wavelet::ThresholdedCoeffs;
    let mut g = c.benchmark_group("wavelet/summary_k");
    g.sample_size(20);
    let data = Dataset::Weather.series(7, 1024);
    for k in [16usize, 64] {
        g.bench_with_input(BenchmarkId::new("largest_k", k), &k, |b, &k| {
            b.iter(|| black_box(ThresholdedCoeffs::from_signal(&data, k).expect("ok")))
        });
        g.bench_with_input(BenchmarkId::new("prefix_k", k), &k, |b, &k| {
            b.iter(|| black_box(HaarCoeffs::from_signal(&data, k).expect("ok")))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_inverse,
    bench_point,
    bench_merge,
    bench_daubechies,
    bench_thresholded
);
criterion_main!(benches);
