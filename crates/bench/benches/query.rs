//! Criterion micro-benchmarks for query serving: the frozen reference
//! paths vs the zero-allocation scratch engine vs the wavelet-domain
//! inner-product kernel. The kernels are the same ones the
//! `swat query-bench` CLI harness times (see `swat_bench::query`), so
//! criterion numbers and the `results/BENCH_query.json` artifact stay
//! comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swat_bench::query::{
    build_queries, inners_batched, inners_kernel, inners_reference, points_batched,
    points_reference, ranges_reference, ranges_scratch, QueryConfig,
};
use swat_data::Dataset;
use swat_tree::{QueryScratch, SwatConfig, SwatTree};

fn warm_tree(n: usize, k: usize) -> SwatTree {
    let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).expect("valid"));
    tree.extend(Dataset::Synthetic.series(1, 3 * n));
    tree
}

fn queries(n: usize) -> swat_bench::query::QuerySet {
    let mut cfg = QueryConfig::quick(1);
    cfg.points = 4096;
    cfg.inners = 64;
    cfg.ranges = 16;
    build_queries(&cfg, n)
}

fn bench_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("query/point");
    g.sample_size(20);
    for (n, k) in [(1024usize, 1usize), (1024, 8), (4096, 8)] {
        let tree = warm_tree(n, k);
        let qs = queries(n);
        g.throughput(Throughput::Elements(qs.indices.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("reference", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| points_reference(tree, black_box(&qs.indices))),
        );
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("batched", format!("n{n}_k{k}")),
            &tree,
            |b, tree| {
                b.iter(|| points_batched(tree, black_box(&qs.indices), &mut scratch, &mut out))
            },
        );
    }
    g.finish();
}

fn bench_inner_product(c: &mut Criterion) {
    let mut g = c.benchmark_group("query/inner_product");
    g.sample_size(20);
    for (n, k) in [(1024usize, 8usize), (4096, 8)] {
        let tree = warm_tree(n, k);
        let qs = queries(n);
        g.throughput(Throughput::Elements(qs.inners.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("reference", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| inners_reference(tree, black_box(&qs.inners))),
        );
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("batched", format!("n{n}_k{k}")),
            &tree,
            |b, tree| {
                b.iter(|| inners_batched(tree, black_box(&qs.inners), &mut scratch, &mut out))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("kernel", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| inners_kernel(tree, black_box(&qs.inners), &mut scratch)),
        );
    }
    g.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut g = c.benchmark_group("query/range");
    g.sample_size(20);
    {
        let (n, k) = (1024usize, 8usize);
        let tree = warm_tree(n, k);
        let qs = queries(n);
        g.throughput(Throughput::Elements(qs.ranges.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("reference", format!("n{n}_k{k}")),
            &tree,
            |b, tree| b.iter(|| ranges_reference(tree, black_box(&qs.ranges))),
        );
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("scratch", format!("n{n}_k{k}")),
            &tree,
            |b, tree| {
                b.iter(|| ranges_scratch(tree, black_box(&qs.ranges), &mut scratch, &mut out))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_point, bench_inner_product, bench_range);
criterion_main!(benches);
