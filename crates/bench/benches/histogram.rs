//! Criterion micro-benchmarks for the Guha–Koudas baseline: O(1)
//! maintenance vs expensive query-time construction, across N, B, ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swat_data::Dataset;
use swat_histogram::{approximate_voptimal, HistogramConfig, SlidingHistogram};

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram/push");
    g.sample_size(20);
    let data = Dataset::Synthetic.series(2, 4096);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("N=1024", |b| {
        b.iter_batched(
            || SlidingHistogram::new(HistogramConfig::new(1024, 30, 0.1).expect("valid")),
            |mut h| {
                for &v in &data {
                    h.push(v);
                }
                h
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_build_vs_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram/build_vs_n");
    g.sample_size(10);
    for n in [128usize, 512, 1024] {
        let data = Dataset::Synthetic.series(3, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| black_box(approximate_voptimal(data, 30, 0.1)))
        });
    }
    g.finish();
}

fn bench_build_vs_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram/build_vs_buckets");
    g.sample_size(10);
    let data = Dataset::Synthetic.series(4, 512);
    for b_count in [8usize, 30, 64] {
        g.bench_with_input(
            BenchmarkId::from_parameter(b_count),
            &b_count,
            |b, &b_count| b.iter(|| black_box(approximate_voptimal(&data, b_count, 0.1))),
        );
    }
    g.finish();
}

fn bench_build_vs_epsilon(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram/build_vs_epsilon");
    g.sample_size(10);
    let data = Dataset::Weather.series(5, 512);
    for eps in [1.0f64, 0.1, 0.001] {
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| black_box(approximate_voptimal(&data, 30, eps)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_push,
    bench_build_vs_n,
    bench_build_vs_buckets,
    bench_build_vs_epsilon
);
criterion_main!(benches);
