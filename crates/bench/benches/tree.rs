//! Criterion micro-benchmarks for the SWAT tree: update throughput and
//! query latency across window sizes and query lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swat_data::Dataset;
use swat_tree::{InnerProductQuery, QueryOptions, RangeQuery, SwatConfig, SwatTree};

fn warm_tree(n: usize, k: usize) -> SwatTree {
    let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).expect("valid"));
    tree.extend(Dataset::Synthetic.series(3, 3 * n));
    tree
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/push");
    g.sample_size(20);
    for log_n in [8u32, 10, 14] {
        let n = 1usize << log_n;
        let data = Dataset::Synthetic.series(1, 4096);
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || warm_tree(n, 1),
                |mut tree| {
                    for &v in &data {
                        tree.push(v);
                    }
                    tree
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_push_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/push_vs_k");
    g.sample_size(20);
    let n = 1024;
    let data = Dataset::Synthetic.series(1, 4096);
    for k in [1usize, 4, 16, 64] {
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter_batched(
                || warm_tree(n, k),
                |mut tree| {
                    for &v in &data {
                        tree.push(v);
                    }
                    tree
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/point");
    g.sample_size(30);
    for log_n in [8u32, 10, 14] {
        let n = 1usize << log_n;
        let tree = warm_tree(n, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            let mut idx = 0usize;
            b.iter(|| {
                idx = (idx * 7 + 13) % n;
                black_box(tree.point(idx).expect("warm"))
            })
        });
    }
    g.finish();
}

fn bench_inner_product(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/inner_product");
    g.sample_size(30);
    let n = 1024;
    let tree = warm_tree(n, 1);
    for m in [16usize, 64, 256, 1024] {
        let q = InnerProductQuery::exponential(m, f64::INFINITY);
        g.bench_with_input(BenchmarkId::from_parameter(m), &q, |b, q| {
            b.iter(|| black_box(tree.inner_product(q).expect("warm")))
        });
    }
    g.finish();
}

fn bench_reduced_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/inner_product_min_level");
    g.sample_size(30);
    let n = 1024;
    let tree = warm_tree(n, 1);
    let q = InnerProductQuery::exponential(256, f64::INFINITY);
    for level in [0usize, 3, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            let opts = QueryOptions::at_level(level);
            b.iter(|| black_box(tree.inner_product_with(&q, opts).expect("warm")))
        });
    }
    g.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/range_query");
    g.sample_size(30);
    let n = 1024;
    let tree = warm_tree(n, 1);
    let q = RangeQuery::new(50.0, 5.0, 0, n - 1);
    g.bench_function("full_window", |b| {
        b.iter(|| black_box(tree.range_query(&q).expect("warm")))
    });
    g.finish();
}

fn bench_growing_push(c: &mut Criterion) {
    use swat_tree::GrowingSwat;
    let mut g = c.benchmark_group("tree/growing_push");
    g.sample_size(20);
    let data = Dataset::Synthetic.series(5, 4096);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("k=1", |b| {
        b.iter_batched(
            || {
                let mut t = GrowingSwat::new(1);
                t.extend(Dataset::Synthetic.series(6, 8192));
                t
            },
            |mut t| {
                for &v in &data {
                    t.push(v);
                }
                t
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree/aggregate");
    g.sample_size(30);
    let tree = warm_tree(1024, 1);
    for span in [16usize, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            b.iter(|| black_box(tree.aggregate(0, span - 1).expect("warm")))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_push,
    bench_push_vs_k,
    bench_point,
    bench_inner_product,
    bench_reduced_levels,
    bench_range_query,
    bench_growing_push,
    bench_aggregate
);
criterion_main!(benches);
