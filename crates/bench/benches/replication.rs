//! Criterion micro-benchmarks for the replication schemes: full small
//! simulation runs per scheme, and SWAT-ASR event costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swat_data::Dataset;
use swat_net::{MessageLedger, NodeId, Topology};
use swat_replication::asr::SwatAsr;
use swat_replication::harness::{run, WorkloadConfig};
use swat_replication::{ReplicationScheme, SchemeKind};
use swat_tree::InnerProductQuery;

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig {
        window: 32,
        t_data: 2,
        t_query: 1,
        delta: 20.0,
        horizon: 800,
        warmup: 200,
        ..WorkloadConfig::default()
    }
}

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication/full_run");
    g.sample_size(10);
    let topo = Topology::complete_binary(2);
    let data = Dataset::Weather.series(9, 500);
    let cfg = small_cfg();
    for kind in SchemeKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| black_box(run(kind, &topo, &data, &cfg))),
        );
    }
    g.finish();
}

fn bench_asr_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication/asr_events");
    g.sample_size(20);
    let topo = Topology::complete_binary(3);
    g.bench_function("on_data", |b| {
        let mut asr = SwatAsr::new(topo.clone(), 64);
        let mut ledger = MessageLedger::new();
        let data = Dataset::Weather.series(1, 4096);
        let mut i = 0usize;
        b.iter(|| {
            asr.on_data(i as u64, data[i % data.len()], &mut ledger);
            i += 1;
        })
    });
    g.bench_function("on_query_hit_path", |b| {
        let mut asr = SwatAsr::new(topo.clone(), 64);
        let mut ledger = MessageLedger::new();
        for (i, v) in Dataset::Weather.series(2, 200).into_iter().enumerate() {
            asr.on_data(i as u64, v, &mut ledger);
        }
        let q = InnerProductQuery::linear(8, 1e6);
        // Warm the replication scheme.
        for t in 0..50u64 {
            asr.on_query(t, NodeId(3), &q, &mut ledger);
            if t % 10 == 9 {
                asr.on_phase_end(t, &mut ledger);
            }
        }
        b.iter(|| black_box(asr.on_query(1000, NodeId(3), &q, &mut ledger)))
    });
    g.finish();
}

criterion_group!(benches, bench_full_runs, bench_asr_events);
criterion_main!(benches);
