//! Sharded million-stream ingest with mergeable coefficient summaries.
//!
//! A single [`StreamSet`] keeps one SWAT tree per stream in one flat
//! vector — fine for hundreds of streams, but a deployment summarizing a
//! large network watches *millions*. [`ShardedStreamSet`] partitions the
//! streams across `S` shards by a deterministic hash of the stream id,
//! the layout a distributed deployment would use (each shard is the
//! state one site owns). Three properties are maintained exactly:
//!
//! 1. **Determinism.** Ingest and query results are bit-identical to an
//!    unsharded [`StreamSet`] over the same streams, for *every* shard
//!    count and *every* thread count: each stream's values are applied
//!    by exactly one worker in arrival order, queries fan out over
//!    read-only trees in global stream order, and
//!    [`ShardedStreamSet::answers_digest`] is computed in global stream
//!    order so it equals the oracle's digest verbatim. The
//!    `shard_properties` integration tests pin this against the
//!    single-set oracle for arbitrary shard/thread counts.
//!
//! 2. **Mergeable summaries.** Each shard can produce a
//!    [`TopKSummary`] of the largest-magnitude coefficients among its
//!    streams' root summaries; summaries merge exactly
//!    (`merge(S(A), S(B)) == S(A ∪ B)`, possible because shards own
//!    disjoint streams), so cross-shard top-k never rescans trees it
//!    can prune.
//!
//! 3. **Exact distributed top-k.** [`ShardedStreamSet::global_top_k`]
//!    runs the two-round Jestes–Yi–Li algorithm (arXiv:1110.6649):
//!    round one collects each shard's local top-k and derives the
//!    global pruning threshold τ (the k-th largest candidate weight);
//!    round two refines only the shards whose local threshold reaches
//!    τ — every other shard provably holds no unseen candidate — and
//!    the merged result is *exactly* the global top-k.
//!
//! Per-stream fixed cost is what the shard layer exists to control: the
//! inline level slab in [`crate::tree`] puts a whole tree's node storage
//! in one allocation, and [`ShardedStreamSet::space_bytes`] /
//! [`ShardedStreamSet::bytes_per_stream`] report the resulting
//! footprint (`swat scale-bench` sweeps it to 100k+ streams).

use crate::config::{SwatConfig, TreeError};
use crate::multi::StreamSet;
use crate::node::Summary;
use crate::query::{InnerProductAnswer, InnerProductQuery, PointAnswer, QueryOptions};
use crate::scratch::QueryScratch;
use crate::tree::{digest, NodePos, SwatTree};
use swat_wavelet::{HaarCoeffs, TopCoeff, TopKSummary};

/// Deterministic FNV-1a hash of a stream id — the routing function.
/// Stable across platforms and runs, so a snapshot restored elsewhere
/// routes identically.
fn route_hash(stream: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in stream.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard owning `stream` out of `shards` partitions.
pub fn shard_of(stream: u64, shards: usize) -> usize {
    (route_hash(stream) % shards as u64) as usize
}

/// The global stream ids shard `shard` owns out of `streams` streams
/// hash-partitioned across `shards` — ascending, exactly the membership
/// [`ShardedStreamSet::new`] builds. A distributed deployment uses this
/// to give every site the same routing table without coordination.
pub fn shard_members(streams: usize, shards: usize, shard: usize) -> Vec<usize> {
    (0..streams)
        .filter(|&g| shard_of(g as u64, shards) == shard)
        .collect()
}

/// One partition's round-one message computed from a free-standing
/// [`StreamSet`]: the local top-k summary over the root-summary
/// coefficients of `members[local]` ↦ `set.tree(local)`. Shared by the
/// in-process [`ShardedStreamSet`] and remote shard owners (the daemon's
/// replicas), so both produce bit-identical candidates.
pub fn local_top_k(set: &StreamSet, members: &[usize], k: usize) -> TopKSummary {
    let mut summary = TopKSummary::new(k);
    for_each_root_coeff(set, members, |c| summary.offer(c));
    summary
}

/// Visit every member stream's root-summary coefficients of a
/// free-standing [`StreamSet`] as [`TopCoeff`] candidates, in
/// `(stream, index)` order; `members[local]` is the global id of the
/// stream at local index `local`.
///
/// # Panics
///
/// Panics if `members.len() > set.streams()`.
pub fn for_each_root_coeff(set: &StreamSet, members: &[usize], mut f: impl FnMut(TopCoeff)) {
    for (local, &global) in members.iter().enumerate() {
        let Some(root) = root_summary(set.tree(local)) else {
            continue;
        };
        for (index, &value) in root.coeffs().coefficients().iter().enumerate() {
            f(TopCoeff {
                stream: global as u64,
                index: index as u32,
                value,
            });
        }
    }
}

/// Where a global stream lives: which shard, and at which local index
/// within that shard's [`StreamSet`].
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: u32,
    local: u32,
}

/// One partition: a [`StreamSet`] over the shard's streams plus the
/// global ids of its members (ascending, because construction walks
/// global ids in order — local order therefore refines global order).
#[derive(Debug)]
struct Shard {
    set: StreamSet,
    members: Vec<usize>,
}

impl Shard {
    /// This shard's round-one message: its local top-k summary over the
    /// root-summary coefficients of every member stream.
    fn local_top_k(&self, k: usize) -> TopKSummary {
        local_top_k(&self.set, &self.members, k)
    }

    /// Visit every member stream's root-summary coefficients as
    /// [`TopCoeff`] candidates, in (stream, index) order.
    fn for_each_root_coeff(&self, f: impl FnMut(TopCoeff)) {
        for_each_root_coeff(&self.set, &self.members, f);
    }
}

/// The newest summary at the highest populated level of `tree` — the
/// coarsest description of the whole retained window, and the
/// per-stream candidate source for [`ShardedStreamSet::global_top_k`].
/// `None` until the first level-0 summary exists (fewer than two
/// arrivals).
pub fn root_summary(tree: &SwatTree) -> Option<&Summary> {
    (0..tree.config().levels())
        .rev()
        .find_map(|l| tree.node(l, NodePos::Right))
}

/// Coordinator-side statistics of one [`ShardedStreamSet::global_top_k`]
/// run — the evidence that pruning actually happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Candidates received in round one (≤ shards · k).
    pub round1_candidates: usize,
    /// Shards whose local threshold reached τ and were rescanned.
    pub shards_refined: usize,
    /// Shards proven to hold no unseen candidate ≥ τ.
    pub shards_pruned: usize,
    /// Candidates at or above τ offered during refinement.
    pub round2_candidates: usize,
}

/// A set of synchronized streams partitioned across hash-routed shards.
///
/// See the [module docs](self) for the determinism and exactness
/// contracts. The public surface mirrors [`StreamSet`] — global stream
/// ids everywhere — plus the distributed summaries
/// ([`Self::global_top_k`], [`Self::global_aggregate`]).
#[derive(Debug)]
pub struct ShardedStreamSet {
    config: SwatConfig,
    streams: usize,
    shards: Vec<Shard>,
    routes: Vec<Route>,
}

impl ShardedStreamSet {
    /// `streams` synchronized streams hash-partitioned across `shards`
    /// shards under a shared configuration. `streams == 0` is legal
    /// (every shard holds an empty [`StreamSet`] — the bugfix that made
    /// empty sets a value is what lets shards start empty here).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shards > u32::MAX as usize`.
    pub fn new(config: SwatConfig, streams: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(u32::try_from(shards).is_ok(), "too many shards");
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut routes = Vec::with_capacity(streams);
        for global in 0..streams {
            let shard = shard_of(global as u64, shards);
            routes.push(Route {
                shard: shard as u32,
                local: members[shard].len() as u32,
            });
            members[shard].push(global);
        }
        let shards = members
            .into_iter()
            .map(|members| Shard {
                set: StreamSet::new(config, members.len()),
                members,
            })
            .collect();
        ShardedStreamSet {
            config,
            streams,
            shards,
            routes,
        }
    }

    /// Number of streams (across all shards).
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration shared by every stream's tree.
    pub fn config(&self) -> &SwatConfig {
        &self.config
    }

    /// Stream population of each shard, in shard order — the routing
    /// balance the scale bench reports.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.members.len()).collect()
    }

    /// The tree summarizing global stream `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tree(&self, i: usize) -> &SwatTree {
        let r = self.routes[i];
        self.shards[r.shard as usize].set.tree(r.local as usize)
    }

    /// Feed one synchronized row: `row[i]` goes to global stream `i`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != streams()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.streams, "row arity mismatch");
        // Gather each shard's slice of the row in local order, then let
        // the shard set apply it — the same per-tree entry point the
        // batched path funnels into, so rows and columns cannot diverge.
        for shard in &mut self.shards {
            let local_row: Vec<f64> = shard.members.iter().map(|&g| row[g]).collect();
            shard.set.push_row(&local_row);
        }
    }

    /// Feed a block of synchronized arrivals column-wise: `columns[i]`
    /// is the next batch for global stream `i`, all columns of equal
    /// length. Shards ingest independently — at most `threads` scoped
    /// workers, each owning a contiguous run of shards, each shard
    /// applying its streams sequentially — so the final state is
    /// deterministic and bit-identical to the unsharded [`StreamSet`]
    /// for every shard and thread count.
    ///
    /// # Panics
    ///
    /// Panics if `columns.len() != streams()`, if column lengths
    /// differ, if `threads == 0`, or if any value is non-finite.
    pub fn extend_batched<C: AsRef<[f64]> + Sync>(&mut self, columns: &[C], threads: usize) {
        assert_eq!(columns.len(), self.streams, "column arity mismatch");
        assert!(threads > 0, "need at least one thread");
        let len = columns.first().map(|c| c.as_ref().len()).unwrap_or(0);
        assert!(
            columns.iter().all(|c| c.as_ref().len() == len),
            "columns must have equal lengths"
        );
        let workers = threads.min(self.shards.len());
        let ingest_shard = |shard: &mut Shard| {
            let local_cols: Vec<&[f64]> =
                shard.members.iter().map(|&g| columns[g].as_ref()).collect();
            shard.set.extend_batched(&local_cols, 1);
        };
        if workers <= 1 {
            for shard in &mut self.shards {
                ingest_shard(shard);
            }
            return;
        }
        // Contiguous runs of ceil(shards / workers) shards each; the
        // partition depends only on the shard count and `workers`,
        // never on scheduling, and each stream is touched by exactly
        // one worker.
        let per = self.shards.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for chunk in self.shards.chunks_mut(per) {
                scope.spawn(move || {
                    for shard in chunk {
                        ingest_shard(shard);
                    }
                });
            }
        });
    }

    /// Answer the same block of point queries against every stream,
    /// returning answers in **global stream order**, each bit-identical
    /// to [`SwatTree::point_with`] on that stream's tree for every
    /// shard and thread count.
    ///
    /// # Errors
    ///
    /// As [`StreamSet::point_many`]: the error of the lowest-numbered
    /// (global) failing stream.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn point_many(
        &self,
        indices: &[usize],
        opts: QueryOptions,
        threads: usize,
    ) -> Result<Vec<Vec<PointAnswer>>, TreeError> {
        self.query_fan_out(threads, |tree, scratch, out| {
            tree.point_many(indices, opts, scratch, out)
        })
    }

    /// Answer the same block of inner-product queries against every
    /// stream, in global stream order; determinism contract as
    /// [`Self::point_many`].
    ///
    /// # Errors
    ///
    /// As [`StreamSet::inner_product_many`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn inner_product_many(
        &self,
        queries: &[InnerProductQuery],
        opts: QueryOptions,
        threads: usize,
    ) -> Result<Vec<Vec<InnerProductAnswer>>, TreeError> {
        self.query_fan_out(threads, |tree, scratch, out| {
            tree.inner_product_many(queries, opts, scratch, out)
        })
    }

    /// Query fan-out in global stream order: trees are gathered through
    /// the routing table into their global order, then partitioned into
    /// the same contiguous chunks [`StreamSet::query_fan_out`] uses, so
    /// answers — and the first-error choice — cannot depend on the
    /// shard layout.
    fn query_fan_out<T: Send>(
        &self,
        threads: usize,
        eval: impl Fn(&SwatTree, &mut QueryScratch, &mut Vec<T>) -> Result<(), TreeError> + Sync,
    ) -> Result<Vec<Vec<T>>, TreeError> {
        assert!(threads > 0, "need at least one thread");
        if self.streams == 0 {
            return Ok(Vec::new());
        }
        let trees: Vec<&SwatTree> = (0..self.streams).map(|g| self.tree(g)).collect();
        let workers = threads.min(trees.len());
        let mut results: Vec<Result<Vec<T>, TreeError>> =
            (0..trees.len()).map(|_| Ok(Vec::new())).collect();
        if workers == 1 {
            let mut scratch = QueryScratch::new();
            for (tree, slot) in trees.iter().zip(results.iter_mut()) {
                let mut out = Vec::new();
                *slot = eval(tree, &mut scratch, &mut out).map(|()| out);
            }
        } else {
            let per = trees.len().div_ceil(workers);
            let eval = &eval;
            std::thread::scope(|scope| {
                for (tree_chunk, slot_chunk) in trees.chunks(per).zip(results.chunks_mut(per)) {
                    scope.spawn(move || {
                        let mut scratch = QueryScratch::new();
                        for (tree, slot) in tree_chunk.iter().zip(slot_chunk.iter_mut()) {
                            let mut out = Vec::new();
                            *slot = eval(tree, &mut scratch, &mut out).map(|()| out);
                        }
                    });
                }
            });
        }
        results.into_iter().collect()
    }

    /// Order-sensitive digest over every stream's tree in **global**
    /// stream order — the same words in the same order as
    /// [`StreamSet::answers_digest`], so a sharded set and its
    /// unsharded oracle produce equal digests exactly when every stream
    /// answers every query identically.
    pub fn answers_digest(&self) -> u64 {
        let mut h = digest::mix(digest::SEED, self.streams as u64);
        for g in 0..self.streams {
            h = digest::mix(h, self.tree(g).answers_digest());
        }
        h
    }

    /// The exact global top-k largest-magnitude root-summary
    /// coefficients across all shards, via the two-round Jestes–Yi–Li
    /// algorithm, plus the coordinator's [`MergeStats`].
    ///
    /// Round one gathers each shard's local top-k (computed across at
    /// most `threads` scoped workers) and merges them in shard order;
    /// the merged summary's threshold is the pruning bound τ. Round two
    /// rescans only shards that (a) truncated — sent exactly `k`
    /// candidates — and (b) have a local threshold ≥ τ: any other
    /// shard's unsent candidates sit strictly below τ and cannot enter
    /// the global top-k. Refined shards contribute every candidate with
    /// weight ≥ τ (a superset of their round-one message at or above τ,
    /// so nothing is offered twice); pruned shards contribute their
    /// round-one entries as-is. Exactness: if the round-one merge holds
    /// k candidates, τ is the k-th largest global weight *lower bound*,
    /// and every coefficient outside the final merge is ≤ some shard
    /// threshold < τ ≤ the final k-th weight; if it holds fewer, τ = 0
    /// and every shard is rescanned in full.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `threads == 0`.
    pub fn global_top_k(&self, k: usize, threads: usize) -> (TopKSummary, MergeStats) {
        assert!(k > 0, "top-k needs k >= 1");
        assert!(threads > 0, "need at least one thread");
        // Round 1: local summaries, shard-parallel; merged in shard
        // order (deterministic — merge is also order-insensitive, but
        // fixing the order keeps the digest-style reasoning trivial).
        let locals = self.map_shards(threads, |shard| shard.local_top_k(k));
        let mut merged = TopKSummary::new(k);
        for local in &locals {
            merged.merge(local);
        }
        let tau = merged.threshold();
        let mut stats = MergeStats {
            round1_candidates: locals.iter().map(TopKSummary::len).sum(),
            ..MergeStats::default()
        };
        // Round 2: refine shards that may hide candidates ≥ τ.
        let mut result = TopKSummary::new(k);
        for (shard, local) in self.shards.iter().zip(&locals) {
            let truncated = local.len() == k;
            if truncated && local.threshold() >= tau {
                stats.shards_refined += 1;
                shard.for_each_root_coeff(|c| {
                    if c.weight() >= tau {
                        stats.round2_candidates += 1;
                        result.offer(c);
                    }
                });
            } else {
                stats.shards_pruned += 1;
                for &e in local.entries() {
                    result.offer(e);
                }
            }
        }
        (result, stats)
    }

    /// Coefficient-wise sum of every stream's **full-window** root (the
    /// top-level `R` summary), accumulated in global stream order — by
    /// linearity of the Haar transform this is exactly the truncated
    /// summary of the per-index *sum* of all those streams, without
    /// reconstructing anything. Streams whose window has not filled yet
    /// have no top-level root and are skipped; `None` if no stream
    /// qualifies.
    pub fn global_aggregate(&self) -> Option<HaarCoeffs> {
        let top = self.config.levels() - 1;
        let mut acc: Option<HaarCoeffs> = None;
        for g in 0..self.streams {
            if let Some(s) = self.tree(g).node(top, NodePos::Right) {
                match &mut acc {
                    None => acc = Some(s.coeffs().clone()),
                    Some(a) => a
                        .add_assign(s.coeffs())
                        .expect("top-level roots share the window length"),
                }
            }
        }
        acc
    }

    /// Approximate memory footprint: every tree (header, inline level
    /// slab, coefficient heap), the routing table, and the shard
    /// directory.
    pub fn space_bytes(&self) -> usize {
        let mut total =
            std::mem::size_of::<Self>() + self.routes.capacity() * std::mem::size_of::<Route>();
        for shard in &self.shards {
            total += std::mem::size_of::<Shard>()
                + shard.members.capacity() * std::mem::size_of::<usize>();
            for local in 0..shard.set.streams() {
                total += shard.set.tree(local).space_bytes();
            }
        }
        total
    }

    /// [`Self::space_bytes`] amortized per stream — the fixed cost the
    /// scale bench tracks. `None` when the set is empty.
    pub fn bytes_per_stream(&self) -> Option<usize> {
        (self.streams > 0).then(|| self.space_bytes() / self.streams)
    }

    /// Run `f` over every shard, at most `threads` workers on
    /// contiguous shard runs, collecting results in shard order.
    fn map_shards<T: Send>(&self, threads: usize, f: impl Fn(&Shard) -> T + Sync) -> Vec<T> {
        let workers = threads.min(self.shards.len());
        if workers <= 1 {
            return self.shards.iter().map(f).collect();
        }
        let per = self.shards.len().div_ceil(workers);
        let mut results: Vec<Option<T>> = (0..self.shards.len()).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            for (shard_chunk, slot_chunk) in self.shards.chunks(per).zip(results.chunks_mut(per)) {
                scope.spawn(move || {
                    for (shard, slot) in shard_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(f(shard));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every shard slot is filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, k: usize) -> SwatConfig {
        SwatConfig::with_coefficients(n, k).unwrap()
    }

    /// Per-stream synthetic columns, deterministic in (stream, index).
    fn columns(streams: usize, len: usize) -> Vec<Vec<f64>> {
        (0..streams)
            .map(|s| {
                (0..len)
                    .map(|i| ((i * (2 * s + 3) + 5 * s) % 97) as f64 - 48.0)
                    .collect()
            })
            .collect()
    }

    /// The unsharded oracle over the same columns.
    fn oracle_set(config: SwatConfig, cols: &[Vec<f64>]) -> StreamSet {
        let mut set = StreamSet::new(config, cols.len());
        set.extend_batched(cols, 1);
        set
    }

    #[test]
    fn routing_is_total_and_deterministic() {
        for shards in [1usize, 2, 3, 7, 16] {
            let set = ShardedStreamSet::new(cfg(16, 2), 100, shards);
            assert_eq!(set.shard_sizes().iter().sum::<usize>(), 100);
            for g in 0..100 {
                assert_eq!(
                    shard_of(g as u64, shards),
                    ShardedStreamSet::new(cfg(16, 2), 100, shards).routes[g].shard as usize
                );
            }
        }
    }

    #[test]
    fn ingest_digest_matches_oracle_for_shard_and_thread_grids() {
        let config = cfg(16, 2);
        let cols = columns(23, 40);
        let want = oracle_set(config, &cols).answers_digest();
        for shards in [1usize, 2, 5, 8] {
            for threads in [1usize, 2, 4, 9] {
                let mut set = ShardedStreamSet::new(config, 23, shards);
                set.extend_batched(&cols, threads);
                assert_eq!(
                    set.answers_digest(),
                    want,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn incremental_blocks_match_one_shot() {
        let config = cfg(16, 2);
        let cols = columns(11, 45);
        let mut whole = ShardedStreamSet::new(config, 11, 3);
        whole.extend_batched(&cols, 4);
        let mut blocks = ShardedStreamSet::new(config, 11, 3);
        for start in (0..45).step_by(7) {
            let end = (start + 7).min(45);
            let part: Vec<&[f64]> = cols.iter().map(|c| &c[start..end]).collect();
            blocks.extend_batched(&part, 2);
        }
        assert_eq!(whole.answers_digest(), blocks.answers_digest());
    }

    #[test]
    fn push_row_matches_extend_batched() {
        let config = cfg(16, 2);
        let cols = columns(9, 30);
        let mut batched = ShardedStreamSet::new(config, 9, 4);
        batched.extend_batched(&cols, 3);
        let mut rowed = ShardedStreamSet::new(config, 9, 4);
        for i in 0..30 {
            let row: Vec<f64> = cols.iter().map(|c| c[i]).collect();
            rowed.push_row(&row);
        }
        assert_eq!(batched.answers_digest(), rowed.answers_digest());
    }

    #[test]
    fn queries_match_oracle_for_any_shard_and_thread_count() {
        let config = cfg(32, 4);
        let cols = columns(13, 100);
        let oracle = oracle_set(config, &cols);
        let indices = [0usize, 1, 5, 17, 31];
        let queries = [
            InnerProductQuery::exponential(16, 1e9),
            InnerProductQuery::linear_at(3, 20, 1e9),
        ];
        let pts_ref = oracle
            .point_many(&indices, QueryOptions::default(), 1)
            .unwrap();
        let ips_ref = oracle
            .inner_product_many(&queries, QueryOptions::default(), 1)
            .unwrap();
        for shards in [1usize, 2, 4, 6] {
            let mut set = ShardedStreamSet::new(config, 13, shards);
            set.extend_batched(&cols, 2);
            for threads in [1usize, 2, 5, 16] {
                let pts = set
                    .point_many(&indices, QueryOptions::default(), threads)
                    .unwrap();
                assert_eq!(pts, pts_ref, "points shards={shards} threads={threads}");
                let ips = set
                    .inner_product_many(&queries, QueryOptions::default(), threads)
                    .unwrap();
                assert_eq!(ips, ips_ref, "ips shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_sharded_set_is_a_noop() {
        for shards in [1usize, 4] {
            for threads in [1usize, 3] {
                let mut set = ShardedStreamSet::new(cfg(16, 1), 0, shards);
                let no_columns: [Vec<f64>; 0] = [];
                set.extend_batched(&no_columns, threads);
                set.push_row(&[]);
                assert!(set
                    .point_many(&[0], QueryOptions::default(), threads)
                    .unwrap()
                    .is_empty());
                let (top, stats) = set.global_top_k(3, threads);
                assert!(top.is_empty());
                assert_eq!(stats.round1_candidates, 0);
                assert!(set.global_aggregate().is_none());
                assert!(set.bytes_per_stream().is_none());
                assert_eq!(
                    set.answers_digest(),
                    StreamSet::new(cfg(16, 1), 0).answers_digest()
                );
            }
        }
    }

    /// Brute-force top-k oracle over the same root-summary candidates.
    fn brute_force_top_k(set: &ShardedStreamSet, k: usize) -> Vec<TopCoeff> {
        let mut all = Vec::new();
        for g in 0..set.streams() {
            if let Some(root) = root_summary(set.tree(g)) {
                for (index, &value) in root.coeffs().coefficients().iter().enumerate() {
                    all.push(TopCoeff {
                        stream: g as u64,
                        index: index as u32,
                        value,
                    });
                }
            }
        }
        all.sort_by(|a, b| {
            b.weight()
                .partial_cmp(&a.weight())
                .unwrap()
                .then_with(|| (a.stream, a.index).cmp(&(b.stream, b.index)))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn global_top_k_is_exact_and_prunes() {
        let config = cfg(32, 8);
        let cols = columns(40, 80);
        for shards in [1usize, 3, 8] {
            let mut set = ShardedStreamSet::new(config, 40, shards);
            set.extend_batched(&cols, 4);
            for k in [1usize, 4, 16] {
                let (top, stats) = set.global_top_k(k, 2);
                let want = brute_force_top_k(&set, k);
                assert_eq!(top.entries(), &want[..], "shards={shards} k={k}");
                assert_eq!(
                    stats.shards_refined + stats.shards_pruned,
                    shards,
                    "shards={shards} k={k}"
                );
                assert!(stats.round1_candidates <= shards * k);
            }
            // With many shards and small k, at least one shard must be
            // pruned (its local threshold falls below τ).
            if shards == 8 {
                let (_, stats) = set.global_top_k(2, 2);
                assert!(stats.shards_pruned > 0, "no pruning at shards=8 k=2");
            }
        }
    }

    #[test]
    fn global_top_k_is_thread_and_shard_invariant() {
        let config = cfg(16, 4);
        let cols = columns(30, 50);
        let mut reference: Option<TopKSummary> = None;
        for shards in [1usize, 2, 7] {
            let mut set = ShardedStreamSet::new(config, 30, shards);
            set.extend_batched(&cols, 3);
            for threads in [1usize, 2, 8] {
                let (top, _) = set.global_top_k(5, threads);
                match &reference {
                    None => reference = Some(top),
                    Some(want) => {
                        assert_eq!(&top, want, "shards={shards} threads={threads}")
                    }
                }
            }
        }
    }

    #[test]
    fn global_aggregate_matches_summed_signal() {
        // Linearity end-to-end: aggregate of per-stream roots equals the
        // summary of the summed stream, bit-exact for full budgets.
        let n = 16;
        let streams = 6;
        let config = cfg(n, n);
        let cols = columns(streams, 2 * n); // exactly 2N arrivals: roots fresh
        let mut set = ShardedStreamSet::new(config, streams, 3);
        set.extend_batched(&cols, 2);
        let agg = set.global_aggregate().expect("all streams warm");
        // The summed stream, pushed through one tree.
        let summed: Vec<f64> = (0..2 * n)
            .map(|i| cols.iter().map(|c| c[i]).sum())
            .collect();
        let mut one = SwatTree::new(config);
        one.push_batch(&summed);
        let want = root_summary(&one).unwrap().coeffs();
        assert_eq!(agg.len(), want.len());
        for (a, b) in agg.coefficients().iter().zip(want.coefficients()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn space_accounting_reports_per_stream_cost() {
        let config = cfg(64, 4);
        let mut set = ShardedStreamSet::new(config, 200, 4);
        set.extend_batched(&columns(200, 128), 4);
        let per = set.bytes_per_stream().unwrap();
        // One warm tree is a few hundred bytes at k=4; the fixed cost
        // must stay within the same order of magnitude (no hidden
        // per-stream heap blowup).
        let lone = set.tree(0).space_bytes();
        assert!(per >= lone, "per-stream {per} below lone tree {lone}");
        assert!(per < 8 * lone, "per-stream {per} vs lone tree {lone}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedStreamSet::new(cfg(16, 1), 4, 0);
    }
}
