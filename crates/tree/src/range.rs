//! Closed value intervals `[lo, hi]`.
//!
//! Every SWAT node carries, besides its wavelet coefficients, the exact
//! `[min, max]` range of the raw values it summarizes. Ranges give sound
//! per-answer error bounds for the centralized tree, and they are the
//! "approximations" that the distributed SWAT-ASR scheme caches and
//! replicates (the paper's §3: "a client caches a range `[d_L, d_H]` for
//! value `d`").

use std::fmt;

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueRange {
    lo: f64,
    hi: f64,
}

impl ValueRange {
    /// A new range; ends may be given in either order.
    ///
    /// # Panics
    ///
    /// Panics if either bound is NaN.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(!a.is_nan() && !b.is_nan(), "NaN range bound");
        if a <= b {
            ValueRange { lo: a, hi: b }
        } else {
            ValueRange { lo: b, hi: a }
        }
    }

    /// The degenerate range containing a single point.
    pub fn point(v: f64) -> Self {
        ValueRange::new(v, v)
    }

    /// Exact range of a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "range of empty slice");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            assert!(!v.is_nan(), "NaN value");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        ValueRange { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `hi - lo`: the paper's precision measure for a cached approximation.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The midpoint, used as the representative answer value.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `v` lies inside the range.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether this range fully encloses `other` — the paper's test for
    /// suppressing update propagation ("the old approximation \[30, 40\]
    /// encloses the new approximation \[32, 38\]").
    pub fn encloses(&self, other: &ValueRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Smallest range covering both operands.
    pub fn union(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether the two ranges overlap (share at least a point).
    pub fn intersects(&self, other: &ValueRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// `v` clamped into the range.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.lo, self.hi)
    }

    /// Widen symmetrically by `pad` on each side.
    pub fn padded(&self, pad: f64) -> ValueRange {
        debug_assert!(pad >= 0.0);
        ValueRange {
            lo: self.lo - pad,
            hi: self.hi + pad,
        }
    }
}

impl fmt::Display for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_order() {
        let r = ValueRange::new(5.0, 2.0);
        assert_eq!(r.lo(), 2.0);
        assert_eq!(r.hi(), 5.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.midpoint(), 3.5);
    }

    #[test]
    fn of_slice() {
        let r = ValueRange::of(&[3.0, -1.0, 7.0, 2.0]);
        assert_eq!((r.lo(), r.hi()), (-1.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn of_empty_panics() {
        let _ = ValueRange::of(&[]);
    }

    #[test]
    fn enclosure_semantics_match_paper() {
        // [30, 40] encloses [32, 38] but not [34, 45].
        let old = ValueRange::new(30.0, 40.0);
        assert!(old.encloses(&ValueRange::new(32.0, 38.0)));
        assert!(!old.encloses(&ValueRange::new(34.0, 45.0)));
        assert!(old.encloses(&old), "enclosure is reflexive");
    }

    #[test]
    fn union_and_intersection() {
        let a = ValueRange::new(0.0, 5.0);
        let b = ValueRange::new(3.0, 9.0);
        let c = ValueRange::new(6.0, 7.0);
        assert_eq!(a.union(&b), ValueRange::new(0.0, 9.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
    }

    #[test]
    fn contains_clamp_pad() {
        let r = ValueRange::new(1.0, 2.0);
        assert!(r.contains(1.0) && r.contains(2.0) && r.contains(1.5));
        assert!(!r.contains(0.999) && !r.contains(2.001));
        assert_eq!(r.clamp(0.0), 1.0);
        assert_eq!(r.clamp(3.0), 2.0);
        assert_eq!(r.clamp(1.2), 1.2);
        assert_eq!(r.padded(0.5), ValueRange::new(0.5, 2.5));
    }
}
