//! Tree node contents.
//!
//! A SWAT node's content is a *summary*: the truncated wavelet coefficients
//! of one dyadic block of the stream, the exact `[min, max]` range of that
//! block, and the arrival count at which the block ended (its creation
//! time). Contents are immutable once created — the paper's `R -> S -> L`
//! shifting never recomputes a summary, it only retains the last three
//! generations per level — so a level in this implementation is simply a
//! short queue of summaries and the "shift" is a rotation.
//!
//! # Coverage
//!
//! A summary created at arrival count `s` at level `l` describes the
//! `2^(l+1)` most recent values as of time `s`, i.e. absolute stream
//! positions `[s - 2^(l+1), s - 1]`. In the window indexing of the paper
//! (index 0 = newest) at a later time `t`, it covers indices
//! `[t - s, t - s + 2^(l+1) - 1]`. This reproduces the paper's Figure 2
//! exactly: a fresh `R_l` covers `[0, 2^(l+1)-1]`, the previous generation
//! (`S_l`) covers `[2^l, ...]`, and the one before (`L_l`) covers
//! `[2^(l+1), ...]`.

use crate::range::ValueRange;
use swat_wavelet::HaarCoeffs;

/// Immutable content of one tree node: a summary of one dyadic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    coeffs: HaarCoeffs,
    range: ValueRange,
    created_at: u64,
    level: usize,
}

impl Summary {
    /// Assemble a summary.
    ///
    /// `created_at` is the arrival count right after the newest value of
    /// the block arrived. The coefficient vector's signal length must be
    /// `2^(level+1)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coefficient length disagrees with the
    /// level.
    pub fn new(coeffs: HaarCoeffs, range: ValueRange, created_at: u64, level: usize) -> Self {
        debug_assert_eq!(
            coeffs.len(),
            1usize << (level + 1),
            "summary length must match level"
        );
        Summary {
            coeffs,
            range,
            created_at,
            level,
        }
    }

    /// Tree level of this summary.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of stream values summarized (`2^(level+1)`).
    pub fn width(&self) -> usize {
        self.coeffs.len()
    }

    /// Arrival count at which the summarized block ended.
    pub fn created_at(&self) -> u64 {
        self.created_at
    }

    /// Exact `[min, max]` of the summarized raw values.
    pub fn range(&self) -> &ValueRange {
        &self.range
    }

    /// The stored wavelet coefficients.
    pub fn coeffs(&self) -> &HaarCoeffs {
        &self.coeffs
    }

    /// Consume the summary, yielding its coefficient vector — used by the
    /// ingestion paths to recycle the heap storage of evicted generations.
    pub fn into_coeffs(self) -> HaarCoeffs {
        self.coeffs
    }

    /// Window indices `[start, end]` covered at arrival count `now`
    /// (index 0 = newest value).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now < created_at` (time went backwards).
    pub fn coverage(&self, now: u64) -> (usize, usize) {
        debug_assert!(now >= self.created_at);
        let start = (now - self.created_at) as usize;
        (start, start + self.width() - 1)
    }

    /// Whether this summary covers window index `idx` at arrival count
    /// `now`.
    pub fn covers(&self, now: u64, idx: usize) -> bool {
        let (start, end) = self.coverage(now);
        (start..=end).contains(&idx)
    }

    /// Approximate value for window index `idx` at arrival count `now`,
    /// reconstructed from the truncated coefficients in `O(log width)` and
    /// clamped into the summary's exact range (clamping can only reduce
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if the summary does not cover `idx` at `now`.
    pub fn value_at(&self, now: u64, idx: usize) -> f64 {
        let (start, end) = self.coverage(now);
        assert!(
            (start..=end).contains(&idx),
            "index {idx} outside coverage [{start}, {end}]"
        );
        self.range.clamp(self.coeffs.value_at(idx - start))
    }

    /// Reconstruct the whole approximate block (newest first), clamped into
    /// the summary's range. Element `i` corresponds to window index
    /// `coverage(now).0 + i`.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.coeffs
            .reconstruct()
            .into_iter()
            .map(|v| self.range.clamp(v))
            .collect()
    }

    /// As [`Self::reconstruct`], writing into caller-provided buffers —
    /// the same inverse transform and the same clamp, so the values are
    /// bit-identical, with zero allocation once the buffers have grown to
    /// the block width.
    pub fn reconstruct_clamped_into(&self, out: &mut Vec<f64>, tmp: &mut Vec<f64>) {
        self.coeffs.reconstruct_into(out, tmp);
        for v in out.iter_mut() {
            *v = self.range.clamp(*v);
        }
    }

    /// A sound bound on `|true - approx|` for any single value answered
    /// from this summary: the worst distance from the reconstructed value
    /// to the ends of the exact range.
    pub fn error_bound_at(&self, now: u64, idx: usize) -> f64 {
        let v = self.value_at(now, idx);
        (v - self.range.lo()).max(self.range.hi() - v)
    }

    /// Approximate heap + inline size in bytes (for space accounting).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.coeffs.stored() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(level: usize, created_at: u64, data: &[f64], k: usize) -> Summary {
        Summary::new(
            HaarCoeffs::from_signal(data, k).unwrap(),
            ValueRange::of(data),
            created_at,
            level,
        )
    }

    #[test]
    fn coverage_ages_with_time() {
        // Level 1 summary (width 4) created at t = 8.
        let s = summary(1, 8, &[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(s.coverage(8), (0, 3));
        assert_eq!(s.coverage(9), (1, 4));
        assert_eq!(s.coverage(11), (3, 6));
        assert!(s.covers(8, 0) && s.covers(8, 3));
        assert!(!s.covers(8, 4));
        assert!(s.covers(10, 2) && !s.covers(10, 1));
    }

    #[test]
    fn value_at_tracks_aging() {
        let s = summary(0, 5, &[10.0, 20.0], 2);
        // Fresh: window idx 0 = newest of the block = first element.
        assert_eq!(s.value_at(5, 0), 10.0);
        assert_eq!(s.value_at(5, 1), 20.0);
        // One arrival later the block has aged by one index.
        assert_eq!(s.value_at(6, 1), 10.0);
        assert_eq!(s.value_at(6, 2), 20.0);
    }

    #[test]
    #[should_panic(expected = "outside coverage")]
    fn value_outside_coverage_panics() {
        let s = summary(0, 5, &[10.0, 20.0], 2);
        let _ = s.value_at(6, 0);
    }

    #[test]
    fn truncated_values_stay_in_range() {
        let data = [0.0, 100.0, 0.0, 100.0, 0.0, 100.0, 0.0, 100.0];
        let s = summary(2, 8, &data, 1); // average only: 50
        for (i, &d) in data.iter().enumerate() {
            let v = s.value_at(8, i);
            assert!(s.range().contains(v));
            assert!(s.error_bound_at(8, i) >= (d - v).abs() - 1e-12);
        }
    }

    #[test]
    fn reconstruct_matches_value_at() {
        let data = [3.0, 1.0, 4.0, 1.0];
        let s = summary(1, 4, &data, 2);
        let rec = s.reconstruct();
        for (i, &v) in rec.iter().enumerate() {
            assert_eq!(v, s.value_at(4, i));
        }
    }

    #[test]
    fn space_accounting_scales_with_k() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let s1 = summary(3, 16, &data, 1);
        let s8 = summary(3, 16, &data, 8);
        assert!(s8.space_bytes() > s1.space_bytes());
    }
}
