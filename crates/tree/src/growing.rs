//! Whole-stream summarization: the growing SWAT.
//!
//! The paper (§2.1–2.3): "our techniques are also applicable in a model
//! where the entire stream (and not just the last N values) are of
//! interest … the number of levels of the approximation tree will grow
//! logarithmically with the size of the stream."
//!
//! [`GrowingSwat`] is that variant: no fixed window, levels appear as the
//! stream lengthens (level `l` materializes at arrival `2^(l+1)`), and
//! any index back to the very first value can be queried — recent values
//! precisely, ancient values through ever coarser summaries. Space is
//! `O(k log t)` after `t` arrivals.

use std::collections::VecDeque;

use crate::config::TreeError;
use crate::node::Summary;
use crate::query::PointAnswer;
use crate::range::ValueRange;
use crate::InnerProductAnswer;
use crate::InnerProductQuery;
use swat_wavelet::HaarCoeffs;

/// A SWAT summarizing the *entire* stream at multiple resolutions.
///
/// ```
/// use swat_tree::growing::GrowingSwat;
///
/// let mut s = GrowingSwat::new(1);
/// s.extend((0..10_000).map(|i| (i % 100) as f64));
/// // Index 0 = newest; the whole history is addressable.
/// assert!(s.point(0).is_ok());
/// assert!(s.point(9_000).is_ok());
/// assert!(s.levels() >= 12); // grew logarithmically
/// ```
#[derive(Debug, Clone)]
pub struct GrowingSwat {
    k: usize,
    t: u64,
    last: Option<f64>,
    /// `levels[l]` holds up to three level-`l` summaries, newest first.
    levels: Vec<VecDeque<Summary>>,
}

impl GrowingSwat {
    /// A new growing summary keeping `k` coefficients per node.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "coefficient budget must be positive");
        GrowingSwat {
            k,
            t: 0,
            last: None,
            levels: Vec::new(),
        }
    }

    /// Total arrivals observed.
    pub fn arrivals(&self) -> u64 {
        self.t
    }

    /// Current number of levels (grows as `log t`).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Total summaries retained (`<= 3 levels()`).
    pub fn summary_count(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Feed one value.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "stream values must be finite");
        let prev = self.last.replace(value);
        self.t += 1;
        let Some(prev) = prev else { return };
        if self.levels.is_empty() {
            self.levels.push(VecDeque::with_capacity(3));
        }
        let coeffs = HaarCoeffs::merge(
            &HaarCoeffs::scalar(value),
            &HaarCoeffs::scalar(prev),
            self.k,
        )
        .expect("scalars always merge");
        let summary = Summary::new(coeffs, ValueRange::of(&[value, prev]), self.t, 0);
        push_bounded(&mut self.levels[0], summary);
        let mut l = 1;
        while self.t.is_multiple_of(1u64 << l) {
            if l == self.levels.len() {
                self.levels.push(VecDeque::with_capacity(3));
            }
            let child = &self.levels[l - 1];
            let (Some(right), Some(left)) = (child.front(), child.get(2)) else {
                break;
            };
            debug_assert_eq!(right.created_at(), self.t);
            debug_assert_eq!(left.created_at(), self.t - (1 << l));
            let coeffs = HaarCoeffs::merge(right.coeffs(), left.coeffs(), self.k)
                .expect("sibling blocks have equal widths");
            let range = right.range().union(left.range());
            let summary = Summary::new(coeffs, range, self.t, l);
            push_bounded(&mut self.levels[l], summary);
            l += 1;
        }
        // Drop a trailing level that never materialized.
        if self.levels.last().map(VecDeque::is_empty).unwrap_or(false) {
            self.levels.pop();
        }
    }

    /// Feed a sequence of values.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Iterate all summaries in query order (levels ascending, newest
    /// first within a level).
    pub fn nodes(&self) -> impl Iterator<Item = &Summary> {
        self.levels.iter().flat_map(|lvl| lvl.iter())
    }

    /// Answer a point query for stream index `idx` (0 = newest, `t − 1` =
    /// the very first value).
    ///
    /// # Errors
    ///
    /// [`TreeError::IndexOutOfWindow`] beyond the stream,
    /// [`TreeError::Uncovered`] for the handful of indices no summary
    /// covers while the structure is very young.
    pub fn point(&self, idx: usize) -> Result<PointAnswer, TreeError> {
        if idx as u64 >= self.t {
            return Err(TreeError::IndexOutOfWindow {
                index: idx,
                window: self.t as usize,
            });
        }
        // The newest value is retained raw (it is the update input d_0).
        if idx == 0 {
            if let Some(v) = self.last {
                return Ok(PointAnswer {
                    value: v,
                    error_bound: 0.0,
                    level: 0,
                    extrapolated: false,
                });
            }
        }
        for s in self.nodes() {
            if s.covers(self.t, idx) {
                return Ok(PointAnswer {
                    value: s.value_at(self.t, idx),
                    error_bound: s.error_bound_at(self.t, idx),
                    level: s.level(),
                    extrapolated: false,
                });
            }
        }
        Err(TreeError::Uncovered { index: idx })
    }

    /// Answer an inner-product query over stream indices (greedy cover as
    /// in the windowed tree).
    ///
    /// # Errors
    ///
    /// As [`GrowingSwat::point`].
    pub fn inner_product(
        &self,
        query: &InnerProductQuery,
    ) -> Result<InnerProductAnswer, TreeError> {
        let indices = query.indices();
        for &idx in indices {
            if idx as u64 >= self.t {
                return Err(TreeError::IndexOutOfWindow {
                    index: idx,
                    window: self.t as usize,
                });
            }
        }
        let mut covered = vec![false; indices.len()];
        let mut remaining = indices.len();
        let mut value = 0.0;
        let mut error_bound = 0.0;
        let mut nodes_used = 0;
        for s in self.nodes() {
            if remaining == 0 {
                break;
            }
            let mut used = false;
            for (pos, &idx) in indices.iter().enumerate() {
                if !covered[pos] && s.covers(self.t, idx) {
                    covered[pos] = true;
                    remaining -= 1;
                    used = true;
                    let w = query.weights()[pos];
                    value += w * s.value_at(self.t, idx);
                    error_bound += w.abs() * s.error_bound_at(self.t, idx);
                }
            }
            if used {
                nodes_used += 1;
            }
        }
        if remaining > 0 {
            let first = covered.iter().position(|c| !c).expect("remaining > 0");
            return Err(TreeError::Uncovered {
                index: indices[first],
            });
        }
        Ok(InnerProductAnswer {
            value,
            error_bound,
            meets_precision: error_bound <= query.delta(),
            nodes_used,
            extrapolated: 0,
        })
    }
}

fn push_bounded(level: &mut VecDeque<Summary>, s: Summary) {
    level.push_front(s);
    while level.len() > 3 {
        level.pop_back();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_grow_logarithmically() {
        let mut s = GrowingSwat::new(1);
        let mut last_levels = 0;
        for milestone in [16usize, 64, 256, 1024, 4096] {
            while s.arrivals() < milestone as u64 {
                s.push((s.arrivals() % 13) as f64);
            }
            let levels = s.levels();
            assert!(levels > last_levels, "levels must grow");
            assert!(
                levels <= (milestone as f64).log2() as usize + 1,
                "at t={milestone}: {levels} levels"
            );
            last_levels = levels;
        }
        // Space stays O(log t).
        assert!(s.summary_count() <= 3 * s.levels());
    }

    #[test]
    fn entire_history_is_addressable_once_mature() {
        let values: Vec<f64> = (0..512).map(|i| ((i * 7) % 23) as f64).collect();
        let mut s = GrowingSwat::new(1);
        s.extend(values.iter().copied());
        let mut covered = 0;
        for idx in 0..512usize {
            match s.point(idx) {
                Ok(a) => {
                    covered += 1;
                    let truth = values[511 - idx];
                    assert!(
                        (a.value - truth).abs() <= a.error_bound + 1e-9,
                        "idx {idx}: |{} - {truth}| > {}",
                        a.value,
                        a.error_bound
                    );
                }
                Err(TreeError::Uncovered { .. }) => {}
                Err(e) => panic!("unexpected error at {idx}: {e}"),
            }
        }
        assert!(covered >= 500, "only {covered}/512 indices covered");
        assert!(s.point(512).is_err(), "beyond the stream");
    }

    #[test]
    fn lossless_growing_tree_is_exact_on_covered_indices() {
        let values: Vec<f64> = (0..256).map(|i| ((i * 31) % 101) as f64).collect();
        let mut s = GrowingSwat::new(usize::MAX);
        s.extend(values.iter().copied());
        for idx in 0..256usize {
            if let Ok(a) = s.point(idx) {
                assert!(
                    (a.value - values[255 - idx]).abs() < 1e-9,
                    "idx {idx}: {} vs {}",
                    a.value,
                    values[255 - idx]
                );
            }
        }
    }

    #[test]
    fn older_indices_get_coarser_answers() {
        let mut s = GrowingSwat::new(1);
        s.extend((0..4096).map(|i| (i % 50) as f64));
        let recent = s.point(1).unwrap();
        let ancient = s.point(3500).unwrap();
        assert!(recent.level < ancient.level);
    }

    #[test]
    fn inner_products_over_history() {
        let mut s = GrowingSwat::new(2);
        let values: Vec<f64> = (0..1024).map(|i| 10.0 + ((i % 10) as f64)).collect();
        s.extend(values.iter().copied());
        let q = InnerProductQuery::exponential(16, 1e9);
        let a = s.inner_product(&q).unwrap();
        let newest_first: Vec<f64> = values.iter().rev().copied().collect();
        let exact = q.exact(&newest_first);
        assert!((a.value - exact).abs() <= a.error_bound + 1e-9);
        assert!(a.nodes_used <= 3 * s.levels());
    }

    #[test]
    fn newest_value_is_exact() {
        let mut s = GrowingSwat::new(1);
        s.extend([5.0, 9.0, 2.0]);
        let a = s.point(0).unwrap();
        assert_eq!(a.value, 2.0);
        assert_eq!(a.error_bound, 0.0);
    }

    #[test]
    fn empty_and_tiny_streams() {
        let s = GrowingSwat::new(1);
        assert!(matches!(
            s.point(0),
            Err(TreeError::IndexOutOfWindow { .. })
        ));
        let mut s = GrowingSwat::new(1);
        s.push(7.0);
        assert_eq!(s.point(0).unwrap().value, 7.0);
        assert_eq!(s.summary_count(), 0, "a single value forms no pair yet");
    }
}
