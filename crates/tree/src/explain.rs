//! Query plans: which nodes serve which indices.
//!
//! The paper's §2.4 walks through exactly this for its example query
//! ("We build a set of nodes V that will be used to answer the query …
//! V = {R0, L0, L1, S2}"). [`SwatTree::explain`] exposes that greedy
//! cover as data, for debugging, teaching, and tests: every step lists
//! the chosen node, its current coverage, and the query indices it
//! newly serves.

use crate::config::TreeError;
use crate::query::{InnerProductQuery, QueryOptions};
use crate::tree::{NodePos, SwatTree};
use std::fmt;

/// One selected node in a query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Tree level of the node.
    pub level: usize,
    /// Which slot the node occupies (`R`, `S`, `L`).
    pub pos: NodePos,
    /// Window indices the node currently covers.
    pub coverage: (usize, usize),
    /// The query indices this node newly serves.
    pub serves: Vec<usize>,
}

/// The greedy cover of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Selected nodes, in the paper's traversal order.
    pub steps: Vec<PlanStep>,
    /// Query indices no eligible node covers (nonempty only during
    /// warm-up or reduced-level operation).
    pub uncovered: Vec<usize>,
}

impl QueryPlan {
    /// Number of nodes the plan touches (the answer's `nodes_used`).
    pub fn nodes_used(&self) -> usize {
        self.steps.len()
    }

    /// The node set `V` as the paper writes it, e.g. `{R0, L0, L1, S2}`.
    pub fn node_set(&self) -> String {
        let names: Vec<String> = self
            .steps
            .iter()
            .map(|s| format!("{}{}", s.pos.name(), s.level))
            .collect();
        format!("{{{}}}", names.join(", "))
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(
                f,
                "{}{} covers [{}-{}], serves {:?}",
                step.pos.name(),
                step.level,
                step.coverage.0,
                step.coverage.1,
                step.serves
            )?;
        }
        if !self.uncovered.is_empty() {
            writeln!(f, "uncovered: {:?}", self.uncovered)?;
        }
        write!(f, "V = {}", self.node_set())
    }
}

impl SwatTree {
    /// The greedy cover the tree would use to answer `query`, without
    /// evaluating it.
    ///
    /// # Errors
    ///
    /// [`TreeError::IndexOutOfWindow`] for indices beyond the window.
    pub fn explain(&self, query: &InnerProductQuery) -> Result<QueryPlan, TreeError> {
        self.explain_with(query, self.config().default_opts())
    }

    /// [`SwatTree::explain`] with explicit [`QueryOptions`].
    ///
    /// # Errors
    ///
    /// As [`SwatTree::explain`].
    pub fn explain_with(
        &self,
        query: &InnerProductQuery,
        opts: QueryOptions,
    ) -> Result<QueryPlan, TreeError> {
        let window = self.config().window();
        for &idx in query.indices() {
            if idx >= window {
                return Err(TreeError::IndexOutOfWindow { index: idx, window });
            }
        }
        let now = self.arrivals();
        let mut covered = vec![false; query.len()];
        let mut steps = Vec::new();
        for (level, pos, summary) in self.nodes() {
            if level < opts.min_level {
                continue;
            }
            if covered.iter().all(|&c| c) {
                break;
            }
            let (start, end) = summary.coverage(now);
            let mut serves = Vec::new();
            for (p, &idx) in query.indices().iter().enumerate() {
                if !covered[p] && (start..=end).contains(&idx) {
                    covered[p] = true;
                    serves.push(idx);
                }
            }
            if !serves.is_empty() {
                steps.push(PlanStep {
                    level,
                    pos,
                    coverage: (start, end),
                    serves,
                });
            }
        }
        let uncovered: Vec<usize> = query
            .indices()
            .iter()
            .zip(&covered)
            .filter(|(_, &c)| !c)
            .map(|(&idx, _)| idx)
            .collect();
        Ok(QueryPlan { steps, uncovered })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwatConfig;

    /// The paper's §2.4 walkthrough, as a plan.
    #[test]
    fn reproduces_the_papers_example_plan() {
        // Same setup as the fig2_trace golden test.
        let mut newest_first = [
            14.0, 12.0, 2.0, 4.0, 1.0, 1.0, 3.0, 5.0, 2.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0,
        ];
        newest_first.reverse();
        let mut tree = SwatTree::from_window(SwatConfig::new(16).unwrap(), &newest_first).unwrap();
        for v in [4.0, 6.0, 2.0] {
            tree.push(v);
        }
        let q = InnerProductQuery::new(vec![0, 3, 8, 13], vec![10.0, 8.0, 4.0, 1.0], 50.0).unwrap();
        let plan = tree.explain(&q).unwrap();
        assert_eq!(plan.node_set(), "{R0, L0, L1, S2}");
        assert_eq!(plan.nodes_used(), 4);
        assert!(plan.uncovered.is_empty());
        // Steps carry the paper's coverages.
        assert_eq!(plan.steps[0].coverage, (0, 1));
        assert_eq!(plan.steps[0].serves, vec![0]);
        assert_eq!(plan.steps[3].coverage, (7, 14));
        assert_eq!(plan.steps[3].serves, vec![13]);
        let rendered = plan.to_string();
        assert!(rendered.contains("S2 covers [7-14]"));
        assert!(rendered.ends_with("V = {R0, L0, L1, S2}"));
    }

    #[test]
    fn plan_matches_answer_node_count() {
        let mut tree = SwatTree::new(SwatConfig::new(64).unwrap());
        tree.extend((0..200).map(|i| (i % 17) as f64));
        for q in [
            InnerProductQuery::exponential(32, 1e9),
            InnerProductQuery::linear_at(10, 20, 1e9),
            InnerProductQuery::point(63, 1e9),
        ] {
            let plan = tree.explain(&q).unwrap();
            let ans = tree.inner_product(&q).unwrap();
            assert_eq!(plan.nodes_used(), ans.nodes_used, "{q:?}");
            // Every query index appears exactly once across the steps.
            let mut served: Vec<usize> = plan.steps.iter().flat_map(|s| s.serves.clone()).collect();
            served.sort_unstable();
            let mut expect = q.indices().to_vec();
            expect.sort_unstable();
            assert_eq!(served, expect);
        }
    }

    #[test]
    fn uncovered_reported_under_reduced_levels() {
        let mut tree = SwatTree::new(SwatConfig::new(64).unwrap());
        tree.extend((0..200).map(|i| i as f64));
        let q = InnerProductQuery::point(0, 1e9);
        let plan = tree.explain_with(&q, QueryOptions::at_level(5)).unwrap();
        // Index 0 may or may not precede level-5 coverage depending on
        // phase; either the plan covers it at level >= 5 or reports it.
        if plan.uncovered.is_empty() {
            assert!(plan.steps[0].level >= 5);
        } else {
            assert_eq!(plan.uncovered, vec![0]);
        }
    }

    #[test]
    fn out_of_window_rejected() {
        let tree = SwatTree::new(SwatConfig::new(16).unwrap());
        let q = InnerProductQuery::point(16, 1.0);
        assert!(matches!(
            tree.explain(&q),
            Err(TreeError::IndexOutOfWindow { .. })
        ));
    }
}
