//! Continuous queries over a SWAT tree.
//!
//! The paper (§2.1): "Our queries are one-time, but we can extend our
//! algorithms to continuous queries quite easily." This module is that
//! extension: clients register standing inner-product queries; every
//! arrival re-evaluates the due subscriptions against the updated tree
//! and returns fresh answers. Because evaluation costs
//! `O(M + log² N)` against an always-current summary, a registered query
//! is exactly as cheap as an ad-hoc one — there is no separate
//! materialization path to maintain.

use crate::config::{SwatConfig, TreeError};
use crate::query::{InnerProductAnswer, InnerProductQuery, QueryOptions};
use crate::tree::SwatTree;

/// Handle identifying a registered continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(usize);

#[derive(Debug)]
struct Subscription {
    query: InnerProductQuery,
    opts: QueryOptions,
    /// Evaluate every `every`-th arrival.
    every: u64,
    active: bool,
}

/// One delivered continuous-query result.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The subscription that fired.
    pub id: SubscriptionId,
    /// Arrival count at evaluation time.
    pub at: u64,
    /// The evaluated answer.
    pub answer: InnerProductAnswer,
}

/// A SWAT tree plus a set of standing queries.
///
/// ```
/// use swat_tree::{continuous::ContinuousEngine, InnerProductQuery, SwatConfig};
///
/// let mut engine = ContinuousEngine::new(SwatConfig::new(16).unwrap());
/// let id = engine.subscribe(InnerProductQuery::exponential(4, 1e9), 1);
/// let mut fired = 0;
/// for i in 0..64 {
///     fired += engine.push(i as f64).len();
/// }
/// assert!(fired > 0);
/// assert!(engine.unsubscribe(id));
/// assert!(engine.push(0.0).is_empty());
/// ```
#[derive(Debug)]
pub struct ContinuousEngine {
    tree: SwatTree,
    subs: Vec<Subscription>,
}

impl ContinuousEngine {
    /// An engine over a fresh tree.
    pub fn new(config: SwatConfig) -> Self {
        ContinuousEngine {
            tree: SwatTree::new(config),
            subs: Vec::new(),
        }
    }

    /// Wrap an existing (possibly warm) tree.
    pub fn from_tree(tree: SwatTree) -> Self {
        ContinuousEngine {
            tree,
            subs: Vec::new(),
        }
    }

    /// The underlying tree (for ad-hoc queries alongside subscriptions).
    pub fn tree(&self) -> &SwatTree {
        &self.tree
    }

    /// Register `query` for evaluation every `every`-th arrival
    /// (`every = 1` fires on each arrival).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn subscribe(&mut self, query: InnerProductQuery, every: u64) -> SubscriptionId {
        self.subscribe_with(query, QueryOptions::default(), every)
    }

    /// As [`Self::subscribe`] with explicit [`QueryOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn subscribe_with(
        &mut self,
        query: InnerProductQuery,
        opts: QueryOptions,
        every: u64,
    ) -> SubscriptionId {
        assert!(every > 0, "evaluation period must be positive");
        // Reuse a cancelled slot if one exists.
        if let Some(i) = self.subs.iter().position(|s| !s.active) {
            self.subs[i] = Subscription {
                query,
                opts,
                every,
                active: true,
            };
            return SubscriptionId(i);
        }
        self.subs.push(Subscription {
            query,
            opts,
            every,
            active: true,
        });
        SubscriptionId(self.subs.len() - 1)
    }

    /// Cancel a subscription; returns whether it was active.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        match self.subs.get_mut(id.0) {
            Some(s) if s.active => {
                s.active = false;
                true
            }
            _ => false,
        }
    }

    /// Number of active subscriptions.
    pub fn active_subscriptions(&self) -> usize {
        self.subs.iter().filter(|s| s.active).count()
    }

    /// Feed one value; evaluate and return every subscription due at this
    /// arrival. Subscriptions whose indices the tree cannot cover yet
    /// (warm-up) are silently skipped this round.
    pub fn push(&mut self, value: f64) -> Vec<Notification> {
        self.tree.push(value);
        let t = self.tree.arrivals();
        let mut out = Vec::new();
        for (i, sub) in self.subs.iter().enumerate() {
            if !sub.active || !t.is_multiple_of(sub.every) {
                continue;
            }
            match self.tree.inner_product_with(&sub.query, sub.opts) {
                Ok(answer) => out.push(Notification {
                    id: SubscriptionId(i),
                    at: t,
                    answer,
                }),
                Err(TreeError::Uncovered { .. }) => {} // still warming up
                Err(e) => unreachable!("subscription validated at registration: {e}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: usize) -> ContinuousEngine {
        ContinuousEngine::new(SwatConfig::new(n).unwrap())
    }

    #[test]
    fn fires_at_the_subscribed_cadence() {
        let mut e = engine(16);
        let every_1 = e.subscribe(InnerProductQuery::exponential(4, 1e9), 1);
        let every_4 = e.subscribe(InnerProductQuery::linear(4, 1e9), 4);
        // Warm up fully first.
        for i in 0..32 {
            e.push(i as f64);
        }
        let mut fired = (0u32, 0u32);
        for i in 0..16 {
            for n in e.push(i as f64) {
                if n.id == every_1 {
                    fired.0 += 1;
                } else if n.id == every_4 {
                    fired.1 += 1;
                }
                assert!(n.answer.value.is_finite());
            }
        }
        assert_eq!(fired, (16, 4));
    }

    #[test]
    fn warmup_skips_instead_of_failing() {
        let mut e = engine(16);
        e.subscribe(InnerProductQuery::point(15, 1e9), 1);
        // The oldest index is uncovered early on: no notifications, no
        // panics.
        let n: usize = (0..8).map(|i| e.push(i as f64).len()).sum();
        assert_eq!(n, 0);
        // Once warm, it fires every arrival.
        for i in 0..32 {
            e.push(i as f64);
        }
        assert_eq!(e.push(1.0).len(), 1);
    }

    #[test]
    fn unsubscribe_and_slot_reuse() {
        let mut e = engine(8);
        let a = e.subscribe(InnerProductQuery::point(0, 1e9), 1);
        let b = e.subscribe(InnerProductQuery::point(1, 1e9), 1);
        assert_eq!(e.active_subscriptions(), 2);
        assert!(e.unsubscribe(a));
        assert!(!e.unsubscribe(a), "double-cancel reports false");
        assert_eq!(e.active_subscriptions(), 1);
        let c = e.subscribe(InnerProductQuery::point(2, 1e9), 1);
        assert_eq!(c, a, "cancelled slot is reused");
        assert_eq!(e.active_subscriptions(), 2);
        let _ = b;
    }

    #[test]
    fn answers_match_ad_hoc_queries() {
        let mut e = engine(32);
        let q = InnerProductQuery::exponential(8, 1e9);
        e.subscribe(q.clone(), 1);
        for i in 0..64 {
            e.push((i % 7) as f64);
        }
        let notifications = e.push(3.0);
        assert_eq!(notifications.len(), 1);
        let ad_hoc = e.tree().inner_product(&q).unwrap();
        assert_eq!(notifications[0].answer, ad_hoc);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let mut e = engine(8);
        e.subscribe(InnerProductQuery::point(0, 1.0), 0);
    }
}
