//! Continuous queries over a SWAT tree.
//!
//! The paper (§2.1): "Our queries are one-time, but we can extend our
//! algorithms to continuous queries quite easily." This module is that
//! extension: clients register standing inner-product queries; every
//! arrival re-evaluates the due subscriptions against the updated tree
//! and returns fresh answers. Because evaluation costs
//! `O(M + log² N)` against an always-current summary, a registered query
//! is exactly as cheap as an ad-hoc one — there is no separate
//! materialization path to maintain.

use crate::codec::{write_frame, Cursor};
use crate::config::{SwatConfig, TreeError};
use crate::query::{InnerProductAnswer, InnerProductQuery, QueryOptions, WeightProfile};
use crate::snapshot::{self, SnapshotError};
use crate::tree::SwatTree;

/// Handle identifying a registered continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(usize);

#[derive(Debug)]
struct Subscription {
    query: InnerProductQuery,
    opts: QueryOptions,
    /// Evaluate every `every`-th arrival.
    every: u64,
    active: bool,
}

/// One delivered continuous-query result.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The subscription that fired.
    pub id: SubscriptionId,
    /// Arrival count at evaluation time.
    pub at: u64,
    /// The evaluated answer.
    pub answer: InnerProductAnswer,
}

/// A SWAT tree plus a set of standing queries.
///
/// ```
/// use swat_tree::{continuous::ContinuousEngine, InnerProductQuery, SwatConfig};
///
/// let mut engine = ContinuousEngine::new(SwatConfig::new(16).unwrap());
/// let id = engine.subscribe(InnerProductQuery::exponential(4, 1e9), 1);
/// let mut fired = 0;
/// for i in 0..64 {
///     fired += engine.push(i as f64).len();
/// }
/// assert!(fired > 0);
/// assert!(engine.unsubscribe(id));
/// assert!(engine.push(0.0).is_empty());
/// ```
#[derive(Debug)]
pub struct ContinuousEngine {
    tree: SwatTree,
    subs: Vec<Subscription>,
}

impl ContinuousEngine {
    /// An engine over a fresh tree.
    pub fn new(config: SwatConfig) -> Self {
        ContinuousEngine {
            tree: SwatTree::new(config),
            subs: Vec::new(),
        }
    }

    /// Wrap an existing (possibly warm) tree.
    pub fn from_tree(tree: SwatTree) -> Self {
        ContinuousEngine {
            tree,
            subs: Vec::new(),
        }
    }

    /// The underlying tree (for ad-hoc queries alongside subscriptions).
    pub fn tree(&self) -> &SwatTree {
        &self.tree
    }

    /// Register `query` for evaluation every `every`-th arrival
    /// (`every = 1` fires on each arrival).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn subscribe(&mut self, query: InnerProductQuery, every: u64) -> SubscriptionId {
        self.subscribe_with(query, self.tree.config().default_opts(), every)
    }

    /// As [`Self::subscribe`] with explicit [`QueryOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn subscribe_with(
        &mut self,
        query: InnerProductQuery,
        opts: QueryOptions,
        every: u64,
    ) -> SubscriptionId {
        assert!(every > 0, "evaluation period must be positive");
        // Reuse a cancelled slot if one exists.
        if let Some(i) = self.subs.iter().position(|s| !s.active) {
            self.subs[i] = Subscription {
                query,
                opts,
                every,
                active: true,
            };
            return SubscriptionId(i);
        }
        self.subs.push(Subscription {
            query,
            opts,
            every,
            active: true,
        });
        SubscriptionId(self.subs.len() - 1)
    }

    /// Cancel a subscription; returns whether it was active.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        match self.subs.get_mut(id.0) {
            Some(s) if s.active => {
                s.active = false;
                true
            }
            _ => false,
        }
    }

    /// Number of active subscriptions.
    pub fn active_subscriptions(&self) -> usize {
        self.subs.iter().filter(|s| s.active).count()
    }

    /// Feed one value; evaluate and return every subscription due at this
    /// arrival. Subscriptions whose indices the tree cannot cover yet
    /// (warm-up) are silently skipped this round.
    pub fn push(&mut self, value: f64) -> Vec<Notification> {
        self.tree.push(value);
        let t = self.tree.arrivals();
        let mut out = Vec::new();
        for (i, sub) in self.subs.iter().enumerate() {
            if !sub.active || !t.is_multiple_of(sub.every) {
                continue;
            }
            match self.tree.inner_product_with(&sub.query, sub.opts) {
                Ok(answer) => out.push(Notification {
                    id: SubscriptionId(i),
                    at: t,
                    answer,
                }),
                Err(TreeError::Uncovered { .. }) => {} // still warming up
                Err(e) => unreachable!("subscription validated at registration: {e}"),
            }
        }
        out
    }

    /// Serialize the engine: the tree's snapshot plus a checksummed
    /// `SUBS` section carrying the standing-query table — query,
    /// options, cadence, and active flag per slot, so
    /// [`SubscriptionId`]s stay valid across the round trip. The section
    /// is written even when the table is empty: restores require it, so
    /// a truncation can never silently drop the subscriptions.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        snapshot::write_tree_body(&self.tree, &mut out);
        {
            let mut sec = Vec::new();
            sec.extend_from_slice(&(self.subs.len() as u64).to_le_bytes());
            for s in &self.subs {
                sec.push(s.active as u8);
                sec.extend_from_slice(&s.every.to_le_bytes());
                sec.push(match s.query.profile() {
                    WeightProfile::General => 0,
                    WeightProfile::Exponential => 1,
                    WeightProfile::Linear => 2,
                });
                sec.extend_from_slice(&s.query.delta().to_le_bytes());
                sec.extend_from_slice(&(s.opts.min_level as u64).to_le_bytes());
                sec.extend_from_slice(&(s.query.len() as u64).to_le_bytes());
                for &idx in s.query.indices() {
                    sec.extend_from_slice(&(idx as u64).to_le_bytes());
                }
                for &w in s.query.weights() {
                    sec.extend_from_slice(&w.to_le_bytes());
                }
            }
            write_frame(&mut out, snapshot::SEC_SUBS, &sec);
        }
        out
    }

    /// Rebuild an engine from [`ContinuousEngine::snapshot`] bytes (for
    /// a plain [`SwatTree::snapshot`], restore the tree and use
    /// [`Self::from_tree`] instead — the engine format requires the
    /// subscription section). Restores validate every subscription as
    /// strictly as [`Self::subscribe_with`] would, so adversarial bytes
    /// yield a typed error, never a panic or an unsound standing query.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn restore(bytes: &[u8]) -> Result<ContinuousEngine, SnapshotError> {
        let mut c = Cursor::new(bytes);
        let tree = snapshot::parse_tree_body(&mut c)?;
        let mut subs = Vec::new();
        {
            let at = c.offset();
            if c.is_empty() {
                return Err(SnapshotError::Invalid {
                    what: "missing SUBS section",
                    offset: at,
                });
            }
            let (tag, mut sec) = c.frame()?;
            if tag != snapshot::SEC_SUBS {
                return Err(SnapshotError::Invalid {
                    what: "expected SUBS section",
                    offset: at,
                });
            }
            let count = sec.u64()? as usize;
            for _ in 0..count {
                let active_at = sec.offset();
                let active = match sec.u8()? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(SnapshotError::Invalid {
                            what: "bad active flag",
                            offset: active_at,
                        })
                    }
                };
                let every_at = sec.offset();
                let every = sec.u64()?;
                if every == 0 {
                    return Err(SnapshotError::Invalid {
                        what: "zero evaluation period",
                        offset: every_at,
                    });
                }
                let profile_at = sec.offset();
                let profile = match sec.u8()? {
                    0 => WeightProfile::General,
                    1 => WeightProfile::Exponential,
                    2 => WeightProfile::Linear,
                    _ => {
                        return Err(SnapshotError::Invalid {
                            what: "bad profile tag",
                            offset: profile_at,
                        })
                    }
                };
                let delta = sec.f64()?;
                let min_level_at = sec.offset();
                let min_level = sec.u64()? as usize;
                if min_level >= tree.config().levels() {
                    return Err(SnapshotError::Invalid {
                        what: "subscription min level out of range",
                        offset: min_level_at,
                    });
                }
                let m_at = sec.offset();
                let m = sec.u64()? as usize;
                let mut indices = Vec::new();
                for _ in 0..m {
                    indices.push(sec.u64()? as usize);
                }
                let mut weights = Vec::new();
                for _ in 0..m {
                    weights.push(sec.f64()?);
                }
                let mut query = InnerProductQuery::new(indices, weights, delta).map_err(|_| {
                    SnapshotError::Invalid {
                        what: "bad subscription query",
                        offset: m_at,
                    }
                })?;
                if !query.try_set_profile(profile) {
                    return Err(SnapshotError::Invalid {
                        what: "profile tag does not match weights",
                        offset: profile_at,
                    });
                }
                subs.push(Subscription {
                    query,
                    opts: QueryOptions { min_level },
                    every,
                    active,
                });
            }
            if !sec.is_empty() {
                return Err(SnapshotError::Invalid {
                    what: "oversized SUBS section",
                    offset: sec.offset(),
                });
            }
            if !c.is_empty() {
                return Err(SnapshotError::Invalid {
                    what: "trailing bytes",
                    offset: c.offset(),
                });
            }
        }
        Ok(ContinuousEngine { tree, subs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: usize) -> ContinuousEngine {
        ContinuousEngine::new(SwatConfig::new(n).unwrap())
    }

    #[test]
    fn fires_at_the_subscribed_cadence() {
        let mut e = engine(16);
        let every_1 = e.subscribe(InnerProductQuery::exponential(4, 1e9), 1);
        let every_4 = e.subscribe(InnerProductQuery::linear(4, 1e9), 4);
        // Warm up fully first.
        for i in 0..32 {
            e.push(i as f64);
        }
        let mut fired = (0u32, 0u32);
        for i in 0..16 {
            for n in e.push(i as f64) {
                if n.id == every_1 {
                    fired.0 += 1;
                } else if n.id == every_4 {
                    fired.1 += 1;
                }
                assert!(n.answer.value.is_finite());
            }
        }
        assert_eq!(fired, (16, 4));
    }

    #[test]
    fn warmup_skips_instead_of_failing() {
        let mut e = engine(16);
        e.subscribe(InnerProductQuery::point(15, 1e9), 1);
        // The oldest index is uncovered early on: no notifications, no
        // panics.
        let n: usize = (0..8).map(|i| e.push(i as f64).len()).sum();
        assert_eq!(n, 0);
        // Once warm, it fires every arrival.
        for i in 0..32 {
            e.push(i as f64);
        }
        assert_eq!(e.push(1.0).len(), 1);
    }

    #[test]
    fn unsubscribe_and_slot_reuse() {
        let mut e = engine(8);
        let a = e.subscribe(InnerProductQuery::point(0, 1e9), 1);
        let b = e.subscribe(InnerProductQuery::point(1, 1e9), 1);
        assert_eq!(e.active_subscriptions(), 2);
        assert!(e.unsubscribe(a));
        assert!(!e.unsubscribe(a), "double-cancel reports false");
        assert_eq!(e.active_subscriptions(), 1);
        let c = e.subscribe(InnerProductQuery::point(2, 1e9), 1);
        assert_eq!(c, a, "cancelled slot is reused");
        assert_eq!(e.active_subscriptions(), 2);
        let _ = b;
    }

    #[test]
    fn answers_match_ad_hoc_queries() {
        let mut e = engine(32);
        let q = InnerProductQuery::exponential(8, 1e9);
        e.subscribe(q.clone(), 1);
        for i in 0..64 {
            e.push((i % 7) as f64);
        }
        let notifications = e.push(3.0);
        assert_eq!(notifications.len(), 1);
        let ad_hoc = e.tree().inner_product(&q).unwrap();
        assert_eq!(notifications[0].answer, ad_hoc);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let mut e = engine(8);
        e.subscribe(InnerProductQuery::point(0, 1.0), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_subscriptions() {
        let mut e = ContinuousEngine::new(SwatConfig::new(32).unwrap().with_min_level(1).unwrap());
        let exp = e.subscribe(InnerProductQuery::exponential(8, 1e9), 1);
        let lin = e.subscribe_with(
            InnerProductQuery::linear(4, 1e9),
            QueryOptions::at_level(2),
            4,
        );
        let cancelled = e.subscribe(InnerProductQuery::point(3, 1e9), 2);
        assert!(e.unsubscribe(cancelled));
        for i in 0..80 {
            e.push((i % 9) as f64);
        }
        let mut restored = ContinuousEngine::restore(&e.snapshot()).unwrap();
        assert_eq!(restored.active_subscriptions(), 2);
        assert_eq!(restored.tree().answers_digest(), e.tree().answers_digest());
        // Both engines keep firing identically, same ids, same answers;
        // the cancelled slot stays reusable.
        for i in 0..16 {
            let a = e.push(i as f64);
            let b = restored.push(i as f64);
            assert_eq!(a, b);
        }
        assert!(e.unsubscribe(exp) && restored.unsubscribe(exp));
        assert!(e.unsubscribe(lin) && restored.unsubscribe(lin));
    }

    #[test]
    fn formats_never_cross_silently() {
        let mut e = engine(16);
        for i in 0..20 {
            e.push(i as f64);
        }
        // An empty-table engine snapshot round-trips.
        let restored = ContinuousEngine::restore(&e.snapshot()).unwrap();
        assert_eq!(restored.active_subscriptions(), 0);
        assert_eq!(restored.tree().answers_digest(), e.tree().answers_digest());
        // A plain tree restore rejects engine snapshots (which carry a
        // subscription section) instead of silently dropping the table...
        let mut e2 = engine(16);
        e2.subscribe(InnerProductQuery::exponential(4, 1e9), 1);
        assert!(matches!(
            SwatTree::restore(&e2.snapshot()),
            Err(SnapshotError::Invalid {
                what: "subscriptions present (use ContinuousEngine::restore)",
                ..
            })
        ));
        // ...and an engine restore rejects plain tree snapshots, because
        // a missing table is indistinguishable from a truncated one.
        assert!(matches!(
            ContinuousEngine::restore(&e.tree().snapshot()),
            Err(SnapshotError::Invalid {
                what: "missing SUBS section",
                ..
            })
        ));
    }

    #[test]
    fn restore_rejects_corrupt_subscription_tables() {
        let mut e = engine(16);
        e.subscribe(InnerProductQuery::exponential(4, 1e9), 1);
        e.subscribe_with(
            InnerProductQuery::new(vec![0, 5, 2], vec![1.0, -2.0, 0.5], 3.0).unwrap(),
            QueryOptions::at_level(1),
            2,
        );
        for i in 0..40 {
            e.push(i as f64);
        }
        let bytes = e.snapshot();
        let reference = ContinuousEngine::restore(&bytes).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                ContinuousEngine::restore(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                if let Ok(r) = ContinuousEngine::restore(&bad) {
                    assert_eq!(
                        r.tree().answers_digest(),
                        reference.tree().answers_digest(),
                        "flip at {byte}.{bit}"
                    );
                }
            }
        }
    }
}
