//! The paper's analytical error model (§2.6).
//!
//! Under the smooth-stream assumption — every value exceeds its
//! predecessor by exactly `ε` — the paper derives per-level weighted error
//! bounds and totals them over the `O(log M)` levels a length-`M` query
//! touches:
//!
//! * exponential inner-product queries: total error `O(ε log M)`
//!   (each level contributes at most `2ε`),
//! * linear inner-product queries: total error `O(ε M²)`
//!   (level `l` contributes at most `4^l ε`).
//!
//! These functions compute the closed-form bounds so tests and benchmarks
//! can compare measured error against the theory (see the
//! `error_model_holds` integration test and the fig4 harness).

/// Number of levels a length-`M` query touches: `ceil(log2 M) + 1`
/// (levels `0ceil(log2 M)` inclusive, as in the paper's summations).
fn levels_touched(m: usize) -> u32 {
    assert!(m > 0, "query length must be positive");
    let ceil_log = usize::BITS - (m - 1).leading_zeros();
    ceil_log + 1
}

/// Upper bound on the absolute error of an exponential inner-product
/// query of length `m` over an ε-increment stream: `Σ_l 2ε = 2ε(⌈log m⌉+1)`.
pub fn exponential_bound(m: usize, epsilon: f64) -> f64 {
    2.0 * epsilon * f64::from(levels_touched(m))
}

/// Upper bound on the absolute error of a linear inner-product query of
/// length `m` over an ε-increment stream: `Σ_l 4^l ε = ε (4^(⌈log m⌉+1) − 1)/3`.
pub fn linear_bound(m: usize, epsilon: f64) -> f64 {
    let l = levels_touched(m);
    epsilon * (4f64.powi(l as i32) - 1.0) / 3.0
}

/// The per-level bound for exponential queries (`2ε`, independent of the
/// level) — equation (2)'s summand.
pub fn exponential_level_bound(epsilon: f64) -> f64 {
    2.0 * epsilon
}

/// The per-level bound for linear queries (`4^l ε`) — equation (3)'s
/// summand.
pub fn linear_level_bound(level: u32, epsilon: f64) -> f64 {
    4f64.powi(level as i32) * epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_counts() {
        assert_eq!(levels_touched(1), 1);
        assert_eq!(levels_touched(2), 2);
        assert_eq!(levels_touched(3), 3);
        assert_eq!(levels_touched(4), 3);
        assert_eq!(levels_touched(1024), 11);
    }

    #[test]
    fn exponential_bound_is_logarithmic() {
        let e = 0.5;
        assert_eq!(exponential_bound(1, e), 2.0 * e);
        assert_eq!(exponential_bound(4, e), 6.0 * e);
        // Doubling M adds a constant, not a factor.
        let b1 = exponential_bound(256, e);
        let b2 = exponential_bound(512, e);
        assert!((b2 - b1 - 2.0 * e).abs() < 1e-12);
    }

    #[test]
    fn linear_bound_is_quadratic() {
        let e = 0.1;
        // Doubling M roughly quadruples the bound.
        let b1 = linear_bound(64, e);
        let b2 = linear_bound(128, e);
        assert!((b2 / b1 - 4.0).abs() < 0.1, "ratio {}", b2 / b1);
    }

    #[test]
    fn level_bounds_sum_to_totals() {
        let e = 0.3;
        let m = 100;
        let l = levels_touched(m);
        let exp_sum: f64 = (0..l).map(|_| exponential_level_bound(e)).sum();
        assert!((exp_sum - exponential_bound(m, e)).abs() < 1e-12);
        let lin_sum: f64 = (0..l).map(|lv| linear_level_bound(lv, e)).sum();
        assert!((lin_sum - linear_bound(m, e)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = exponential_bound(0, 1.0);
    }
}
