//! # SWAT approximation tree
//!
//! The core contribution of *SWAT: Hierarchical Stream Summarization in
//! Large Networks* (Bulut & Singh, ICDE 2003): a wavelet-based structure
//! that summarizes the last `N` values of a data stream **at multiple
//! resolutions** — precise summaries for recent data, coarser ones for
//! older data — in `O(k log N)` space with `O(k)` amortized maintenance
//! per arrival, answering point, range, and inner-product queries in
//! polylogarithmic time.
//!
//! ## The shape of the structure
//!
//! A window of `N = 2^n` values induces `n` levels. Level `l` holds up to
//! three summaries (*Right*, *Shift*, *Left*) of dyadic blocks of
//! `2^(l+1)` values; the top level holds one — `3 log N − 2` summaries
//! total. Level `l` refreshes only every `2^l` arrivals by merging the
//! level-`l−1` Right and Left summaries, so old levels *age*: their blocks
//! slide into the past until the next refresh. The result is a time-varying
//! tiling of the window where recent indices are covered by fine blocks
//! and old indices by coarse ones — the paper's "biased query model".
//!
//! ## Quick example
//!
//! ```
//! use swat_tree::{SwatTree, SwatConfig, InnerProductQuery};
//!
//! let mut tree = SwatTree::new(SwatConfig::new(256).unwrap());
//! tree.extend((0..1000).map(|i| (i % 50) as f64));
//!
//! // Point query: index 0 is the newest value (true value 49 here).
//! let p = tree.point(0).unwrap();
//! assert!((p.value - 49.0).abs() <= p.error_bound);
//!
//! // Exponentially weighted inner product over the 32 newest values,
//! // required precision 10.
//! let q = InnerProductQuery::exponential(32, 10.0);
//! let a = tree.inner_product(&q).unwrap();
//! assert!(a.nodes_used <= 3 * 8); // at most 3 log N nodes
//! ```
//!
//! ## Modules
//!
//! * [`tree`] — the structure and its update algorithm (Figure 3a),
//! * [`ingest`] — the blocked batch-ingest fast path: chunk-aligned
//!   cascades over flat SoA lanes, reusable [`IngestScratch`] buffers,
//!   and the frozen scalar reference path it is pinned against,
//! * [`query`] — point / range / inner-product evaluation (Figure 3b),
//! * [`scratch`] — the zero-allocation query engine: reusable
//!   [`QueryScratch`] buffers, a cached serving-map cover index, batched
//!   entry points, and the wavelet-domain inner-product kernel,
//! * [`node`] — immutable per-block summaries with aging coverage,
//! * [`range`] — `[min, max]` ranges backing sound error bounds,
//! * [`error_model`] — the paper's §2.6 closed-form error bounds,
//! * [`exact`] — a ground-truth ring buffer for experiments,
//! * [`config`] — configuration and error types,
//! * [`codec`] — the CRC32-checksummed framing shared by snapshots and
//!   the `swat-store` durability layer,
//!
//! plus the paper's extensions:
//!
//! * [`continuous`] — standing (continuous) queries re-evaluated per
//!   arrival (§2.1's "we can extend our algorithms to continuous
//!   queries quite easily"),
//! * [`growing`] — whole-stream summarization with logarithmically
//!   growing levels (§2.1/§2.3's entire-stream model),
//! * [`multi`] — multiple streams and summary-based correlation (the
//!   concluding remarks' future work),
//! * [`shard`] — hash-partitioned million-stream ingest with mergeable
//!   per-shard top-k coefficient summaries and the exact two-round
//!   distributed top-k merge (the paper's "large networks" setting at
//!   scale).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod codec;
pub mod config;
pub mod continuous;
pub mod error_model;
pub mod exact;
pub mod explain;
pub mod growing;
pub mod ingest;
pub mod multi;
pub mod node;
pub mod query;
pub mod range;
pub mod scratch;
pub mod shard;
pub mod snapshot;
pub mod tree;

pub use aggregate::Aggregate;
pub use config::{SwatConfig, TreeError};
pub use continuous::{ContinuousEngine, Notification, SubscriptionId};
pub use exact::ExactWindow;
pub use explain::{PlanStep, QueryPlan};
pub use growing::GrowingSwat;
pub use ingest::IngestScratch;
pub use multi::StreamSet;
pub use node::Summary;
pub use query::{
    InnerProductAnswer, InnerProductQuery, PointAnswer, QueryOptions, RangeMatch, RangeQuery,
    WeightProfile,
};
pub use range::ValueRange;
pub use scratch::QueryScratch;
pub use shard::{
    for_each_root_coeff, local_top_k, root_summary, shard_members, shard_of, MergeStats,
    ShardedStreamSet,
};
pub use snapshot::SnapshotError;
pub use tree::{NodePos, SwatTree};
