//! Exact sliding window — ground truth for experiments and tests.
//!
//! The discrete-event experiments need the true window contents to measure
//! approximation error and to drive the replication source. This is a
//! plain ring buffer with the same window-index convention as the tree
//! (index 0 = newest).

use crate::range::ValueRange;
use std::collections::VecDeque;

/// A ring buffer holding the last `N` stream values exactly.
#[derive(Debug, Clone)]
pub struct ExactWindow {
    buf: VecDeque<f64>,
    capacity: usize,
}

impl ExactWindow {
    /// An empty window of capacity `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window capacity must be positive");
        ExactWindow {
            buf: VecDeque::with_capacity(n),
            capacity: n,
        }
    }

    /// Feed one value, evicting the oldest if full.
    pub fn push(&mut self, v: f64) {
        if self.buf.len() == self.capacity {
            self.buf.pop_back();
        }
        self.buf.push_front(v);
    }

    /// Value at window index `idx` (0 = newest), if present.
    pub fn get(&self, idx: usize) -> Option<f64> {
        self.buf.get(idx).copied()
    }

    /// Number of values currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no values have arrived yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Window capacity `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate values newest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// The contents as a vector, newest first.
    pub fn to_vec(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }

    /// Exact `[min, max]` over window indices `from..=to` (both must be
    /// present).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or out of bounds.
    pub fn range_of(&self, from: usize, to: usize) -> ValueRange {
        assert!(
            from <= to && to < self.buf.len(),
            "bad interval [{from}, {to}]"
        );
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in from..=to {
            let v = self.buf[i];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        ValueRange::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_semantics() {
        let mut w = ExactWindow::new(3);
        assert!(w.is_empty() && !w.is_full());
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        assert!(w.is_full());
        assert_eq!(w.to_vec(), vec![3.0, 2.0, 1.0]);
        w.push(4.0);
        assert_eq!(w.to_vec(), vec![4.0, 3.0, 2.0]);
        assert_eq!(w.get(0), Some(4.0));
        assert_eq!(w.get(2), Some(2.0));
        assert_eq!(w.get(3), None);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn range_of_interval() {
        let mut w = ExactWindow::new(4);
        for v in [5.0, 1.0, 9.0, 3.0] {
            w.push(v);
        }
        // newest first: [3, 9, 1, 5]
        assert_eq!(w.range_of(0, 3), ValueRange::new(1.0, 9.0));
        assert_eq!(w.range_of(1, 2), ValueRange::new(1.0, 9.0));
        assert_eq!(w.range_of(0, 0), ValueRange::point(3.0));
    }

    #[test]
    #[should_panic(expected = "bad interval")]
    fn range_of_out_of_bounds() {
        let w = ExactWindow::new(4);
        let _ = w.range_of(0, 0);
    }
}
