//! The zero-allocation query engine: reusable scratch buffers, a cached
//! node-cover index, batched entry points, and the coefficient-domain
//! inner-product kernel.
//!
//! # Bit-identity contract
//!
//! Every evaluation path in this module (except the explicitly
//! approximate [`SwatTree::inner_product_coeffs`]) produces answers
//! **bit-identical** to the frozen implementations in
//! [`crate::query::reference`]: the same greedy cover, the same traversal
//! order, the same floating-point operations in the same order. The
//! equivalence property tests in `tests/query_equivalence.rs` enforce
//! this; the engine differs from the reference only in *where the bytes
//! live* (caller-owned buffers instead of per-call `Vec`s) and in hoisting
//! arithmetic that is identical by inlining (e.g. computing a point value
//! once instead of re-walking the coefficient tree for its error bound).
//!
//! # The cover cache
//!
//! The paper's greedy cover has a key structural property: whether a node
//! serves window index `i` depends only on `i`, never on the other
//! queried indices — index `i` is always served by the *first* node in
//! traversal order (levels ascending, `R → S → L`, levels below
//! `min_level` skipped) whose coverage contains `i`. The engine therefore
//! precomputes a `window`-sized *serving map* (index → node slot) and
//! reproduces any query's greedy cover with one lookup per index plus a
//! stable counting sort, instead of the reference's nodes × indices scan.
//!
//! **Invalidation rule**: the cache is keyed on the exact cover geometry —
//! the arrival count plus the `(level, created_at)` sequence of all
//! populated nodes (and `min_level`). Any `push` advances the arrival
//! count, so every mutation invalidates; the comparison is exact (no
//! hashing), so a stale cache can never be mistaken for a fresh one.
//!
//! Single-shot queries (`point_with`, `inner_product_with`, …) instead use
//! a buffered variant of the reference scan — same `O(3 log N · M)`
//! complexity, zero allocation — so one-off queries on a churning tree
//! never pay a map rebuild. The batched entry points ([`SwatTree::point_many`],
//! [`SwatTree::inner_product_many`]) and full-window paths use the map and
//! amortize it across the block.

use std::cell::RefCell;

use crate::config::TreeError;
use crate::query::{
    InnerProductAnswer, InnerProductQuery, PointAnswer, QueryOptions, RangeMatch, RangeQuery,
    WeightProfile,
};
use crate::tree::SwatTree;
use swat_wavelet::dot::{
    adjoint_into, dot_coeffs, dot_coeffs_clipped, profile_sum, CanonicalProfile, ProfileTable,
};

/// Sentinel in the serving map: no eligible node covers this index.
const UNSERVED: u32 = u32::MAX;

/// A query's index vector, either explicit or an implicit contiguous
/// span (range queries and window reconstruction), so interval queries
/// never materialize `(a..=b).collect()`.
#[derive(Clone, Copy)]
enum IdxList<'a> {
    Slice(&'a [usize]),
    Span { first: usize, len: usize },
}

impl IdxList<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            IdxList::Slice(s) => s.len(),
            IdxList::Span { len, .. } => *len,
        }
    }

    /// The window index at query position `pos`.
    #[inline]
    fn get(&self, pos: usize) -> usize {
        match self {
            IdxList::Slice(s) => s[pos],
            IdxList::Span { first, .. } => first + pos,
        }
    }
}

/// One node selected by the greedy cover: where it lives in the tree and
/// which slice of the shared `entries` buffer holds the query positions
/// it serves.
#[derive(Debug, Clone, Copy)]
struct SelNode {
    level: usize,
    queue_index: usize,
    entries_start: usize,
    entries_len: usize,
    /// Index into the cover cache's `slots` (and the scratch's per-batch
    /// block cache), or [`UNSERVED`] for scan-mode covers, which carry no
    /// slot identity.
    slot: u32,
}

/// One eligible node in traversal order, with its coverage at the cached
/// arrival count.
#[derive(Debug, Clone, Copy)]
struct SlotInfo {
    level: usize,
    queue_index: usize,
}

/// The lazily built serving-map index over a tree's nodes (see the module
/// docs for the invalidation rule).
#[derive(Debug, Default)]
struct CoverCache {
    valid: bool,
    min_level: usize,
    window: usize,
    arrivals: u64,
    /// `(level, created_at)` of every populated node, traversal order —
    /// the exact cover geometry this cache was built for.
    geom: Vec<(u32, u64)>,
    /// Eligible nodes (level ≥ `min_level`), traversal order.
    slots: Vec<SlotInfo>,
    /// Window index → index into `slots` of the first eligible covering
    /// node, or [`UNSERVED`].
    serving: Vec<u32>,
    /// Number of rebuilds performed (diagnostic, exercised by tests).
    rebuilds: u64,
}

impl CoverCache {
    /// True iff the cached geometry matches `tree` exactly.
    fn geom_matches(&self, tree: &SwatTree) -> bool {
        let mut it = self.geom.iter();
        for (level, _, s) in tree.nodes() {
            match it.next() {
                Some(&(l, c)) if l as usize == level && c == s.created_at() => {}
                _ => return false,
            }
        }
        it.next().is_none()
    }

    /// Make the cache valid for `(tree, min_level)`, rebuilding only if
    /// the cover geometry changed.
    fn ensure(&mut self, tree: &SwatTree, min_level: usize) {
        if self.valid
            && self.min_level == min_level
            && self.window == tree.config().window()
            && self.arrivals == tree.arrivals()
            && self.geom_matches(tree)
        {
            return;
        }
        self.rebuild(tree, min_level);
    }

    fn rebuild(&mut self, tree: &SwatTree, min_level: usize) {
        let window = tree.config().window();
        let now = tree.arrivals();
        self.geom.clear();
        self.slots.clear();
        self.serving.clear();
        self.serving.resize(window, UNSERVED);
        let mut level_cursor = usize::MAX;
        let mut queue_index = 0usize;
        for (level, _, s) in tree.nodes() {
            // `nodes()` yields queue order 0,1,2 within each level.
            if level != level_cursor {
                level_cursor = level;
                queue_index = 0;
            } else {
                queue_index += 1;
            }
            self.geom.push((level as u32, s.created_at()));
            if level < min_level {
                continue;
            }
            let (start, end) = s.coverage(now);
            let slot = self.slots.len() as u32;
            self.slots.push(SlotInfo { level, queue_index });
            // First eligible node in traversal order wins each index —
            // exactly the reference greedy cover's per-index decision.
            for idx in start..window.min(end + 1) {
                if self.serving[idx] == UNSERVED {
                    self.serving[idx] = slot;
                }
            }
        }
        self.valid = true;
        self.min_level = min_level;
        self.window = window;
        self.arrivals = now;
        self.rebuilds += 1;
    }
}

/// Reusable buffers for query evaluation over a [`SwatTree`].
///
/// One scratch serves any number of trees and query shapes; buffers grow
/// to the working-set high-water mark and are then reused, so steady-state
/// query serving performs **zero heap allocations** (asserted by
/// `tests/query_alloc.rs`). `new()` allocates nothing.
///
/// A scratch is deliberately *not* stored inside the tree: `SwatTree`
/// stays free of interior mutability (and therefore `Sync`), which is
/// what lets [`crate::StreamSet`] fan queries out across scoped threads
/// with one scratch per worker.
#[derive(Debug, Default)]
pub struct QueryScratch {
    cover: CoverCache,
    /// Per-position covered flags (scan mode).
    covered: Vec<bool>,
    /// Per-slot counts, then write cursors (mapped mode counting sort).
    counts: Vec<usize>,
    /// Selected nodes, traversal order.
    sel: Vec<SelNode>,
    /// Query positions grouped by selected node (ascending within each).
    entries: Vec<usize>,
    /// Query positions no eligible node covers, ascending.
    uncovered: Vec<usize>,
    /// Time-domain block reconstruction + its ping-pong buffer.
    block: Vec<f64>,
    tmp: Vec<f64>,
    /// Per-slot reconstructed node blocks, valid for one batched call
    /// against one tree (empty inner vec = not yet built this batch).
    /// The serving map can be shared across trees with equal geometry;
    /// reconstructed *values* never can, so this resets every batch.
    blocks: Vec<Vec<f64>>,
    /// Dense weight layout, adjoint output, adjoint ping-pong (kernel).
    wdense: Vec<f64>,
    wadj: Vec<f64>,
    wtmp: Vec<f64>,
    /// Cached transformed weights for the closed-form profiles.
    profiles: ProfileTable,
}

impl QueryScratch {
    /// An empty scratch (no allocation until first use).
    pub fn new() -> Self {
        QueryScratch::default()
    }

    /// Total bytes currently reserved across all internal buffers — a
    /// capacity-stability probe: once warmed on a workload, repeated
    /// serving must not change this value.
    pub fn bytes_reserved(&self) -> usize {
        use std::mem::size_of;
        self.cover.geom.capacity() * size_of::<(u32, u64)>()
            + self.cover.slots.capacity() * size_of::<SlotInfo>()
            + self.cover.serving.capacity() * size_of::<u32>()
            + self.covered.capacity()
            + self.counts.capacity() * size_of::<usize>()
            + self.sel.capacity() * size_of::<SelNode>()
            + self.entries.capacity() * size_of::<usize>()
            + self.uncovered.capacity() * size_of::<usize>()
            + (self.block.capacity()
                + self.tmp.capacity()
                + self.wdense.capacity()
                + self.wadj.capacity()
                + self.wtmp.capacity())
                * size_of::<f64>()
            + self.blocks.capacity() * size_of::<Vec<f64>>()
            + self
                .blocks
                .iter()
                .map(|b| b.capacity() * size_of::<f64>())
                .sum::<usize>()
    }

    /// Invalidate the per-batch node-block cache: inner vectors keep
    /// their capacity but are marked unbuilt, and the outer vector grows
    /// to cover every current slot. Called at the start of each batched
    /// evaluation — cached blocks hold tree-specific *values* and must
    /// never outlive one (tree, batch) pairing.
    fn reset_blocks(&mut self) {
        for b in &mut self.blocks {
            b.clear();
        }
        while self.blocks.len() < self.cover.slots.len() {
            self.blocks.push(Vec::new());
        }
    }

    /// Reference-order greedy cover via a nodes × positions scan into the
    /// scratch buffers — the allocation-free twin of
    /// `query::reference::cover`.
    fn cover_scan(&mut self, tree: &SwatTree, idx: IdxList<'_>, opts: QueryOptions) {
        let now = tree.arrivals();
        self.sel.clear();
        self.entries.clear();
        self.uncovered.clear();
        self.covered.clear();
        self.covered.resize(idx.len(), false);
        let mut remaining = idx.len();
        let mut level_cursor = usize::MAX;
        let mut queue_index = 0usize;
        for (level, _, summary) in tree.nodes() {
            if level != level_cursor {
                level_cursor = level;
                queue_index = 0;
            } else {
                queue_index += 1;
            }
            if level < opts.min_level {
                continue;
            }
            if remaining == 0 {
                break;
            }
            let (start, end) = summary.coverage(now);
            let entries_start = self.entries.len();
            for pos in 0..idx.len() {
                let i = idx.get(pos);
                if !self.covered[pos] && (start..=end).contains(&i) {
                    self.entries.push(pos);
                    self.covered[pos] = true;
                    remaining -= 1;
                }
            }
            let entries_len = self.entries.len() - entries_start;
            if entries_len > 0 {
                self.sel.push(SelNode {
                    level,
                    queue_index,
                    entries_start,
                    entries_len,
                    slot: UNSERVED,
                });
            }
        }
        for pos in 0..idx.len() {
            if !self.covered[pos] {
                self.uncovered.push(pos);
            }
        }
    }

    /// Greedy cover via the serving map plus a stable counting sort.
    ///
    /// Produces exactly the `cover_scan` result: the map encodes the same
    /// first-covering-node decision per index, positions are emitted in
    /// ascending order within each node (the counting sort is stable over
    /// the ascending position pass), and nodes appear in slot order =
    /// traversal order.
    fn cover_mapped(&mut self, tree: &SwatTree, idx: IdxList<'_>, opts: QueryOptions) {
        self.cover.ensure(tree, opts.min_level);
        let QueryScratch {
            cover,
            counts,
            sel,
            entries,
            uncovered,
            ..
        } = self;
        sel.clear();
        entries.clear();
        uncovered.clear();
        counts.clear();
        counts.resize(cover.slots.len(), 0);
        for pos in 0..idx.len() {
            match cover.serving[idx.get(pos)] {
                UNSERVED => uncovered.push(pos),
                slot => counts[slot as usize] += 1,
            }
        }
        let mut offset = 0usize;
        for (slot, count) in counts.iter_mut().enumerate() {
            let c = *count;
            if c > 0 {
                let info = cover.slots[slot];
                sel.push(SelNode {
                    level: info.level,
                    queue_index: info.queue_index,
                    entries_start: offset,
                    entries_len: c,
                    slot: slot as u32,
                });
            }
            *count = offset;
            offset += c;
        }
        entries.resize(offset, 0);
        for pos in 0..idx.len() {
            let slot = cover.serving[idx.get(pos)];
            if slot != UNSERVED {
                let cursor = &mut counts[slot as usize];
                entries[*cursor] = pos;
                *cursor += 1;
            }
        }
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// Run `f` with this thread's shared [`QueryScratch`] — the engine behind
/// the scratch-less public query methods.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

impl SwatTree {
    /// Reduced-level extrapolation source: the freshest node at an
    /// eligible level, answered from its newest covered position — the
    /// reference implementations' extrapolation verbatim.
    fn extrapolate_point(&self, opts: QueryOptions) -> Option<PointAnswer> {
        let now = self.arrivals();
        let (_, _, s) = self
            .nodes()
            .filter(|(l, _, _)| *l >= opts.min_level)
            .min_by_key(|(_, _, s)| s.coverage(now).0)?;
        let (start, _) = s.coverage(now);
        Some(PointAnswer {
            value: s.value_at(now, start),
            error_bound: s.range().width(),
            level: s.level(),
            extrapolated: true,
        })
    }

    /// The answer served by `sel`'s summary for covered index `idx`.
    ///
    /// `error_bound` hoists [`crate::node::Summary::error_bound_at`]'s
    /// arithmetic over the already-computed value — identical operations,
    /// one coefficient walk instead of two.
    fn covered_point_answer(
        &self,
        sel_level: usize,
        queue_index: usize,
        idx: usize,
    ) -> PointAnswer {
        let now = self.arrivals();
        let s = self
            .summary_at(sel_level, queue_index)
            .expect("cover refers to a live node");
        let value = s.value_at(now, idx);
        let error_bound = (value - s.range().lo()).max(s.range().hi() - value);
        PointAnswer {
            value,
            error_bound,
            level: s.level(),
            extrapolated: false,
        }
    }

    /// [`Self::point_with`] against an explicit [`QueryScratch`] —
    /// bit-identical answers, zero steady-state allocation.
    ///
    /// # Errors
    ///
    /// As [`Self::point_with`].
    pub fn point_with_scratch(
        &self,
        idx: usize,
        opts: QueryOptions,
        scratch: &mut QueryScratch,
    ) -> Result<PointAnswer, TreeError> {
        self.check_indices(&[idx])?;
        scratch.cover_scan(self, IdxList::Span { first: idx, len: 1 }, opts);
        if let Some(sn) = scratch.sel.first() {
            return Ok(self.covered_point_answer(sn.level, sn.queue_index, idx));
        }
        debug_assert_eq!(scratch.uncovered, [0]);
        if opts.min_level == 0 {
            return Err(TreeError::Uncovered { index: idx });
        }
        self.extrapolate_point(opts)
            .ok_or(TreeError::Uncovered { index: idx })
    }

    /// Answer a block of point queries, amortizing the cover cache across
    /// the batch: after `check_indices` and one (usually cached) serving-map
    /// lookup table, each answer costs `O(log N)`.
    ///
    /// `out` is cleared and filled with one answer per index, in order —
    /// each bit-identical to [`Self::point_with`] on the same tree.
    ///
    /// # Errors
    ///
    /// The error [`Self::point_with`] would return for the first failing
    /// index; `out`'s contents are unspecified on error.
    pub fn point_many(
        &self,
        indices: &[usize],
        opts: QueryOptions,
        scratch: &mut QueryScratch,
        out: &mut Vec<PointAnswer>,
    ) -> Result<(), TreeError> {
        self.check_indices(indices)?;
        scratch.cover.ensure(self, opts.min_level);
        out.clear();
        for &idx in indices {
            match scratch.cover.serving[idx] {
                UNSERVED => {
                    if opts.min_level == 0 {
                        return Err(TreeError::Uncovered { index: idx });
                    }
                    let ans = self
                        .extrapolate_point(opts)
                        .ok_or(TreeError::Uncovered { index: idx })?;
                    out.push(ans);
                }
                slot => {
                    let info = scratch.cover.slots[slot as usize];
                    out.push(self.covered_point_answer(info.level, info.queue_index, idx));
                }
            }
        }
        Ok(())
    }

    /// Values of the contiguous span `first..first + len`, one per index —
    /// the batched core behind [`crate::StreamSet`]'s recent-window reads.
    ///
    /// # Errors
    ///
    /// As [`Self::point_many`] over the same indices.
    pub(crate) fn point_span_into(
        &self,
        first: usize,
        len: usize,
        opts: QueryOptions,
        scratch: &mut QueryScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), TreeError> {
        let window = self.config().window();
        if len > 0 && first + len > window {
            // First failing index of an ascending scan.
            return Err(TreeError::IndexOutOfWindow {
                index: window.max(first),
                window,
            });
        }
        scratch.cover.ensure(self, opts.min_level);
        out.clear();
        for idx in first..first + len {
            match scratch.cover.serving[idx] {
                UNSERVED => {
                    if opts.min_level == 0 {
                        return Err(TreeError::Uncovered { index: idx });
                    }
                    let ans = self
                        .extrapolate_point(opts)
                        .ok_or(TreeError::Uncovered { index: idx })?;
                    out.push(ans.value);
                }
                slot => {
                    let info = scratch.cover.slots[slot as usize];
                    let now = self.arrivals();
                    let s = self
                        .summary_at(info.level, info.queue_index)
                        .expect("cover refers to a live node");
                    out.push(s.value_at(now, idx));
                }
            }
        }
        Ok(())
    }

    /// Shared inner-product evaluation over a cover already staged in
    /// `scratch` — the reference arithmetic, operation for operation.
    fn inner_eval(
        &self,
        query: &InnerProductQuery,
        opts: QueryOptions,
        scratch: &mut QueryScratch,
    ) -> Result<InnerProductAnswer, TreeError> {
        let QueryScratch {
            sel,
            entries,
            uncovered,
            block,
            tmp,
            blocks,
            ..
        } = scratch;
        if !uncovered.is_empty() && opts.min_level == 0 {
            return Err(TreeError::Uncovered {
                index: query.indices()[uncovered[0]],
            });
        }
        let now = self.arrivals();
        let mut value = 0.0;
        let mut error_bound = 0.0;
        for sn in sel.iter() {
            let s = self
                .summary_at(sn.level, sn.queue_index)
                .expect("cover refers to a live node");
            let width = s.width();
            let lo = s.range().lo();
            let hi = s.range().hi();
            let served = &entries[sn.entries_start..sn.entries_start + sn.entries_len];
            // Per-point evaluation costs O(log width) each; one full
            // reconstruction costs O(width) and then O(1) per point.
            // Pick whichever is cheaper for this node's share.
            let log_w = usize::BITS - width.leading_zeros();
            if served.len() * log_w as usize > width {
                // Mapped covers carry a slot identity: reconstruct each
                // node once per batch and reuse the block for every query
                // it serves (bit-identical values either way).
                let block: &[f64] = if sn.slot != UNSERVED {
                    let cached = &mut blocks[sn.slot as usize];
                    if cached.is_empty() {
                        s.reconstruct_clamped_into(cached, tmp);
                    }
                    cached
                } else {
                    s.reconstruct_clamped_into(block, tmp);
                    block
                };
                let (start, _) = s.coverage(now);
                for &pos in served {
                    let idx = query.indices()[pos];
                    let w = query.weights()[pos];
                    let v = block[idx - start];
                    value += w * v;
                    error_bound += w.abs() * (v - lo).max(hi - v);
                }
            } else {
                for &pos in served {
                    let idx = query.indices()[pos];
                    let w = query.weights()[pos];
                    // error_bound_at's arithmetic over the shared value.
                    let v = s.value_at(now, idx);
                    value += w * v;
                    error_bound += w.abs() * (v - lo).max(hi - v);
                }
            }
        }
        // Extrapolate whatever reduced-level mode left uncovered.
        if !uncovered.is_empty() {
            let nearest = self
                .nodes()
                .filter(|(l, _, _)| *l >= opts.min_level)
                .min_by_key(|(_, _, s)| s.coverage(now).0);
            let Some((_, _, s)) = nearest else {
                return Err(TreeError::Uncovered {
                    index: query.indices()[uncovered[0]],
                });
            };
            let (start, _) = s.coverage(now);
            let v = s.value_at(now, start);
            for &pos in uncovered.iter() {
                let w = query.weights()[pos];
                value += w * v;
                error_bound += w.abs() * s.range().width();
            }
        }
        Ok(InnerProductAnswer {
            value,
            error_bound,
            meets_precision: error_bound <= query.delta(),
            nodes_used: sel.len(),
            extrapolated: uncovered.len(),
        })
    }

    /// [`Self::inner_product_with`] against an explicit [`QueryScratch`]
    /// — bit-identical answers, zero steady-state allocation.
    ///
    /// # Errors
    ///
    /// As [`Self::inner_product_with`].
    pub fn inner_product_with_scratch(
        &self,
        query: &InnerProductQuery,
        opts: QueryOptions,
        scratch: &mut QueryScratch,
    ) -> Result<InnerProductAnswer, TreeError> {
        self.check_query_indices(query)?;
        scratch.cover_scan(self, IdxList::Slice(query.indices()), opts);
        self.inner_eval(query, opts, scratch)
    }

    /// Answer a block of inner-product queries through the cover cache,
    /// amortizing the serving map across the batch.
    ///
    /// `out` is cleared and filled with one answer per query, in order —
    /// each bit-identical to [`Self::inner_product_with`] on the same
    /// tree.
    ///
    /// # Errors
    ///
    /// The error [`Self::inner_product_with`] would return for the first
    /// failing query; `out`'s contents are unspecified on error.
    pub fn inner_product_many(
        &self,
        queries: &[InnerProductQuery],
        opts: QueryOptions,
        scratch: &mut QueryScratch,
        out: &mut Vec<InnerProductAnswer>,
    ) -> Result<(), TreeError> {
        out.clear();
        scratch.cover.ensure(self, opts.min_level);
        scratch.reset_blocks();
        for query in queries {
            self.check_query_indices(query)?;
            scratch.cover_mapped(self, IdxList::Slice(query.indices()), opts);
            let ans = self.inner_eval(query, opts, scratch)?;
            out.push(ans);
        }
        Ok(())
    }

    /// [`Self::check_indices`] over a query, exploiting the profile tag:
    /// tagged profiles are contiguous ascending index runs, so one
    /// comparison against the last index replaces the full scan — with
    /// the error [`Self::check_indices`]'s ascending walk would report.
    fn check_query_indices(&self, query: &InnerProductQuery) -> Result<(), TreeError> {
        let indices = query.indices();
        if query.profile() == WeightProfile::General {
            return self.check_indices(indices);
        }
        debug_assert!(indices.windows(2).all(|w| w[1] == w[0] + 1));
        let window = self.config().window();
        if indices[indices.len() - 1] >= window {
            // First failing index of an ascending contiguous run.
            return Err(TreeError::IndexOutOfWindow {
                index: window.max(indices[0]),
                window,
            });
        }
        Ok(())
    }

    /// [`Self::range_query_with`] against an explicit [`QueryScratch`],
    /// writing matches into `out` (cleared first) — bit-identical results,
    /// zero steady-state allocation beyond `out` itself.
    ///
    /// # Errors
    ///
    /// As [`Self::range_query_with`]; `out`'s contents are unspecified on
    /// error.
    pub fn range_query_with_scratch(
        &self,
        query: &RangeQuery,
        opts: QueryOptions,
        scratch: &mut QueryScratch,
        out: &mut Vec<RangeMatch>,
    ) -> Result<(), TreeError> {
        let window = self.config().window();
        if query.oldest >= window {
            // First failing index of the reference's ascending scan.
            return Err(TreeError::IndexOutOfWindow {
                index: window.max(query.newest),
                window,
            });
        }
        let span = IdxList::Span {
            first: query.newest,
            len: query.oldest - query.newest + 1,
        };
        // Interval queries touch a large slice of the window, so the
        // serving map (one lookup per position) beats the nodes × span
        // scan even counting an occasional rebuild.
        scratch.cover_mapped(self, span, opts);
        if let Some(&pos) = scratch.uncovered.first() {
            return Err(TreeError::Uncovered {
                index: query.newest + pos,
            });
        }
        let now = self.arrivals();
        let band =
            crate::range::ValueRange::new(query.center - query.radius, query.center + query.radius);
        out.clear();
        for sn in &scratch.sel {
            let s = self
                .summary_at(sn.level, sn.queue_index)
                .expect("cover refers to a live node");
            // Prune: if the node's exact range cannot reach the band, no
            // value reconstructed from it (clamped into the range) can.
            if !s.range().intersects(&band) {
                continue;
            }
            let served = &scratch.entries[sn.entries_start..sn.entries_start + sn.entries_len];
            for &pos in served {
                let idx = query.newest + pos;
                let v = s.value_at(now, idx);
                if (v - query.center).abs() <= query.radius {
                    matches_push(out, idx, v);
                }
            }
        }
        // Window indices are unique, so the unstable sort yields exactly
        // the reference's stable-sorted order — without the merge-sort
        // allocation.
        out.sort_unstable_by_key(|m| m.index);
        Ok(())
    }

    /// [`Self::reconstruct_window`] against an explicit [`QueryScratch`],
    /// writing the window into `out` (cleared first) — bit-identical
    /// values, zero steady-state allocation beyond `out` itself.
    ///
    /// # Errors
    ///
    /// As [`Self::reconstruct_window`].
    pub fn reconstruct_window_into(
        &self,
        scratch: &mut QueryScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), TreeError> {
        let n = self.config().window();
        scratch.cover_mapped(
            self,
            IdxList::Span { first: 0, len: n },
            QueryOptions::default(),
        );
        if let Some(&pos) = scratch.uncovered.first() {
            // Position equals window index for the identity span.
            return Err(TreeError::Uncovered { index: pos });
        }
        let now = self.arrivals();
        out.clear();
        out.resize(n, 0.0);
        for sn in &scratch.sel {
            let s = self
                .summary_at(sn.level, sn.queue_index)
                .expect("cover refers to a live node");
            let served = &scratch.entries[sn.entries_start..sn.entries_start + sn.entries_len];
            for &pos in served {
                out[pos] = s.value_at(now, pos);
            }
        }
        Ok(())
    }

    /// Answer an inner-product query **entirely in the wavelet domain**:
    /// per covered node, `⟨w, x̂⟩ = ⟨adjoint(w), c⟩` is evaluated over the
    /// node's `k` stored coefficients — `O(k)` per node for the tagged
    /// exponential/linear profiles (closed-form transformed weights,
    /// cached per (width, profile) in the scratch's
    /// [`swat_wavelet::ProfileTable`]) — with no time-domain
    /// reconstruction at all.
    ///
    /// Differences from the exact path ([`Self::inner_product_with`]):
    ///
    /// * reconstructed values are **not** clamped into the node's exact
    ///   range, so `value` may differ from the exact path at
    ///   floating-point-ulp scale (and wherever clamping genuinely bites);
    /// * `error_bound` is the looser—but still **sound**—per-node bound
    ///   `Σ|w| · (hi − lo)`: the unclamped reconstruction provably lies
    ///   within the node's `[lo, hi]` alongside the truth, so each entry's
    ///   error is at most the range width. It is at most 2× the exact
    ///   path's bound.
    ///
    /// [`WeightProfile::General`] queries fall back to a dense adjoint
    /// transform per node (`O(width)`, like a reconstruction, but still
    /// allocation-free).
    ///
    /// # Errors
    ///
    /// As [`Self::inner_product_with`].
    pub fn inner_product_coeffs(
        &self,
        query: &InnerProductQuery,
        opts: QueryOptions,
        scratch: &mut QueryScratch,
    ) -> Result<InnerProductAnswer, TreeError> {
        self.check_query_indices(query)?;
        scratch.cover_mapped(self, IdxList::Slice(query.indices()), opts);
        let QueryScratch {
            sel,
            entries,
            uncovered,
            wdense,
            wadj,
            wtmp,
            profiles,
            ..
        } = scratch;
        if !uncovered.is_empty() && opts.min_level == 0 {
            return Err(TreeError::Uncovered {
                index: query.indices()[uncovered[0]],
            });
        }
        let now = self.arrivals();
        let qstart = query.indices()[0];
        let mut value = 0.0;
        let mut error_bound = 0.0;
        for sn in sel.iter() {
            let s = self
                .summary_at(sn.level, sn.queue_index)
                .expect("cover refers to a live node");
            let width = s.width();
            let range_width = s.range().width();
            let coeffs = s.coeffs().coefficients();
            let (start, _) = s.coverage(now);
            let served = &entries[sn.entries_start..sn.entries_start + sn.entries_len];
            // Served positions are ascending; for the tagged profiles the
            // query indices are contiguous from `qstart`, so a contiguous
            // position run is a contiguous local range of the block.
            let contiguous = served[served.len() - 1] - served[0] == served.len() - 1;
            let profile = match query.profile() {
                WeightProfile::Exponential if contiguous => Some(CanonicalProfile::Geometric),
                WeightProfile::Linear if contiguous => Some(CanonicalProfile::Ones),
                _ => None,
            };
            match profile {
                Some(CanonicalProfile::Geometric) => {
                    let a = query.indices()[served[0]] - start;
                    let b = query.indices()[served[served.len() - 1]] - start;
                    // w(local p) = (1/2)^(p + shift), shift = start − qstart.
                    let shift = start as i64 - qstart as i64;
                    let scale = 0.5f64.powi(shift as i32);
                    if a == 0 && b == width - 1 {
                        let tw = profiles.weights(CanonicalProfile::Geometric, width, coeffs.len());
                        value += scale * dot_coeffs(coeffs, tw);
                    } else {
                        value += scale
                            * dot_coeffs_clipped(coeffs, width, a, b, |lo, hi| {
                                profile_sum(CanonicalProfile::Geometric, lo, hi)
                            });
                    }
                    let sum_w = scale * profile_sum(CanonicalProfile::Geometric, a, b);
                    error_bound += sum_w * range_width;
                }
                Some(_) => {
                    let a = query.indices()[served[0]] - start;
                    let b = query.indices()[served[served.len() - 1]] - start;
                    // w(local p) = (m − (p + shift))/m = α + β·p.
                    let m = query.len() as f64;
                    let shift = (start as i64 - qstart as i64) as f64;
                    let alpha = (m - shift) / m;
                    let beta = -1.0 / m;
                    if a == 0 && b == width - 1 {
                        let ones = profiles.weights(CanonicalProfile::Ones, width, coeffs.len());
                        value += alpha * dot_coeffs(coeffs, ones);
                        let ramp = profiles.weights(CanonicalProfile::Ramp, width, coeffs.len());
                        value += beta * dot_coeffs(coeffs, ramp);
                    } else {
                        value += alpha
                            * dot_coeffs_clipped(coeffs, width, a, b, |lo, hi| {
                                profile_sum(CanonicalProfile::Ones, lo, hi)
                            });
                        value += beta
                            * dot_coeffs_clipped(coeffs, width, a, b, |lo, hi| {
                                profile_sum(CanonicalProfile::Ramp, lo, hi)
                            });
                    }
                    // Linear weights are positive over the query, so
                    // Σ|w| = Σw = α·count + β·ramp-sum.
                    let sum_w = alpha * profile_sum(CanonicalProfile::Ones, a, b)
                        + beta * profile_sum(CanonicalProfile::Ramp, a, b);
                    error_bound += sum_w * range_width;
                }
                None => {
                    // Dense adjoint fallback: lay the served weights into
                    // block-local positions (zeros elsewhere) and transform.
                    wdense.clear();
                    wdense.resize(width, 0.0);
                    let mut sum_abs = 0.0;
                    for &pos in served {
                        let local = query.indices()[pos] - start;
                        let w = query.weights()[pos];
                        wdense[local] = w;
                        sum_abs += w.abs();
                    }
                    adjoint_into(wdense, wadj, wtmp).expect("node width is a power of two");
                    value += dot_coeffs(coeffs, wadj);
                    error_bound += sum_abs * range_width;
                }
            }
        }
        // Extrapolation mirrors the exact path (the bound there is already
        // the range width per entry).
        if !uncovered.is_empty() {
            let nearest = self
                .nodes()
                .filter(|(l, _, _)| *l >= opts.min_level)
                .min_by_key(|(_, _, s)| s.coverage(now).0);
            let Some((_, _, s)) = nearest else {
                return Err(TreeError::Uncovered {
                    index: query.indices()[uncovered[0]],
                });
            };
            let (start, _) = s.coverage(now);
            let v = s.value_at(now, start);
            for &pos in uncovered.iter() {
                let w = query.weights()[pos];
                value += w * v;
                error_bound += w.abs() * s.range().width();
            }
        }
        Ok(InnerProductAnswer {
            value,
            error_bound,
            meets_precision: error_bound <= query.delta(),
            nodes_used: sel.len(),
            extrapolated: uncovered.len(),
        })
    }
}

/// Push helper kept out of the hot loop body so the borrow of `out` stays
/// narrow.
#[inline]
fn matches_push(out: &mut Vec<RangeMatch>, index: usize, value: f64) {
    out.push(RangeMatch { index, value });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwatConfig;

    fn warm_tree(n: usize, k: usize, values: impl IntoIterator<Item = f64>) -> SwatTree {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
        tree.extend(values);
        assert!(tree.is_warm());
        tree
    }

    fn covers_equal(a: &QueryScratch, b: &QueryScratch) -> bool {
        a.sel.len() == b.sel.len()
            && a.sel.iter().zip(&b.sel).all(|(x, y)| {
                x.level == y.level
                    && x.queue_index == y.queue_index
                    && x.entries_start == y.entries_start
                    && x.entries_len == y.entries_len
            })
            && a.entries == b.entries
            && a.uncovered == b.uncovered
    }

    #[test]
    fn mapped_cover_equals_scan_cover() {
        let tree = warm_tree(64, 4, (0..200).map(|i| ((i * 13) % 29) as f64));
        let mut scan = QueryScratch::new();
        let mut mapped = QueryScratch::new();
        let cases: Vec<Vec<usize>> = vec![
            vec![0],
            vec![63],
            vec![0, 1, 2, 3, 17, 40, 63],
            (0..64).collect(),
            (5..45).collect(),
            vec![62, 3, 31, 0],
        ];
        for min_level in [0usize, 2, 4] {
            let opts = QueryOptions::at_level(min_level);
            for idx in &cases {
                scan.cover_scan(&tree, IdxList::Slice(idx), opts);
                mapped.cover_mapped(&tree, IdxList::Slice(idx), opts);
                assert!(
                    covers_equal(&scan, &mapped),
                    "cover mismatch at min_level {min_level} for {idx:?}"
                );
            }
        }
    }

    #[test]
    fn block_cache_never_leaks_values_across_trees() {
        // Two trees with *identical geometry* (same window, k, arrival
        // count) but different data: the serving map may be reused across
        // them, reconstructed value blocks must not be.
        let n = 128;
        let a = warm_tree(n, 8, (0..3 * n).map(|i| ((i * 31) % 101) as f64));
        let b = warm_tree(n, 8, (0..3 * n).map(|i| ((i * 17) % 89) as f64 - 40.0));
        let queries = [
            InnerProductQuery::exponential(n, 1e9),
            InnerProductQuery::linear_at(5, n - 5, 1e9),
        ];
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        for tree in [&a, &b, &a] {
            tree.inner_product_many(&queries, QueryOptions::default(), &mut scratch, &mut out)
                .unwrap();
            for (q, got) in queries.iter().zip(&out) {
                let want =
                    crate::query::reference::inner_product_with(tree, q, QueryOptions::default())
                        .unwrap();
                assert_eq!(got.value.to_bits(), want.value.to_bits());
                assert_eq!(got.error_bound.to_bits(), want.error_bound.to_bits());
            }
        }
    }

    #[test]
    fn cover_cache_rebuilds_only_on_geometry_change() {
        let mut tree = warm_tree(32, 2, (0..96).map(|i| i as f64));
        let mut scratch = QueryScratch::new();
        let opts = QueryOptions::default();
        scratch.cover_mapped(&tree, IdxList::Span { first: 0, len: 32 }, opts);
        assert_eq!(scratch.cover.rebuilds, 1);
        // Same tree, same options: cached.
        for _ in 0..5 {
            scratch.cover_mapped(&tree, IdxList::Span { first: 0, len: 32 }, opts);
        }
        assert_eq!(scratch.cover.rebuilds, 1);
        // A push changes the arrival count: invalidated.
        tree.push(7.0);
        scratch.cover_mapped(&tree, IdxList::Span { first: 0, len: 32 }, opts);
        assert_eq!(scratch.cover.rebuilds, 2);
        // Changing min_level also invalidates.
        scratch.cover_mapped(
            &tree,
            IdxList::Span { first: 0, len: 32 },
            QueryOptions::at_level(1),
        );
        assert_eq!(scratch.cover.rebuilds, 3);
        // A different tree with a different age is caught too.
        let other = warm_tree(32, 2, (0..100).map(|i| i as f64));
        scratch.cover_mapped(
            &other,
            IdxList::Span { first: 0, len: 32 },
            QueryOptions::at_level(1),
        );
        assert_eq!(scratch.cover.rebuilds, 4);
    }

    #[test]
    fn scratch_capacity_stabilizes_after_warmup() {
        let tree = warm_tree(128, 4, (0..400).map(|i| ((i * 7) % 53) as f64));
        let mut scratch = QueryScratch::new();
        assert_eq!(QueryScratch::new().bytes_reserved(), 0);
        let indices: Vec<usize> = (0..128).collect();
        let queries = [
            InnerProductQuery::exponential(64, 1e9),
            InnerProductQuery::linear_at(10, 100, 1e9),
        ];
        let mut pts = Vec::new();
        let mut ips = Vec::new();
        let mut win = Vec::new();
        let run = |scratch: &mut QueryScratch,
                   pts: &mut Vec<PointAnswer>,
                   ips: &mut Vec<InnerProductAnswer>,
                   win: &mut Vec<f64>| {
            tree.point_many(&indices, QueryOptions::default(), scratch, pts)
                .unwrap();
            tree.inner_product_many(&queries, QueryOptions::default(), scratch, ips)
                .unwrap();
            for q in &queries {
                tree.inner_product_coeffs(q, QueryOptions::default(), scratch)
                    .unwrap();
            }
            tree.reconstruct_window_into(scratch, win).unwrap();
        };
        run(&mut scratch, &mut pts, &mut ips, &mut win);
        let warm = scratch.bytes_reserved();
        assert!(warm > 0);
        for _ in 0..10 {
            run(&mut scratch, &mut pts, &mut ips, &mut win);
            assert_eq!(scratch.bytes_reserved(), warm, "buffers regrew");
        }
    }

    #[test]
    fn kernel_is_close_and_sound_on_lossless_trees() {
        // With k = width the unclamped reconstruction is exact, so the
        // kernel value must match the exact inner product to fp tolerance.
        let values: Vec<f64> = (0..96).map(|i| ((i * 31) % 17) as f64 - 5.0).collect();
        let tree = warm_tree(32, 32, values.iter().copied());
        let window: Vec<f64> = (0..32).map(|i| values[values.len() - 1 - i]).collect();
        let mut scratch = QueryScratch::new();
        for q in [
            InnerProductQuery::exponential(32, 1e9),
            InnerProductQuery::exponential_at(3, 20, 1e9),
            InnerProductQuery::linear(16, 1e9),
            InnerProductQuery::linear_at(7, 21, 1e9),
            InnerProductQuery::point(11, 1e9),
            InnerProductQuery::new(vec![1, 4, 9, 16, 25], vec![0.5, -2.0, 3.0, 1.0, -0.25], 1e9)
                .unwrap(),
        ] {
            let exact = q.exact(&window);
            let ans = tree
                .inner_product_coeffs(&q, QueryOptions::default(), &mut scratch)
                .unwrap();
            assert!(
                (ans.value - exact).abs() <= 1e-9 * (1.0 + exact.abs()),
                "{q:?}: kernel {} vs exact {exact}",
                ans.value
            );
        }
    }

    #[test]
    fn kernel_bound_is_sound_and_at_most_twice_reference() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 97) as f64 * 0.5).collect();
        let tree = warm_tree(64, 4, values.iter().copied());
        let window: Vec<f64> = (0..64).map(|i| values[values.len() - 1 - i]).collect();
        let mut scratch = QueryScratch::new();
        for q in [
            InnerProductQuery::exponential(64, 1e9),
            InnerProductQuery::exponential_at(9, 40, 1e9),
            InnerProductQuery::linear(48, 1e9),
            InnerProductQuery::linear_at(20, 44, 1e9),
            InnerProductQuery::new(vec![0, 5, 33, 60], vec![1.5, -0.5, 2.0, 1.0], 1e9).unwrap(),
        ] {
            let exact = q.exact(&window);
            let kernel = tree
                .inner_product_coeffs(&q, QueryOptions::default(), &mut scratch)
                .unwrap();
            let reference =
                crate::query::reference::inner_product_with(&tree, &q, QueryOptions::default())
                    .unwrap();
            assert!(
                (kernel.value - exact).abs() <= kernel.error_bound + 1e-9,
                "{q:?}: |{} - {exact}| > {}",
                kernel.value,
                kernel.error_bound
            );
            assert!(
                kernel.error_bound <= 2.0 * reference.error_bound + 1e-9,
                "{q:?}: kernel bound {} vs reference {}",
                kernel.error_bound,
                reference.error_bound
            );
            assert_eq!(kernel.nodes_used, reference.nodes_used);
        }
    }
}
