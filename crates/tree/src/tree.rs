//! The SWAT approximation tree.
//!
//! # Structure
//!
//! For a sliding window of `N = 2^n` values the tree has `n` levels. Each
//! level `l < n-1` retains the **three** most recent level-`l` summaries —
//! the paper's *Right*, *Shift* and *Left* nodes — and the top level
//! retains one, for `3 log N − 2` nodes total. A level-`l` summary
//! describes a dyadic block of `2^(l+1)` consecutive stream values and is
//! immutable; the paper's shift `L := S; S := R; R := new` is realized by
//! pushing the new summary at the front of a bounded queue.
//!
//! # Update (the paper's Figure 3a)
//!
//! On each arrival the tree produces a fresh level-0 summary from the two
//! newest raw values. Whenever the arrival count is divisible by `2^l`,
//! level `l` produces a fresh summary by *merging* the level-`l−1` Right
//! node (the `2^l` newest values) with the level-`l−1` Left node (the
//! `2^l` values before those): `contents(R_l) := DWT(R_{l−1}, L_{l−1})`.
//! The merge is the exact `O(k)` coefficient merge of `swat-wavelet`, so
//! one complete cycle of `N` arrivals costs `Σ_l 3·O(k)·N/2^l = O(kN)`
//! work — `O(k)` amortized per arrival, matching §2.6 of the paper.
//!
//! Because refreshes are delayed (level `l` only refreshes every `2^l`
//! arrivals), a summary *ages*: the block it describes slides into the
//! past at one window index per arrival. [`Summary::coverage`] accounts
//! for this, reproducing the paper's execution trace (Figure 2) exactly —
//! see the `fig2_trace` integration test.

use std::collections::VecDeque;

use crate::config::{SwatConfig, TreeError};
use crate::node::Summary;
use crate::range::ValueRange;
use swat_wavelet::{HaarCoeffs, MergeScratch};

/// Which of the three per-level nodes a summary currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodePos {
    /// The newest summary at its level (`R` in the paper).
    Right,
    /// The middle generation (`S`).
    Shift,
    /// The oldest retained generation (`L`).
    Left,
}

impl NodePos {
    /// The paper's query-time traversal order within a level: `R → S → L`.
    pub const ORDER: [NodePos; 3] = [NodePos::Right, NodePos::Shift, NodePos::Left];

    fn from_queue_index(i: usize) -> NodePos {
        match i {
            0 => NodePos::Right,
            1 => NodePos::Shift,
            2 => NodePos::Left,
            _ => unreachable!("levels retain at most three summaries"),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            NodePos::Right => "R",
            NodePos::Shift => "S",
            NodePos::Left => "L",
        }
    }
}

/// One level of the tree: up to three generations of summaries, newest
/// first, stored **inline** in a fixed three-slot array rather than a
/// heap-backed queue. A level never retains more than three summaries
/// (one at the top), so the inline slab costs nothing in capacity while
/// eliminating one heap allocation per level per tree — at a million
/// streams that per-stream fixed cost dominates, so the whole tree's
/// node storage collapses to a single `Vec<Level>` allocation
/// (`swat scale-bench` reports the resulting bytes/stream).
#[derive(Debug, Clone)]
pub(crate) struct Level {
    nodes: [Option<Summary>; 3],
    len: u8,
    capacity: u8,
}

impl Level {
    fn new(capacity: usize) -> Self {
        debug_assert!((1..=3).contains(&capacity), "levels retain 1..=3 summaries");
        Level {
            nodes: [None, None, None],
            len: 0,
            capacity: capacity as u8,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity as usize
    }

    fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// The summary at queue index `i` (0 = newest), if populated.
    pub(crate) fn get(&self, i: usize) -> Option<&Summary> {
        if i < self.len() {
            self.nodes[i].as_ref()
        } else {
            None
        }
    }

    /// The newest summary (the paper's `R`), if any.
    pub(crate) fn front(&self) -> Option<&Summary> {
        self.get(0)
    }

    /// Iterate populated summaries newest-first.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Summary> {
        self.nodes[..self.len()]
            .iter()
            .map(|s| s.as_ref().expect("slots below len are populated"))
    }

    /// Install a fresh summary, returning the generation it evicts (if the
    /// level was at capacity) so callers can recycle its heap storage.
    pub(crate) fn push(&mut self, s: Summary) -> Option<Summary> {
        let cap = self.capacity();
        let evicted = if self.len() == cap {
            self.nodes[cap - 1].take()
        } else {
            None
        };
        for i in (1..cap).rev() {
            if self.nodes[i - 1].is_some() {
                self.nodes[i] = self.nodes[i - 1].take();
            }
        }
        self.nodes[0] = Some(s);
        self.len = (self.len + 1).min(self.capacity);
        evicted
    }

    /// Replace the level's contents from a restore queue (newest first).
    /// Callers validate the length against the capacity.
    fn assign(&mut self, queue: VecDeque<Summary>) {
        debug_assert!(queue.len() <= self.capacity());
        self.nodes = [None, None, None];
        self.len = queue.len() as u8;
        for (i, s) in queue.into_iter().enumerate() {
            self.nodes[i] = Some(s);
        }
    }
}

/// A SWAT tree summarizing the last `N` values of a data stream at
/// multiple resolutions.
///
/// See the [module docs](self) for the structure and update rules, and the
/// [`crate::query`] module for the query interface.
#[derive(Debug, Clone)]
pub struct SwatTree {
    pub(crate) config: SwatConfig,
    /// Total arrivals so far (the paper's time `t`).
    pub(crate) t: u64,
    /// The newest raw value (`d_0`), if any.
    pub(crate) last: Option<f64>,
    pub(crate) levels: Vec<Level>,
    /// Hoisted merge-buffer pool: evicted summaries' heap storage is
    /// recycled across calls, so repeated small batches (the daemon
    /// ingest path) stop re-warming a fresh scratch per call. Empty —
    /// one `Vec` header — until a budget `k > 3` actually evicts.
    pub(crate) pool: MergeScratch,
}

impl SwatTree {
    /// An empty tree; summaries populate as values arrive (all levels are
    /// populated after at most `2N` arrivals — see [`SwatTree::is_warm`]).
    pub fn new(config: SwatConfig) -> Self {
        let n = config.levels();
        let levels = (0..n)
            .map(|l| Level::new(if l + 1 == n { 1 } else { 3 }))
            .collect();
        SwatTree {
            config,
            t: 0,
            last: None,
            levels,
            pool: MergeScratch::new(),
        }
    }

    /// A tree bulk-initialized from one full window of values (given in
    /// arrival order, oldest first), with every level freshly refreshed —
    /// the state of the paper's Figure 2(a).
    ///
    /// # Errors
    ///
    /// [`TreeError::BadInitLength`] unless exactly `config.window()`
    /// values are supplied.
    pub fn from_window(config: SwatConfig, values: &[f64]) -> Result<Self, TreeError> {
        let n_vals = config.window();
        if values.len() != n_vals {
            return Err(TreeError::BadInitLength {
                got: values.len(),
                want: n_vals,
            });
        }
        let mut tree = SwatTree::new(config);
        let t = n_vals as u64;
        tree.t = t;
        tree.last = values.last().copied();
        let k = config.coefficients();
        for l in 0..config.levels() {
            let width = 1usize << (l + 1);
            let generations = tree.levels[l].capacity();
            // Oldest generation first so the newest ends up at the front.
            for g in (0..generations).rev() {
                let created_at = t - (g as u64) * (width as u64 / 2);
                // Block = absolute positions [created_at - width, created_at).
                let hi = created_at as usize;
                let lo = hi - width;
                // Signals are stored newest-first (window index order).
                let mut block: Vec<f64> = values[lo..hi].to_vec();
                block.reverse();
                let coeffs =
                    HaarCoeffs::from_signal(&block, k).expect("window blocks are powers of two");
                let summary = Summary::new(coeffs, ValueRange::of(&block), created_at, l);
                tree.levels[l].push(summary);
            }
        }
        Ok(tree)
    }

    /// Assemble a tree from restored parts (the snapshot module's restore
    /// path). Queues must hold summaries newest-first with levels matching
    /// their position.
    pub(crate) fn from_restored(
        config: SwatConfig,
        t: u64,
        last: Option<f64>,
        queues: Vec<VecDeque<Summary>>,
    ) -> Result<Self, TreeError> {
        if queues.len() != config.levels() {
            return Err(TreeError::RestoredLevelCount {
                got: queues.len(),
                want: config.levels(),
            });
        }
        let mut tree = SwatTree::new(config);
        tree.t = t;
        tree.last = last;
        for (l, queue) in queues.into_iter().enumerate() {
            for s in &queue {
                if s.level() != l {
                    return Err(TreeError::RestoredLevelMismatch {
                        queue: l,
                        summary: s.level(),
                    });
                }
                if s.created_at() > t {
                    return Err(TreeError::RestoredFromFuture {
                        created_at: s.created_at(),
                        now: t,
                    });
                }
            }
            if queue.len() > tree.levels[l].capacity() {
                return Err(TreeError::RestoredOverCapacity {
                    level: l,
                    got: queue.len(),
                    capacity: tree.levels[l].capacity(),
                });
            }
            tree.levels[l].assign(queue);
        }
        Ok(tree)
    }

    /// Feed one new stream value, updating the affected levels
    /// (`O(k)` amortized).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite; see [`SwatTree::try_push`] for the
    /// fallible variant.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "stream values must be finite");
        let k = self.config.coefficients();
        let mut pool = std::mem::take(&mut self.pool);
        self.push_one(value, k, &mut pool);
        self.pool = pool;
    }

    /// As [`SwatTree::push`], but rejecting non-finite input with an error
    /// instead of panicking — the form a production ingest path wants.
    ///
    /// # Errors
    ///
    /// [`TreeError::NonFinite`] if `value` is NaN or infinite; the tree is
    /// left unchanged.
    pub fn try_push(&mut self, value: f64) -> Result<(), TreeError> {
        if !value.is_finite() {
            return Err(TreeError::NonFinite { position: self.t });
        }
        self.push(value);
        Ok(())
    }

    /// Feed a block of arrivals in one pass — the batched fast path.
    ///
    /// Equivalent to calling [`SwatTree::push`] per value (the final tree
    /// state is bit-identical; the `ingest_equivalence` property suite
    /// proves it node by node against the frozen
    /// [`crate::ingest::reference`] path), but the batch is processed in
    /// `2^L`-aligned chunks through the blocked cascade of
    /// [`crate::ingest`]: level-0 summaries come straight off the input
    /// slice as flat `avg`/`det` lanes, each level's refreshes for the
    /// whole chunk run as one precompiled SoA merge kernel, and slab
    /// updates, budget reads, `ValueRange` unions, and eviction reclaim
    /// are amortized per chunk instead of per value. Budgets `k <= 3`
    /// allocate nothing; larger budgets reach steady-state zero
    /// allocation via the hoisted buffer pool (see `tests/ingest_alloc`).
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite (checked up front, before any
    /// value is ingested); see [`SwatTree::try_push_batch`].
    pub fn push_batch(&mut self, values: &[f64]) {
        assert!(
            values.iter().fold(true, |ok, v| ok & v.is_finite()),
            "stream values must be finite"
        );
        crate::ingest::with_thread_scratch(|scratch| self.push_batch_core(values, scratch));
    }

    /// As [`SwatTree::push_batch`], but reusing a caller-owned
    /// [`IngestScratch`](crate::ingest::IngestScratch) (mirroring the
    /// query engine's [`crate::QueryScratch`]) instead of the thread-local
    /// one — for callers that drive many trees from one loop, or want a
    /// non-default chunk size.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite (checked up front, before any
    /// value is ingested).
    pub fn push_batch_with_scratch(
        &mut self,
        values: &[f64],
        scratch: &mut crate::ingest::IngestScratch,
    ) {
        assert!(
            values.iter().fold(true, |ok, v| ok & v.is_finite()),
            "stream values must be finite"
        );
        self.push_batch_core(values, scratch);
    }

    /// As [`SwatTree::push_batch`], but rejecting non-finite input with an
    /// error. The whole block is validated before any value is ingested,
    /// so on error the tree is unchanged.
    ///
    /// Validation runs chunk-by-chunk with a branch-free all-finite
    /// reduction (which the compiler vectorizes) and bails at the first
    /// bad chunk, scanning for the exact position only inside that chunk —
    /// one cheap pass over good input instead of the old full-slice
    /// `position` walk, while keeping the all-or-nothing contract: no
    /// chunk is ingested until every chunk has validated.
    ///
    /// # Errors
    ///
    /// [`TreeError::NonFinite`] naming the stream position of the first
    /// offending value.
    pub fn try_push_batch(&mut self, values: &[f64]) -> Result<(), TreeError> {
        const VALIDATE_CHUNK: usize = 512;
        let mut offset = 0usize;
        for chunk in values.chunks(VALIDATE_CHUNK) {
            if !chunk.iter().fold(true, |ok, v| ok & v.is_finite()) {
                let in_chunk = chunk
                    .iter()
                    .position(|v| !v.is_finite())
                    .expect("the chunk reduction found a non-finite value");
                return Err(TreeError::NonFinite {
                    position: self.t + (offset + in_chunk) as u64,
                });
            }
            offset += chunk.len();
        }
        crate::ingest::with_thread_scratch(|scratch| self.push_batch_core(values, scratch));
        Ok(())
    }

    /// The shared per-arrival update: the scalar ingestion entry points
    /// funnel here, and the blocked path of [`crate::ingest`] uses it for
    /// unaligned heads and tails, so the paths cannot diverge there.
    pub(crate) fn push_one(&mut self, value: f64, k: usize, scratch: &mut MergeScratch) {
        debug_assert!(value.is_finite(), "callers validate finiteness");
        let prev = self.last.replace(value);
        self.t += 1;
        let Some(prev) = prev else {
            return; // First value ever: no pair to summarize yet.
        };
        // Level 0: summarize the two newest raw values (d_0, d_1).
        let coeffs = HaarCoeffs::merge_with(
            &HaarCoeffs::scalar(value),
            &HaarCoeffs::scalar(prev),
            k,
            scratch,
        )
        .expect("scalars always merge");
        let summary = Summary::new(coeffs, ValueRange::of(&[value, prev]), self.t, 0);
        if let Some(evicted) = self.levels[0].push(summary) {
            scratch.reclaim(evicted.into_coeffs());
        }
        self.cascade_from(1, k, scratch);
    }

    /// Run the refresh cascade at the current clock for levels
    /// `from_level..`, consuming each level's child Right (newest) and
    /// Left (two generations back) nodes.
    ///
    /// Level `l` refreshes when `2^l` divides `t`; `2^l | t` exactly when
    /// `l <= trailing_zeros(t)`, which bounds the cascade without
    /// per-level divisibility checks (odd arrivals skip the loop
    /// entirely). The blocked chunk path calls this with the first level
    /// *above* its chunk to finish a cascade taller than the chunk.
    pub(crate) fn cascade_from(&mut self, from_level: usize, k: usize, scratch: &mut MergeScratch) {
        let top = (self.t.trailing_zeros() as usize).min(self.levels.len() - 1);
        for l in from_level..=top {
            let child = &self.levels[l - 1];
            let (Some(right), Some(left)) = (child.front(), child.get(2)) else {
                break; // Still warming up.
            };
            debug_assert_eq!(right.created_at(), self.t);
            debug_assert_eq!(left.created_at(), self.t - (1 << l));
            let coeffs = HaarCoeffs::merge_with(right.coeffs(), left.coeffs(), k, scratch)
                .expect("sibling blocks have equal widths");
            let range = right.range().union(left.range());
            let summary = Summary::new(coeffs, range, self.t, l);
            if let Some(evicted) = self.levels[l].push(summary) {
                scratch.reclaim(evicted.into_coeffs());
            }
        }
    }

    /// Feed a sequence of values in arrival order.
    ///
    /// Values are buffered into aligned blocks and ingested through the
    /// same chunked cascade as [`SwatTree::push_batch`].
    ///
    /// # Panics
    ///
    /// Panics on non-finite values. Matching the streaming contract of
    /// [`SwatTree::try_extend`], values before the offending one are
    /// ingested before the panic.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        let bad = crate::ingest::extend_buffered(self, values);
        assert!(bad.is_none(), "stream values must be finite");
    }

    /// Feed a sequence of values, stopping at the first non-finite one.
    ///
    /// Values before the offending one are ingested (streams cannot be
    /// rewound); callers needing all-or-nothing semantics over a slice
    /// should use [`SwatTree::try_push_batch`].
    ///
    /// # Errors
    ///
    /// [`TreeError::NonFinite`] naming the stream position of the first
    /// non-finite value.
    pub fn try_extend<I: IntoIterator<Item = f64>>(&mut self, values: I) -> Result<(), TreeError> {
        match crate::ingest::extend_buffered(self, values) {
            None => Ok(()),
            Some(position) => Err(TreeError::NonFinite { position }),
        }
    }

    /// Total number of arrivals observed.
    pub fn arrivals(&self) -> u64 {
        self.t
    }

    /// The configuration this tree was built with.
    pub fn config(&self) -> &SwatConfig {
        &self.config
    }

    /// The newest raw value, if any has arrived.
    pub fn newest(&self) -> Option<f64> {
        self.last
    }

    /// Whether every node of the tree is populated (guaranteed after `2N`
    /// arrivals; [`SwatTree::from_window`] trees are warm immediately).
    pub fn is_warm(&self) -> bool {
        self.levels.iter().all(Level::is_full)
    }

    /// The summary at `(level, queue index)` — the query engine's direct
    /// access path for cover-cache slots (queue index 0 = `R`, 1 = `S`,
    /// 2 = `L`, matching the traversal order of [`SwatTree::nodes`]).
    pub(crate) fn summary_at(&self, level: usize, queue_index: usize) -> Option<&Summary> {
        self.levels.get(level)?.get(queue_index)
    }

    /// The summary at `(level, pos)`, if populated.
    pub fn node(&self, level: usize, pos: NodePos) -> Option<&Summary> {
        let idx = match pos {
            NodePos::Right => 0,
            NodePos::Shift => 1,
            NodePos::Left => 2,
        };
        self.levels.get(level)?.get(idx)
    }

    /// Iterate all populated summaries in the paper's query order: levels
    /// ascending, `R → S → L` within a level.
    pub fn nodes(&self) -> impl Iterator<Item = (usize, NodePos, &Summary)> {
        self.levels.iter().enumerate().flat_map(|(l, lvl)| {
            lvl.iter()
                .enumerate()
                .map(move |(i, s)| (l, NodePos::from_queue_index(i), s))
        })
    }

    /// Number of populated summaries (`3 log N − 2` once warm).
    pub fn summary_count(&self) -> usize {
        self.levels.iter().map(Level::len).sum()
    }

    /// Approximate memory footprint of the tree, in bytes: the tree
    /// header, the inline level slab (all node slots, populated or not),
    /// and the heap coefficient storage of populated summaries. Summary
    /// structs live inline in the slab, so only their coefficient heap
    /// bytes are added on top.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.levels.capacity() * std::mem::size_of::<Level>()
            + self
                .nodes()
                .map(|(_, _, s)| s.coeffs().stored() * std::mem::size_of::<f64>())
                .sum::<usize>()
    }

    /// Order-sensitive FNV-1a digest of the tree's complete observable
    /// state: configuration, clock, newest value, and every summary's
    /// exact bits. Query evaluation is a deterministic function of
    /// exactly this state, so two trees with equal digests answer every
    /// query identically — the bit-identity witness the durability
    /// layer's recovery proofs are property-tested against.
    pub fn answers_digest(&self) -> u64 {
        let mut h = digest::SEED;
        h = digest::mix(h, self.config.window() as u64);
        h = digest::mix(h, self.config.coefficients() as u64);
        h = digest::mix(h, self.config.min_level() as u64);
        h = digest::mix(h, self.t);
        match self.last {
            Some(v) => {
                h = digest::mix(h, 1);
                h = digest::mix(h, v.to_bits());
            }
            None => h = digest::mix(h, 0),
        }
        for (level, _, s) in self.nodes() {
            h = digest::mix(h, level as u64);
            h = digest::mix(h, s.created_at());
            h = digest::mix(h, s.range().lo().to_bits());
            h = digest::mix(h, s.range().hi().to_bits());
            for &c in s.coeffs().coefficients() {
                h = digest::mix(h, c.to_bits());
            }
        }
        h
    }

    /// Render the populated nodes with their current coverages — a
    /// diagnostic mirroring the paper's Figure 2 diagrams.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "t = {}", self.t);
        for (l, lvl) in self.levels.iter().enumerate().rev() {
            let _ = write!(out, "level {l}:");
            for (i, s) in lvl.iter().enumerate() {
                let (a, b) = s.coverage(self.t);
                let _ = write!(
                    out,
                    "  {}=[{a}-{b}] avg {:.3}",
                    NodePos::from_queue_index(i).name(),
                    s.coeffs().average()
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// FNV-1a word mixing shared by [`SwatTree::answers_digest`] and the
/// multi-stream digest in [`crate::multi`].
pub(crate) mod digest {
    pub(crate) const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn mix(h: u64, word: u64) -> u64 {
        (h ^ word).wrapping_mul(PRIME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> SwatConfig {
        SwatConfig::new(n).unwrap()
    }

    #[test]
    fn empty_tree_shape() {
        let tree = SwatTree::new(cfg(16));
        assert_eq!(tree.arrivals(), 0);
        assert_eq!(tree.summary_count(), 0);
        assert!(!tree.is_warm());
        assert!(tree.newest().is_none());
    }

    #[test]
    fn warmup_completes_within_two_windows() {
        let mut tree = SwatTree::new(cfg(16));
        tree.extend((0..32).map(|i| i as f64));
        assert!(
            tree.is_warm(),
            "not warm after 2N arrivals:\n{}",
            tree.render()
        );
        assert_eq!(tree.summary_count(), 10); // 3*4 - 2
    }

    #[test]
    fn from_window_is_warm_and_counts_match_paper() {
        let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let tree = SwatTree::from_window(cfg(16), &values).unwrap();
        assert!(tree.is_warm());
        assert_eq!(tree.summary_count(), 10);
        assert_eq!(tree.arrivals(), 16);
        // Fresh coverages match Figure 2(a): R_l = [0, 2^(l+1)-1], etc.
        for l in 0..3 {
            let w = 1usize << (l + 1);
            let r = tree.node(l, NodePos::Right).unwrap().coverage(16);
            let s = tree.node(l, NodePos::Shift).unwrap().coverage(16);
            let left = tree.node(l, NodePos::Left).unwrap().coverage(16);
            assert_eq!(r, (0, w - 1));
            assert_eq!(s, (w / 2, w / 2 + w - 1));
            assert_eq!(left, (w, 2 * w - 1));
        }
        assert_eq!(tree.node(3, NodePos::Right).unwrap().coverage(16), (0, 15));
        assert!(tree.node(3, NodePos::Shift).is_none());
    }

    #[test]
    fn from_window_rejects_wrong_length() {
        assert!(matches!(
            SwatTree::from_window(cfg(8), &[1.0; 7]),
            Err(TreeError::BadInitLength { got: 7, want: 8 })
        ));
    }

    #[test]
    fn averages_are_exact() {
        // With k = 1 each node stores the exact average of its block.
        let values: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        let tree = SwatTree::from_window(cfg(16), &values).unwrap();
        // R_3 = average of everything.
        let root = tree.node(3, NodePos::Right).unwrap();
        assert!((root.coeffs().average() - 8.5).abs() < 1e-12);
        // R_0 = average of the two newest (16, 15).
        let r0 = tree.node(0, NodePos::Right).unwrap();
        assert!((r0.coeffs().average() - 15.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_matches_from_window_at_refresh_points() {
        // Stream 32 values into an empty tree; at t = 32 every level just
        // refreshed, so every node must equal the bulk-initialized tree
        // over the last 16 values.
        let values: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64).collect();
        let mut streamed = SwatTree::new(cfg(16));
        streamed.extend(values.iter().copied());
        let bulk = SwatTree::from_window(cfg(16), &values[16..]).unwrap();
        for (l, pos, s) in bulk.nodes() {
            let other = streamed.node(l, pos).unwrap();
            assert_eq!(
                s.coverage(16),
                {
                    let (a, b) = other.coverage(32);
                    (a, b)
                },
                "coverage mismatch at level {l} {}",
                pos.name()
            );
            assert!(
                (s.coeffs().average() - other.coeffs().average()).abs() < 1e-9,
                "average mismatch at level {l} {}",
                pos.name()
            );
        }
    }

    #[test]
    fn node_ranges_enclose_block_values() {
        let values: Vec<f64> = (0..64).map(|i| ((i * 31) % 17) as f64).collect();
        let mut tree = SwatTree::new(cfg(16));
        for &v in &values {
            tree.push(v);
        }
        let t = tree.arrivals() as usize;
        for (_, _, s) in tree.nodes() {
            let created = s.created_at() as usize;
            let block = &values[created - s.width()..created];
            for &v in block {
                assert!(s.range().contains(v), "range {} missing {v}", s.range());
            }
            // And the range is tight: its endpoints are attained.
            let lo = block.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = block.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(s.range().lo(), lo);
            assert_eq!(s.range().hi(), hi);
        }
        let _ = t;
    }

    #[test]
    fn refresh_cadence_matches_levels() {
        // Level l refreshes exactly when 2^l divides t.
        let mut tree = SwatTree::new(cfg(16));
        tree.extend((0..64).map(|i| i as f64));
        for extra in 1..=16u64 {
            tree.push(extra as f64);
            let t = tree.arrivals();
            for l in 0..4 {
                let r = tree.node(l, NodePos::Right).unwrap();
                let expected_refresh = t - t % (1u64 << l);
                assert_eq!(r.created_at(), expected_refresh, "level {l} at t={t}");
            }
        }
    }

    #[test]
    fn render_is_humane() {
        let tree = SwatTree::from_window(cfg(8), &[1.0; 8]).unwrap();
        let r = tree.render();
        assert!(r.contains("level 0:"));
        assert!(r.contains("R=[0-1]"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_values() {
        let mut tree = SwatTree::new(cfg(4));
        tree.push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_batch_rejects_non_finite_values() {
        let mut tree = SwatTree::new(cfg(4));
        tree.push_batch(&[1.0, f64::INFINITY]);
    }

    /// Assert two trees are bit-identical: same clock, same newest value,
    /// and every node equal (coefficients, range, creation time, level —
    /// `Summary`'s derived `PartialEq` compares all of them, and f64
    /// equality is exact).
    fn assert_trees_identical(a: &SwatTree, b: &SwatTree, ctx: &str) {
        assert_eq!(a.arrivals(), b.arrivals(), "{ctx}: arrivals");
        assert_eq!(a.newest(), b.newest(), "{ctx}: newest");
        assert_eq!(a.summary_count(), b.summary_count(), "{ctx}: summary count");
        for (l, pos, s) in a.nodes() {
            let other = b
                .node(l, pos)
                .unwrap_or_else(|| panic!("{ctx}: missing node at level {l} {}", pos.name()));
            assert_eq!(s, other, "{ctx}: node at level {l} {}", pos.name());
            assert_eq!(
                s.coeffs().coefficients(),
                other.coeffs().coefficients(),
                "{ctx}: coefficients at level {l} {}",
                pos.name()
            );
        }
    }

    #[test]
    fn push_batch_matches_sequential_push() {
        for n in [4usize, 16, 64, 256] {
            for k in [1usize, 2, 3, 4, 8, 17] {
                let config = SwatConfig::with_coefficients(n, k).unwrap();
                let values: Vec<f64> = (0..3 * n + 5)
                    .map(|i| ((i * 31 + 7) % 101) as f64 - 50.0 + (i as f64) * 0.001)
                    .collect();
                let mut sequential = SwatTree::new(config);
                for &v in &values {
                    sequential.push(v);
                }
                let mut batched = SwatTree::new(config);
                batched.push_batch(&values);
                assert_trees_identical(&sequential, &batched, &format!("n={n} k={k} one batch"));
                // Split into uneven chunks: batch boundaries must not matter.
                let mut chunked = SwatTree::new(config);
                for chunk in values.chunks(7) {
                    chunked.push_batch(chunk);
                }
                assert_trees_identical(&sequential, &chunked, &format!("n={n} k={k} chunked"));
            }
        }
    }

    #[test]
    fn try_push_rejects_and_leaves_tree_unchanged() {
        let mut tree = SwatTree::new(cfg(8));
        tree.extend([1.0, 2.0, 3.0]);
        let before = tree.clone();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                tree.try_push(bad),
                Err(TreeError::NonFinite { position: 3 })
            );
        }
        assert_trees_identical(&before, &tree, "after rejected try_push");
        tree.try_push(4.0).unwrap();
        assert_eq!(tree.arrivals(), 4);
    }

    #[test]
    fn try_push_batch_is_all_or_nothing() {
        let mut tree = SwatTree::new(cfg(8));
        tree.extend([1.0, 2.0]);
        let before = tree.clone();
        assert_eq!(
            tree.try_push_batch(&[3.0, 4.0, f64::NAN, 5.0]),
            Err(TreeError::NonFinite { position: 4 })
        );
        assert_trees_identical(&before, &tree, "after rejected try_push_batch");
        tree.try_push_batch(&[3.0, 4.0]).unwrap();
        assert_eq!(tree.arrivals(), 4);
    }

    #[test]
    fn try_extend_stops_at_first_bad_value() {
        let mut tree = SwatTree::new(cfg(8));
        let err = tree.try_extend([1.0, 2.0, f64::NAN, 4.0]).unwrap_err();
        assert_eq!(err, TreeError::NonFinite { position: 2 });
        // Streaming semantics: the values before the bad one were ingested.
        assert_eq!(tree.arrivals(), 2);
        assert_eq!(tree.newest(), Some(2.0));
        tree.try_extend((0..30).map(|i| i as f64)).unwrap();
        assert_eq!(tree.arrivals(), 32);
    }

    #[test]
    fn try_paths_match_panicking_paths() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 13) % 29) as f64).collect();
        let mut plain = SwatTree::new(cfg(16));
        plain.extend(values.iter().copied());
        let mut fallible = SwatTree::new(cfg(16));
        fallible.try_extend(values.iter().copied()).unwrap();
        assert_trees_identical(&plain, &fallible, "try_extend vs extend");
        let mut batched = SwatTree::new(cfg(16));
        batched.try_push_batch(&values).unwrap();
        assert_trees_identical(&plain, &batched, "try_push_batch vs extend");
    }

    /// Build valid restore parts from a streamed tree, for mutation below.
    fn restore_parts(
        n: usize,
        arrivals: usize,
    ) -> (SwatConfig, u64, Option<f64>, Vec<VecDeque<Summary>>) {
        let config = cfg(n);
        let mut tree = SwatTree::new(config);
        tree.extend((0..arrivals).map(|i| ((i * 7) % 19) as f64));
        let t = tree.arrivals();
        let last = tree.newest();
        let queues: Vec<VecDeque<Summary>> = tree
            .levels
            .iter()
            .map(|lvl| lvl.iter().cloned().collect())
            .collect();
        (config, t, last, queues)
    }

    #[test]
    fn from_restored_accepts_valid_parts() {
        let (config, t, last, queues) = restore_parts(16, 40);
        let tree = SwatTree::from_restored(config, t, last, queues).unwrap();
        assert_eq!(tree.arrivals(), 40);
    }

    #[test]
    fn from_restored_rejects_wrong_level_count() {
        let (config, t, last, mut queues) = restore_parts(16, 40);
        queues.pop();
        assert_eq!(
            SwatTree::from_restored(config, t, last, queues).unwrap_err(),
            TreeError::RestoredLevelCount { got: 3, want: 4 }
        );
    }

    #[test]
    fn from_restored_rejects_level_mismatch() {
        let (config, t, last, mut queues) = restore_parts(16, 40);
        // Move a level-1 summary into the level-0 queue.
        let stray = queues[1].pop_front().unwrap();
        queues[0].pop_front();
        queues[0].push_front(stray);
        assert_eq!(
            SwatTree::from_restored(config, t, last, queues).unwrap_err(),
            TreeError::RestoredLevelMismatch {
                queue: 0,
                summary: 1
            }
        );
    }

    #[test]
    fn from_restored_rejects_future_summaries() {
        let (config, t, last, queues) = restore_parts(16, 40);
        let newest_creation = queues[0].front().unwrap().created_at();
        assert_eq!(
            SwatTree::from_restored(config, t - 1, last, queues).unwrap_err(),
            TreeError::RestoredFromFuture {
                created_at: newest_creation,
                now: t - 1
            }
        );
    }

    #[test]
    fn from_restored_rejects_over_capacity_queues() {
        let (config, t, last, mut queues) = restore_parts(16, 40);
        let extra = queues[0].back().unwrap().clone();
        queues[0].push_back(extra);
        assert_eq!(
            SwatTree::from_restored(config, t, last, queues).unwrap_err(),
            TreeError::RestoredOverCapacity {
                level: 0,
                got: 4,
                capacity: 3
            }
        );
    }
}
