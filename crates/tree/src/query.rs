//! Query evaluation over a [`SwatTree`] — the paper's Figure 3(b).
//!
//! Three query classes are supported, all over window indices where
//! index 0 is the newest value:
//!
//! * **point queries** — a single index ([`SwatTree::point`]),
//! * **inner-product queries** — `(I, W, δ)` triples
//!   ([`SwatTree::inner_product`]), with convenience constructors for the
//!   paper's *exponential* and *linear* weight profiles,
//! * **range queries** — a value rectangle over a time interval
//!   ([`SwatTree::range_query`]).
//!
//! Evaluation follows the paper's greedy cover: walk the nodes from the
//! lowest level upward, `R → S → L` within a level, select every node that
//! covers a still-uncovered query index, then reconstruct the needed
//! values one node at a time. At most `3 log N` nodes are selected and
//! reconstruction costs `O(log N)` per value, for `O(M + log² N)`-flavored
//! totals.
//!
//! Every answer carries a **sound error bound** derived from the exact
//! per-node `[min, max]` ranges: the true answer is guaranteed to be
//! within `error_bound` of the reported value (except for explicitly
//! flagged *extrapolated* answers under reduced-level operation, where no
//! sound bound exists — see [`QueryOptions::min_level`]).
//!
//! Evaluation is carried out by the zero-allocation engine in
//! [`crate::scratch`]; the public methods here route through a
//! thread-local [`crate::QueryScratch`]. The [`reference`] module keeps
//! the original allocating implementations frozen as the bit-identity
//! baseline for property tests and benchmarks.

use crate::config::TreeError;
use crate::node::Summary;
use crate::tree::SwatTree;

/// Options modulating query evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Answer using only tree levels `>= min_level` — the paper's §2.5
    /// reduced-resolution operation ("a client can choose to approximate
    /// the stream at any level"). Higher values trade precision for using
    /// coarser summaries. With `min_level > 0` the freshest few indices
    /// may precede the coarse nodes' coverage; they are then answered by
    /// *extrapolation* from the nearest covered index and the answer is
    /// flagged.
    pub min_level: usize,
}

impl QueryOptions {
    /// Options restricting evaluation to levels `>= m`.
    pub fn at_level(m: usize) -> Self {
        QueryOptions { min_level: m }
    }
}

/// Answer to a point query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointAnswer {
    /// The approximate value.
    pub value: f64,
    /// Sound bound on `|true − value|` (unsound if `extrapolated`).
    pub error_bound: f64,
    /// Level of the summary that served the answer.
    pub level: usize,
    /// Whether the index preceded all eligible coverage and was
    /// extrapolated (only possible with `min_level > 0`).
    pub extrapolated: bool,
}

/// The shape of an inner-product weight vector.
///
/// The profile constructors tag their queries so the coefficient-domain
/// kernel ([`SwatTree::inner_product_coeffs`]) can use closed-form
/// transformed weights; [`WeightProfile::General`] queries fall back to a
/// dense adjoint transform. The tag never affects the exact evaluation
/// path or query equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightProfile {
    /// Arbitrary weights with no known closed form (explicit vectors and
    /// point queries).
    General,
    /// The §2.6 exponential profile: `w_j = (1/2)^j` over a contiguous
    /// index run.
    Exponential,
    /// The linear profile: `w_j = (m − j)/m` over a contiguous index run.
    Linear,
}

/// An inner-product query `(I, W, δ)`: estimate `Σ W[j] · d[I[j]]` to
/// within precision `δ`.
#[derive(Debug, Clone)]
pub struct InnerProductQuery {
    indices: Vec<usize>,
    weights: Vec<f64>,
    delta: f64,
    profile: WeightProfile,
}

// Equality ignores the profile tag: it is a kernel hint derivable from the
// weights, not part of the query's meaning.
impl PartialEq for InnerProductQuery {
    fn eq(&self, other: &Self) -> bool {
        self.indices == other.indices && self.weights == other.weights && self.delta == other.delta
    }
}

impl InnerProductQuery {
    /// A query over explicit index and weight vectors.
    ///
    /// # Errors
    ///
    /// [`TreeError::BadQuery`] if the vectors are empty, of different
    /// lengths, contain non-finite weights, or repeat an index.
    pub fn new(indices: Vec<usize>, weights: Vec<f64>, delta: f64) -> Result<Self, TreeError> {
        if indices.is_empty() {
            return Err(TreeError::BadQuery {
                reason: "empty index vector",
            });
        }
        if indices.len() != weights.len() {
            return Err(TreeError::BadQuery {
                reason: "index and weight vectors differ in length",
            });
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(TreeError::BadQuery {
                reason: "non-finite weight",
            });
        }
        // Duplicate detection without scratch allocation: a single pass
        // settles strictly ascending vectors (the common case — the
        // profile constructors and most explicit queries); only unsorted
        // input falls back to the quadratic scan.
        let mut ascending = true;
        for w in indices.windows(2) {
            if w[1] == w[0] {
                return Err(TreeError::BadQuery {
                    reason: "duplicate index",
                });
            }
            if w[1] < w[0] {
                ascending = false;
                break;
            }
        }
        if !ascending {
            for (i, &idx) in indices.iter().enumerate() {
                if indices[..i].contains(&idx) {
                    return Err(TreeError::BadQuery {
                        reason: "duplicate index",
                    });
                }
            }
        }
        // +infinity is allowed: "no precision requirement".
        if delta.is_nan() || delta < 0.0 {
            return Err(TreeError::BadQuery {
                reason: "precision must be >= 0",
            });
        }
        Ok(InnerProductQuery {
            indices,
            weights,
            delta,
            profile: WeightProfile::General,
        })
    }

    /// A point query `([idx], [1], δ)` — the paper's point queries are
    /// exactly this special case.
    pub fn point(idx: usize, delta: f64) -> Self {
        InnerProductQuery {
            indices: vec![idx],
            weights: vec![1.0],
            delta,
            profile: WeightProfile::General,
        }
    }

    /// An *exponential* inner-product query over the `m` values starting
    /// at window index `start`: weights `1, 1/2, 1/4, …` with the newest
    /// queried value weighted most — the biased-towards-recent profile of
    /// the paper's §2.6.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn exponential_at(start: usize, m: usize, delta: f64) -> Self {
        assert!(m > 0, "query length must be positive");
        InnerProductQuery {
            indices: (start..start + m).collect(),
            weights: (0..m).map(|j| 0.5f64.powi(j as i32)).collect(),
            delta,
            profile: WeightProfile::Exponential,
        }
    }

    /// Rewrite `self` in place into [`Self::exponential_at`] form, reusing
    /// the existing vector storage — the identical index and weight
    /// sequences, with zero allocation once capacity has grown to the
    /// largest `m` seen.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn set_exponential_at(&mut self, start: usize, m: usize, delta: f64) {
        assert!(m > 0, "query length must be positive");
        self.indices.clear();
        self.indices.extend(start..start + m);
        self.weights.clear();
        self.weights.extend((0..m).map(|j| 0.5f64.powi(j as i32)));
        self.delta = delta;
        self.profile = WeightProfile::Exponential;
    }

    /// [`Self::exponential_at`] anchored at the newest value (`start = 0`)
    /// — the paper's *fixed query mode*.
    pub fn exponential(m: usize, delta: f64) -> Self {
        Self::exponential_at(0, m, delta)
    }

    /// A *linear* inner-product query over `m` values from `start`:
    /// weights `m/m, (m−1)/m, …, 1/m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn linear_at(start: usize, m: usize, delta: f64) -> Self {
        assert!(m > 0, "query length must be positive");
        InnerProductQuery {
            indices: (start..start + m).collect(),
            weights: (0..m).map(|j| (m - j) as f64 / m as f64).collect(),
            delta,
            profile: WeightProfile::Linear,
        }
    }

    /// Rewrite `self` in place into [`Self::linear_at`] form, reusing the
    /// existing vector storage (see [`Self::set_exponential_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn set_linear_at(&mut self, start: usize, m: usize, delta: f64) {
        assert!(m > 0, "query length must be positive");
        self.indices.clear();
        self.indices.extend(start..start + m);
        self.weights.clear();
        self.weights
            .extend((0..m).map(|j| (m - j) as f64 / m as f64));
        self.delta = delta;
        self.profile = WeightProfile::Linear;
    }

    /// [`Self::linear_at`] anchored at the newest value.
    pub fn linear(m: usize, delta: f64) -> Self {
        Self::linear_at(0, m, delta)
    }

    /// The index vector `I`.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The weight vector `W`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The precision requirement `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The weight-profile tag (a kernel hint; see [`WeightProfile`]).
    pub fn profile(&self) -> WeightProfile {
        self.profile
    }

    /// Re-apply a serialized profile tag, but only after verifying the
    /// weights really have the closed form the tag promises (bitwise —
    /// the constructors are deterministic). Returns whether the tag was
    /// accepted; an untrusted snapshot cannot smuggle a lying hint into
    /// the coefficient-domain kernel.
    pub(crate) fn try_set_profile(&mut self, profile: WeightProfile) -> bool {
        let ok = match profile {
            WeightProfile::General => true,
            WeightProfile::Exponential => {
                self.is_contiguous_run()
                    && self
                        .weights
                        .iter()
                        .enumerate()
                        .all(|(j, w)| w.to_bits() == 0.5f64.powi(j as i32).to_bits())
            }
            WeightProfile::Linear => {
                let m = self.weights.len();
                self.is_contiguous_run()
                    && self
                        .weights
                        .iter()
                        .enumerate()
                        .all(|(j, w)| w.to_bits() == ((m - j) as f64 / m as f64).to_bits())
            }
        };
        if ok {
            self.profile = profile;
        }
        ok
    }

    fn is_contiguous_run(&self) -> bool {
        self.indices
            .windows(2)
            .all(|w| w[1] == w[0].wrapping_add(1))
    }

    /// Number of query entries (`M`).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the query is empty (never true for constructed queries).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Evaluate this query against exact values (`window[i]` = value at
    /// window index `i`): the ground truth `Σ W[j]·d[I[j]]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `window`.
    pub fn exact(&self, window: &[f64]) -> f64 {
        self.indices
            .iter()
            .zip(&self.weights)
            .map(|(&i, &w)| w * window[i])
            .sum()
    }
}

/// Answer to an inner-product query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InnerProductAnswer {
    /// The approximate inner product.
    pub value: f64,
    /// Sound bound on the absolute error (unsound if `extrapolated > 0`).
    pub error_bound: f64,
    /// Whether `error_bound <= δ`, i.e. the precision contract is met.
    pub meets_precision: bool,
    /// How many tree nodes contributed (at most `3 log N`).
    pub nodes_used: usize,
    /// How many query entries had to be extrapolated (reduced-level mode).
    pub extrapolated: usize,
}

/// A range query: all window values within `center ± radius` among
/// indices `newest..=oldest` (the paper's rectangle in time–value space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// The value of interest `p`.
    pub center: f64,
    /// The radius `ε` around `p`.
    pub radius: f64,
    /// Most recent window index of the interval (inclusive).
    pub newest: usize,
    /// Oldest window index of the interval (inclusive).
    pub oldest: usize,
}

impl RangeQuery {
    /// A new range query over indices `newest..=oldest`.
    ///
    /// # Panics
    ///
    /// Panics if `newest > oldest` or `radius < 0`.
    pub fn new(center: f64, radius: f64, newest: usize, oldest: usize) -> Self {
        assert!(newest <= oldest, "empty index interval");
        assert!(radius >= 0.0, "negative radius");
        RangeQuery {
            center,
            radius,
            newest,
            oldest,
        }
    }
}

/// One match of a range query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeMatch {
    /// The matching window index.
    pub index: usize,
    /// Its approximate value.
    pub value: f64,
}

impl SwatTree {
    /// Validate that every query index is inside the window.
    pub(crate) fn check_indices(&self, indices: &[usize]) -> Result<(), TreeError> {
        let window = self.config().window();
        for &idx in indices {
            if idx >= window {
                return Err(TreeError::IndexOutOfWindow { index: idx, window });
            }
        }
        Ok(())
    }

    /// Answer a point query for window index `idx` (0 = newest).
    ///
    /// # Errors
    ///
    /// [`TreeError::IndexOutOfWindow`] for indices beyond the window,
    /// [`TreeError::Uncovered`] while the tree is still warming up.
    pub fn point(&self, idx: usize) -> Result<PointAnswer, TreeError> {
        self.point_with(idx, self.config().default_opts())
    }

    /// [`Self::point`] with explicit [`QueryOptions`].
    ///
    /// # Errors
    ///
    /// As [`Self::point`]; with `min_level > 0`, uncoverable indices are
    /// extrapolated rather than failing.
    pub fn point_with(&self, idx: usize, opts: QueryOptions) -> Result<PointAnswer, TreeError> {
        crate::scratch::with_thread_scratch(|scratch| self.point_with_scratch(idx, opts, scratch))
    }

    /// Answer an inner-product query `(I, W, δ)` per the paper's
    /// Figure 3(b): greedy node cover, per-node inverse transforms, then
    /// the weighted sum.
    ///
    /// # Errors
    ///
    /// [`TreeError::IndexOutOfWindow`] or, during warm-up with full
    /// resolution, [`TreeError::Uncovered`].
    pub fn inner_product(
        &self,
        query: &InnerProductQuery,
    ) -> Result<InnerProductAnswer, TreeError> {
        self.inner_product_with(query, self.config().default_opts())
    }

    /// [`Self::inner_product`] with explicit [`QueryOptions`].
    ///
    /// # Errors
    ///
    /// As [`Self::inner_product`].
    pub fn inner_product_with(
        &self,
        query: &InnerProductQuery,
        opts: QueryOptions,
    ) -> Result<InnerProductAnswer, TreeError> {
        crate::scratch::with_thread_scratch(|scratch| {
            self.inner_product_with_scratch(query, opts, scratch)
        })
    }

    /// Answer a range query: indices in `newest..=oldest` whose
    /// approximate value lies within `center ± radius`.
    ///
    /// The approximation tree induces a step function over the window
    /// (§2.4); the matches are the intersection of that step function with
    /// the query rectangle. Nodes whose exact `[min, max]` range does not
    /// intersect the padded value band are skipped without reconstruction.
    ///
    /// # Errors
    ///
    /// As [`Self::inner_product`].
    pub fn range_query(&self, query: &RangeQuery) -> Result<Vec<RangeMatch>, TreeError> {
        self.range_query_with(query, self.config().default_opts())
    }

    /// [`Self::range_query`] with explicit [`QueryOptions`].
    ///
    /// # Errors
    ///
    /// As [`Self::range_query`].
    pub fn range_query_with(
        &self,
        query: &RangeQuery,
        opts: QueryOptions,
    ) -> Result<Vec<RangeMatch>, TreeError> {
        let mut matches = Vec::new();
        crate::scratch::with_thread_scratch(|scratch| {
            self.range_query_with_scratch(query, opts, scratch, &mut matches)
        })?;
        Ok(matches)
    }

    /// Reconstruct the whole approximate window, newest first — the step
    /// function the tree induces over the last `N` values.
    ///
    /// # Errors
    ///
    /// [`TreeError::Uncovered`] while warming up.
    pub fn reconstruct_window(&self) -> Result<Vec<f64>, TreeError> {
        let mut out = Vec::new();
        crate::scratch::with_thread_scratch(|scratch| {
            self.reconstruct_window_into(scratch, &mut out)
        })?;
        Ok(out)
    }
}

/// Frozen pre-optimization query implementations — the "slow path".
///
/// These are verbatim copies of the evaluation code as it stood before the
/// zero-allocation query engine ([`crate::scratch`]) landed: a fresh
/// greedy cover with per-call `Vec` allocations, per-node time-domain
/// reconstruction, no caching. They are kept public for two reasons:
///
/// * the equivalence property tests assert the engine's answers are
///   **bit-identical** to these, which is what makes the optimization a
///   correctness harness rather than a leap of faith;
/// * the `swat-bench` query sweep uses them as the pre-PR baseline the
///   speedup ratios in `results/BENCH_query.json` are measured against.
///
/// Do not "improve" this module; its value is that it does not change.
pub mod reference {
    use super::*;

    /// A node selected by the greedy cover, with the query entries it
    /// serves.
    struct CoverEntry<'a> {
        summary: &'a Summary,
        /// Positions *within the query's index vector* this node serves.
        entries: Vec<usize>,
    }

    /// Greedy cover per the paper's `Query_Handler`: traverse nodes from
    /// level `opts.min_level` upward (`R → S → L` within a level), select
    /// each node covering a still-uncovered query index.
    ///
    /// Returns the selected nodes plus the positions of query entries left
    /// uncovered (possible during warm-up or with `min_level > 0`).
    fn cover<'a>(
        tree: &'a SwatTree,
        indices: &[usize],
        opts: QueryOptions,
    ) -> (Vec<CoverEntry<'a>>, Vec<usize>) {
        let now = tree.arrivals();
        let mut covered = vec![false; indices.len()];
        let mut remaining = indices.len();
        let mut selected: Vec<CoverEntry<'a>> = Vec::new();
        for (level, _, summary) in tree.nodes() {
            if level < opts.min_level {
                continue;
            }
            if remaining == 0 {
                break;
            }
            let (start, end) = summary.coverage(now);
            let mut entries = Vec::new();
            for (pos, &idx) in indices.iter().enumerate() {
                if !covered[pos] && (start..=end).contains(&idx) {
                    entries.push(pos);
                    covered[pos] = true;
                    remaining -= 1;
                }
            }
            if !entries.is_empty() {
                selected.push(CoverEntry { summary, entries });
            }
        }
        let uncovered: Vec<usize> = (0..indices.len()).filter(|&p| !covered[p]).collect();
        (selected, uncovered)
    }

    /// The pre-engine [`SwatTree::point_with`].
    ///
    /// # Errors
    ///
    /// As [`SwatTree::point_with`].
    pub fn point_with(
        tree: &SwatTree,
        idx: usize,
        opts: QueryOptions,
    ) -> Result<PointAnswer, TreeError> {
        tree.check_indices(&[idx])?;
        let now = tree.arrivals();
        let (selected, uncovered) = cover(tree, &[idx], opts);
        if let Some(entry) = selected.first() {
            let s = entry.summary;
            return Ok(PointAnswer {
                value: s.value_at(now, idx),
                error_bound: s.error_bound_at(now, idx),
                level: s.level(),
                extrapolated: false,
            });
        }
        debug_assert_eq!(uncovered, vec![0]);
        if opts.min_level == 0 {
            return Err(TreeError::Uncovered { index: idx });
        }
        // Reduced-level mode: extrapolate from the freshest eligible node.
        let nearest = tree
            .nodes()
            .filter(|(l, _, _)| *l >= opts.min_level)
            .min_by_key(|(_, _, s)| s.coverage(now).0)
            .ok_or(TreeError::Uncovered { index: idx })?;
        let (_, _, s) = nearest;
        let (start, _) = s.coverage(now);
        Ok(PointAnswer {
            value: s.value_at(now, start),
            error_bound: s.range().width(),
            level: s.level(),
            extrapolated: true,
        })
    }

    /// The pre-engine [`SwatTree::inner_product_with`].
    ///
    /// # Errors
    ///
    /// As [`SwatTree::inner_product_with`].
    pub fn inner_product_with(
        tree: &SwatTree,
        query: &InnerProductQuery,
        opts: QueryOptions,
    ) -> Result<InnerProductAnswer, TreeError> {
        tree.check_indices(query.indices())?;
        let now = tree.arrivals();
        let (selected, uncovered) = cover(tree, query.indices(), opts);
        if !uncovered.is_empty() && opts.min_level == 0 {
            return Err(TreeError::Uncovered {
                index: query.indices()[uncovered[0]],
            });
        }
        let mut value = 0.0;
        let mut error_bound = 0.0;
        for entry in &selected {
            let s = entry.summary;
            let width = s.width();
            let lo = s.range().lo();
            let hi = s.range().hi();
            // Per-point evaluation costs O(log width) each; one full
            // reconstruction costs O(width) and then O(1) per point.
            // Pick whichever is cheaper for this node's share.
            let log_w = usize::BITS - width.leading_zeros();
            if entry.entries.len() * log_w as usize > width {
                let block = s.reconstruct();
                let (start, _) = s.coverage(now);
                for &pos in &entry.entries {
                    let idx = query.indices()[pos];
                    let w = query.weights()[pos];
                    let v = block[idx - start];
                    value += w * v;
                    error_bound += w.abs() * (v - lo).max(hi - v);
                }
            } else {
                for &pos in &entry.entries {
                    let idx = query.indices()[pos];
                    let w = query.weights()[pos];
                    value += w * s.value_at(now, idx);
                    error_bound += w.abs() * s.error_bound_at(now, idx);
                }
            }
        }
        // Extrapolate whatever reduced-level mode left uncovered.
        if !uncovered.is_empty() {
            let nearest = tree
                .nodes()
                .filter(|(l, _, _)| *l >= opts.min_level)
                .min_by_key(|(_, _, s)| s.coverage(now).0);
            let Some((_, _, s)) = nearest else {
                return Err(TreeError::Uncovered {
                    index: query.indices()[uncovered[0]],
                });
            };
            let (start, _) = s.coverage(now);
            let v = s.value_at(now, start);
            for &pos in &uncovered {
                let w = query.weights()[pos];
                value += w * v;
                error_bound += w.abs() * s.range().width();
            }
        }
        Ok(InnerProductAnswer {
            value,
            error_bound,
            meets_precision: error_bound <= query.delta(),
            nodes_used: selected.len(),
            extrapolated: uncovered.len(),
        })
    }

    /// The pre-engine [`SwatTree::range_query_with`].
    ///
    /// # Errors
    ///
    /// As [`SwatTree::range_query_with`].
    pub fn range_query_with(
        tree: &SwatTree,
        query: &RangeQuery,
        opts: QueryOptions,
    ) -> Result<Vec<RangeMatch>, TreeError> {
        let indices: Vec<usize> = (query.newest..=query.oldest).collect();
        tree.check_indices(&indices)?;
        let now = tree.arrivals();
        let (selected, uncovered) = cover(tree, &indices, opts);
        if !uncovered.is_empty() {
            return Err(TreeError::Uncovered {
                index: indices[uncovered[0]],
            });
        }
        let band =
            crate::range::ValueRange::new(query.center - query.radius, query.center + query.radius);
        let mut matches = Vec::new();
        for entry in &selected {
            let s = entry.summary;
            // Prune: if the node's exact range cannot reach the band, no
            // value reconstructed from it (clamped into the range) can.
            if !s.range().intersects(&band) {
                continue;
            }
            for &pos in &entry.entries {
                let idx = indices[pos];
                let v = s.value_at(now, idx);
                if (v - query.center).abs() <= query.radius {
                    matches.push(RangeMatch {
                        index: idx,
                        value: v,
                    });
                }
            }
        }
        matches.sort_by_key(|m| m.index);
        Ok(matches)
    }

    /// The pre-engine [`SwatTree::reconstruct_window`].
    ///
    /// # Errors
    ///
    /// As [`SwatTree::reconstruct_window`].
    pub fn reconstruct_window(tree: &SwatTree) -> Result<Vec<f64>, TreeError> {
        let n = tree.config().window();
        let indices: Vec<usize> = (0..n).collect();
        let now = tree.arrivals();
        let (selected, uncovered) = cover(tree, &indices, QueryOptions::default());
        if !uncovered.is_empty() {
            return Err(TreeError::Uncovered {
                index: uncovered[0],
            });
        }
        let mut out = vec![0.0; n];
        for entry in &selected {
            for &pos in &entry.entries {
                out[pos] = entry.summary.value_at(now, indices[pos]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwatConfig;

    fn warm_tree(n: usize, values: impl IntoIterator<Item = f64>) -> SwatTree {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        tree.extend(values);
        assert!(tree.is_warm());
        tree
    }

    #[test]
    fn query_constructors_validate() {
        assert!(InnerProductQuery::new(vec![], vec![], 1.0).is_err());
        assert!(InnerProductQuery::new(vec![0, 1], vec![1.0], 1.0).is_err());
        assert!(InnerProductQuery::new(vec![0, 0], vec![1.0, 1.0], 1.0).is_err());
        assert!(InnerProductQuery::new(vec![0], vec![f64::NAN], 1.0).is_err());
        assert!(InnerProductQuery::new(vec![0], vec![1.0], -1.0).is_err());
        let q = InnerProductQuery::new(vec![3, 1], vec![0.5, 2.0], 1.0).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.exact(&[10.0, 20.0, 30.0, 40.0]), 0.5 * 40.0 + 2.0 * 20.0);
    }

    #[test]
    fn duplicate_indices_rejected_in_any_order() {
        // Ascending duplicates hit the single-pass check.
        assert!(matches!(
            InnerProductQuery::new(vec![2, 4, 4, 7], vec![1.0; 4], 1.0),
            Err(TreeError::BadQuery {
                reason: "duplicate index"
            })
        ));
        // Unsorted duplicates exercise the quadratic fallback, including a
        // repeat that is *not* adjacent after the descent.
        assert!(matches!(
            InnerProductQuery::new(vec![3, 1, 3], vec![1.0; 3], 1.0),
            Err(TreeError::BadQuery {
                reason: "duplicate index"
            })
        ));
        assert!(matches!(
            InnerProductQuery::new(vec![5, 2, 9, 2], vec![1.0; 4], 1.0),
            Err(TreeError::BadQuery {
                reason: "duplicate index"
            })
        ));
        // Unsorted but distinct vectors remain legal.
        let q = InnerProductQuery::new(vec![5, 2, 9], vec![1.0, 2.0, 3.0], 1.0).unwrap();
        assert_eq!(q.indices(), &[5, 2, 9]);
        assert_eq!(q.profile(), WeightProfile::General);
    }

    #[test]
    fn in_place_setters_match_constructors() {
        let mut q = InnerProductQuery::point(0, 1.0);
        assert_eq!(q.profile(), WeightProfile::General);
        q.set_exponential_at(3, 5, 2.5);
        let want = InnerProductQuery::exponential_at(3, 5, 2.5);
        assert_eq!(q, want);
        assert_eq!(q.profile(), WeightProfile::Exponential);
        for (a, b) in q.weights().iter().zip(want.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        q.set_linear_at(1, 7, 0.5);
        let want = InnerProductQuery::linear_at(1, 7, 0.5);
        assert_eq!(q, want);
        assert_eq!(q.profile(), WeightProfile::Linear);
        for (a, b) in q.weights().iter().zip(want.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Equality ignores the tag: an explicit query with the same
        // vectors compares equal to the tagged one.
        let explicit = InnerProductQuery::new(
            want.indices().to_vec(),
            want.weights().to_vec(),
            want.delta(),
        )
        .unwrap();
        assert_eq!(explicit, want);
        assert_ne!(explicit.profile(), want.profile());
    }

    #[test]
    fn weight_profiles_match_paper() {
        let e = InnerProductQuery::exponential(4, 20.0);
        assert_eq!(e.indices(), &[0, 1, 2, 3]);
        assert_eq!(e.weights(), &[1.0, 0.5, 0.25, 0.125]);
        let l = InnerProductQuery::linear_at(8, 4, 40.0);
        assert_eq!(l.indices(), &[8, 9, 10, 11]);
        assert_eq!(l.weights(), &[1.0, 0.75, 0.5, 0.25]);
        let p = InnerProductQuery::point(12, 2.0);
        assert_eq!(p.indices(), &[12]);
        assert_eq!(p.weights(), &[1.0]);
    }

    #[test]
    fn point_query_on_constant_stream_is_exact() {
        let tree = warm_tree(16, std::iter::repeat_n(5.0, 48));
        for idx in 0..16 {
            let a = tree.point(idx).unwrap();
            assert_eq!(a.value, 5.0, "idx {idx}");
            assert_eq!(a.error_bound, 0.0);
            assert!(!a.extrapolated);
        }
    }

    #[test]
    fn point_errors() {
        let tree = warm_tree(16, (0..48).map(|i| i as f64));
        assert!(matches!(
            tree.point(16),
            Err(TreeError::IndexOutOfWindow {
                index: 16,
                window: 16
            })
        ));
        let cold = SwatTree::new(SwatConfig::new(16).unwrap());
        assert!(matches!(cold.point(0), Err(TreeError::Uncovered { .. })));
    }

    #[test]
    fn newest_point_served_by_level_zero() {
        // "It takes O(1) time to find the node that approximates the
        // point": index 0 is always covered by R_0.
        let tree = warm_tree(16, (0..48).map(|i| (i % 7) as f64));
        let a = tree.point(0).unwrap();
        assert_eq!(a.level, 0);
    }

    #[test]
    fn error_bounds_are_sound() {
        let values: Vec<f64> = (0..96).map(|i| ((i * 37) % 50) as f64).collect();
        let tree = warm_tree(32, values.iter().copied());
        let total = values.len();
        for idx in 0..32 {
            let truth = values[total - 1 - idx];
            let a = tree.point(idx).unwrap();
            assert!(
                (a.value - truth).abs() <= a.error_bound + 1e-9,
                "idx {idx}: |{} - {truth}| > {}",
                a.value,
                a.error_bound
            );
        }
        // Inner products inherit soundness.
        let window: Vec<f64> = (0..32).map(|i| values[total - 1 - i]).collect();
        for q in [
            InnerProductQuery::exponential(8, 100.0),
            InnerProductQuery::linear(16, 100.0),
            InnerProductQuery::exponential_at(5, 10, 100.0),
        ] {
            let ans = tree.inner_product(&q).unwrap();
            let exact = q.exact(&window);
            assert!(
                (ans.value - exact).abs() <= ans.error_bound + 1e-9,
                "{q:?}: |{} - {exact}| > {}",
                ans.value,
                ans.error_bound
            );
        }
    }

    #[test]
    fn inner_product_uses_few_nodes() {
        let tree = warm_tree(1024, (0..3000).map(|i| (i % 100) as f64));
        let q = InnerProductQuery::exponential(512, 1e9);
        let ans = tree.inner_product(&q).unwrap();
        assert!(
            ans.nodes_used <= 3 * 10,
            "used {} nodes, expected <= 3 log N",
            ans.nodes_used
        );
        assert!(ans.meets_precision);
    }

    #[test]
    fn meets_precision_reflects_delta() {
        let tree = warm_tree(16, (0..48).map(|i| ((i * 13) % 40) as f64));
        let loose = InnerProductQuery::exponential(8, 1e6);
        assert!(tree.inner_product(&loose).unwrap().meets_precision);
        let tight = InnerProductQuery::exponential(8, 1e-9);
        assert!(!tree.inner_product(&tight).unwrap().meets_precision);
    }

    #[test]
    fn range_query_finds_matching_values() {
        // Stream: 0..16 repeated; query for values near 15 among all
        // indices.
        let values: Vec<f64> = (0..64).map(|i| (i % 16) as f64).collect();
        let tree = warm_tree(16, values.iter().copied());
        // Window (newest first) = 15, 14, ..., 0.
        let q = RangeQuery::new(15.0, 0.4, 0, 15);
        let matches = tree.range_query(&q).unwrap();
        // Exact reconstruction (k = 1 still reproduces level-0 pairs only
        // approximately), so check matches are plausible: every reported
        // value is within the band.
        for m in &matches {
            assert!((m.value - 15.0).abs() <= 0.4 + 1e-12);
        }
        // The newest value (exactly 15) must be found: R_0 covers it with
        // average (15 + 14)/2 = 14.5 — outside the band, so with k = 1 the
        // coarse answer may legitimately miss it. Use k = 2 for exactness.
        let mut fine = SwatTree::new(SwatConfig::with_coefficients(16, 16).unwrap());
        fine.extend(values.iter().copied());
        let matches = fine.range_query(&q).unwrap();
        assert!(matches.iter().any(|m| m.index == 0 && m.value == 15.0));
        assert_eq!(matches.len(), 1, "only one window value equals 15");
    }

    #[test]
    fn range_query_empty_band() {
        let tree = warm_tree(16, std::iter::repeat_n(5.0, 48));
        let q = RangeQuery::new(100.0, 1.0, 0, 15);
        assert!(tree.range_query(&q).unwrap().is_empty());
    }

    #[test]
    fn lossless_tree_reconstructs_exactly() {
        // With k = N the tree is lossless: the reconstructed window equals
        // the true window whenever every level just refreshed.
        let values: Vec<f64> = (0..32).map(|i| ((i * 7) % 19) as f64).collect();
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(16, 16).unwrap());
        tree.extend(values.iter().copied());
        // t = 32: all levels refreshed. Window newest-first:
        let window: Vec<f64> = (0..16).map(|i| values[31 - i]).collect();
        let rec = tree.reconstruct_window().unwrap();
        // Levels answer greedily; fresh R nodes cover everything exactly.
        for (i, (a, b)) in rec.iter().zip(&window).enumerate() {
            assert!((a - b).abs() < 1e-9, "idx {i}: {a} vs {b}");
        }
    }

    #[test]
    fn reduced_level_queries_extrapolate_and_flag() {
        let tree = warm_tree(64, (0..192).map(|i| (i % 10) as f64));
        let opts = QueryOptions::at_level(3);
        let a = tree.point_with(0, opts).unwrap();
        // Depending on tree age index 0 may or may not precede level-3
        // coverage; whichever way, the call must succeed and any
        // extrapolation must be flagged.
        if a.extrapolated {
            assert!(a.error_bound > 0.0 || a.value == 0.0);
        }
        assert!(a.level >= 3);
        let q = InnerProductQuery::exponential(16, 1e9);
        let ans = tree.inner_product_with(&q, opts).unwrap();
        assert!(ans.value.is_finite());
    }

    #[test]
    fn coarser_levels_give_weakly_worse_precision() {
        // Average absolute point error should not decrease as min_level
        // grows — the §2.5 trade-off that Figure 4(c) plots.
        let values: Vec<f64> = (0..1536)
            .map(|i| 50.0 + 30.0 * ((i as f64) * 0.05).sin())
            .collect();
        let n = 512;
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        tree.extend(values.iter().copied());
        let window: Vec<f64> = (0..n).map(|i| values[values.len() - 1 - i]).collect();
        let mut prev = 0.0;
        for m in [0usize, 2, 4, 6, 8] {
            let opts = QueryOptions::at_level(m);
            let mut total = 0.0;
            for (idx, &truth) in window.iter().enumerate() {
                let a = tree.point_with(idx, opts).unwrap();
                total += (a.value - truth).abs();
            }
            let avg = total / n as f64;
            assert!(
                avg + 1e-6 >= prev,
                "error should grow with min_level: {avg} < {prev} at m={m}"
            );
            prev = avg;
        }
        assert!(prev > 0.5, "coarsest level should show real error");
    }
}
