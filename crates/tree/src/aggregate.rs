//! Aggregate queries over window index ranges.
//!
//! The problem the paper opens with is "statistics and aggregate
//! maintenance over data streams"; inner products subsume weighted
//! aggregates, and this module packages the common unweighted ones —
//! SUM, MEAN, COUNT-in-band, and guaranteed MIN/MAX bounds — over any
//! contiguous span of the window, computed from the summaries in
//! `O(M + log² N)` with sound error bounds.
//!
//! The MIN/MAX *bounds* deserve a note: wavelet averages cannot recover
//! exact extrema, but every covering node carries the exact `[min, max]`
//! of its block, so the union of covering ranges is a guaranteed
//! enclosure of every value in the span — often much tighter than the
//! global value range.

use crate::config::TreeError;
use crate::query::{InnerProductQuery, QueryOptions};
use crate::range::ValueRange;
use crate::tree::SwatTree;

/// Result of an aggregate query over window indices `from..=to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Approximate sum of the span.
    pub sum: f64,
    /// Sound bound on `|true sum − sum|`.
    pub sum_error_bound: f64,
    /// Approximate mean (`sum / count`).
    pub mean: f64,
    /// Number of values aggregated.
    pub count: usize,
    /// Guaranteed enclosure of every value in the span (union of the
    /// covering nodes' exact ranges).
    pub bounds: ValueRange,
}

impl SwatTree {
    /// Aggregate window indices `from..=to` (0 = newest).
    ///
    /// # Errors
    ///
    /// [`TreeError::IndexOutOfWindow`] / [`TreeError::Uncovered`] as for
    /// other queries; [`TreeError::BadQuery`] if `from > to`.
    pub fn aggregate(&self, from: usize, to: usize) -> Result<Aggregate, TreeError> {
        self.aggregate_with(from, to, self.config().default_opts())
    }

    /// [`Self::aggregate`] with explicit [`QueryOptions`].
    ///
    /// # Errors
    ///
    /// As [`Self::aggregate`].
    pub fn aggregate_with(
        &self,
        from: usize,
        to: usize,
        opts: QueryOptions,
    ) -> Result<Aggregate, TreeError> {
        if from > to {
            return Err(TreeError::BadQuery {
                reason: "aggregate span is empty (from > to)",
            });
        }
        let count = to - from + 1;
        let query = InnerProductQuery::new((from..=to).collect(), vec![1.0; count], f64::INFINITY)
            .expect("uniform weights over a nonempty span are valid");
        let answer = self.inner_product_with(&query, opts)?;
        // Bounds: union of the ranges of the nodes that actually serve
        // the span. Reuse the per-point API so reduced-level extrapolation
        // behaves identically to other queries.
        let mut bounds: Option<ValueRange> = None;
        let now = self.arrivals();
        for (level, _, summary) in self.nodes() {
            if level < opts.min_level {
                continue;
            }
            let (start, end) = summary.coverage(now);
            if start <= to && from <= end {
                let r = *summary.range();
                bounds = Some(match bounds {
                    None => r,
                    Some(b) => b.union(&r),
                });
            }
        }
        let bounds = bounds.ok_or(TreeError::Uncovered { index: from })?;
        Ok(Aggregate {
            sum: answer.value,
            sum_error_bound: answer.error_bound,
            mean: answer.value / count as f64,
            count,
            bounds,
        })
    }

    /// How many values in `from..=to` approximately lie within `band`
    /// (counted on the reconstructed step function, as in range queries).
    ///
    /// # Errors
    ///
    /// As [`Self::aggregate`].
    pub fn count_in_band(
        &self,
        from: usize,
        to: usize,
        band: ValueRange,
    ) -> Result<usize, TreeError> {
        if from > to {
            return Err(TreeError::BadQuery {
                reason: "span is empty (from > to)",
            });
        }
        let q = crate::query::RangeQuery::new(band.midpoint(), band.width() * 0.5, from, to);
        Ok(self.range_query(&q)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwatConfig;
    use crate::exact::ExactWindow;

    fn rig(n: usize, k: usize, values: &[f64]) -> (SwatTree, ExactWindow) {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
        let mut truth = ExactWindow::new(n);
        for &v in values {
            tree.push(v);
            truth.push(v);
        }
        (tree, truth)
    }

    #[test]
    fn sum_bound_is_sound_and_mean_consistent() {
        let values: Vec<f64> = (0..96).map(|i| ((i * 13) % 41) as f64).collect();
        let (tree, truth) = rig(32, 1, &values);
        for (from, to) in [(0usize, 0usize), (0, 7), (3, 20), (0, 31), (16, 31)] {
            let a = tree.aggregate(from, to).unwrap();
            let exact: f64 = (from..=to).map(|i| truth.get(i).unwrap()).sum();
            assert!(
                (a.sum - exact).abs() <= a.sum_error_bound + 1e-9,
                "[{from},{to}]: |{} - {exact}| > {}",
                a.sum,
                a.sum_error_bound
            );
            assert_eq!(a.count, to - from + 1);
            assert!((a.mean - a.sum / a.count as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn lossless_aggregate_is_exact() {
        let values: Vec<f64> = (0..64).map(|i| ((i * 7) % 19) as f64).collect();
        let (tree, truth) = rig(32, 32, &values);
        let a = tree.aggregate(0, 31).unwrap();
        let exact: f64 = (0..32).map(|i| truth.get(i).unwrap()).sum();
        assert!((a.sum - exact).abs() < 1e-9);
    }

    #[test]
    fn bounds_enclose_every_value_in_span() {
        let values: Vec<f64> = (0..96)
            .map(|i| 50.0 + 30.0 * ((i as f64) * 0.3).sin())
            .collect();
        let (tree, truth) = rig(32, 1, &values);
        for (from, to) in [(0usize, 3usize), (5, 25), (0, 31)] {
            let a = tree.aggregate(from, to).unwrap();
            for i in from..=to {
                let v = truth.get(i).unwrap();
                assert!(
                    a.bounds.contains(v),
                    "[{from},{to}] idx {i}: {v} not in {}",
                    a.bounds
                );
            }
        }
    }

    #[test]
    fn recent_bounds_are_tighter_than_global() {
        // A burst long ago should not widen the bounds of a recent span.
        let mut values = vec![50.0; 64];
        values[10] = 500.0; // ancient outlier (will age out of fine spans)
        values.extend(std::iter::repeat_n(50.0, 32));
        let (tree, _) = rig(64, 1, &values);
        let recent = tree.aggregate(0, 3).unwrap();
        assert!(recent.bounds.width() < 1.0, "bounds {}", recent.bounds);
    }

    #[test]
    fn count_in_band_matches_range_query() {
        let values: Vec<f64> = (0..96).map(|i| (i % 16) as f64).collect();
        let (tree, _) = rig(32, 32, &values);
        let band = ValueRange::new(4.0, 8.0);
        let c = tree.count_in_band(0, 31, band).unwrap();
        // Lossless tree: count equals the true count.
        let truth: Vec<f64> = values.iter().rev().take(32).copied().collect();
        let exact = truth.iter().filter(|v| band.contains(**v)).count();
        assert_eq!(c, exact);
    }

    #[test]
    fn rejects_inverted_span() {
        let (tree, _) = rig(16, 1, &(0..48).map(|i| i as f64).collect::<Vec<_>>());
        assert!(matches!(
            tree.aggregate(5, 3),
            Err(TreeError::BadQuery { .. })
        ));
        assert!(matches!(
            tree.count_in_band(5, 3, ValueRange::new(0.0, 1.0)),
            Err(TreeError::BadQuery { .. })
        ));
    }

    #[test]
    fn out_of_window_span_rejected() {
        let (tree, _) = rig(16, 1, &(0..48).map(|i| i as f64).collect::<Vec<_>>());
        assert!(matches!(
            tree.aggregate(0, 16),
            Err(TreeError::IndexOutOfWindow { .. })
        ));
    }
}
