//! Checksummed length-framed binary codec shared by the snapshot v2
//! format and the durability layer (`swat-store`).
//!
//! Two pieces:
//!
//! * [`crc32`] — the IEEE CRC-32 (the checksum of zip/PNG/ethernet),
//!   table-driven with a compile-time table. CRC-32 detects **every**
//!   single-bit error and every burst up to 32 bits, which is exactly
//!   the adversary the storage fault injector plays.
//! * [`Cursor`] / frame helpers — a bounds-checked little-endian reader
//!   that reports the **byte offset** of every failure, and writers for
//!   the section frame `[u8 tag] [u32 len] [u32 crc] [payload]` used by
//!   snapshots, checkpoints, and durable images.
//!
//! Every error is typed and positioned ([`CodecError`]); nothing in this
//! module panics on adversarial input.

use std::fmt;

/// Compile-time IEEE CRC-32 lookup table (polynomial `0xEDB88320`).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A positioned decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended at `offset` before the structure was complete.
    Truncated {
        /// Byte offset where more data was needed.
        offset: usize,
    },
    /// A field at `offset` failed validation.
    Invalid {
        /// What was wrong.
        what: &'static str,
        /// Byte offset of the offending field.
        offset: usize,
    },
    /// A frame's payload did not match its stored CRC-32.
    ChecksumMismatch {
        /// Byte offset of the frame's payload.
        offset: usize,
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset } => {
                write!(f, "truncated at byte {offset}")
            }
            CodecError::Invalid { what, offset } => {
                write!(f, "invalid {what} at byte {offset}")
            }
            CodecError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a `[tag] [len] [crc] [payload]` frame to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes (no snapshot comes
/// within orders of magnitude of that).
pub fn write_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload fits in u32");
    out.push(tag);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A bounds-checked little-endian reader that tracks its byte offset.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.at
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at the current offset.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::Truncated { offset: self.at });
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// The unread remainder as a raw slice, consuming it.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.at..];
        self.at = self.buf.len();
        out
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `f64`, rejecting NaN (snapshots never hold
    /// NaN; one appearing means corruption).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::Invalid`] on NaN.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let offset = self.at;
        let b = self.take(8)?;
        let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
        if v.is_nan() {
            return Err(CodecError::Invalid {
                what: "NaN value",
                offset,
            });
        }
        Ok(v)
    }

    /// Read one `[tag] [len] [crc] [payload]` frame, verifying the
    /// checksum. Returns the tag and a cursor over the payload; the
    /// payload cursor reports offsets relative to the *enclosing*
    /// buffer, so error positions stay absolute.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::ChecksumMismatch`].
    pub fn frame(&mut self) -> Result<(u8, Cursor<'a>), CodecError> {
        let tag = self.u8()?;
        let len_at = self.at;
        let len = self.u32()? as usize;
        let stored = self.u32()?;
        let payload_at = self.at;
        if len > self.remaining() {
            // The declared length itself may be the corrupted field;
            // report the position of the length word.
            return Err(CodecError::Truncated { offset: len_at });
        }
        let payload = self.take(len)?;
        let computed = crc32(payload);
        if computed != stored {
            return Err(CodecError::ChecksumMismatch {
                offset: payload_at,
                stored,
                computed,
            });
        }
        Ok((
            tag,
            Cursor {
                buf: &self.buf[..payload_at + len],
                at: payload_at,
            },
        ))
    }

    /// Fail with [`CodecError::Invalid`] at the current offset.
    pub fn invalid<T>(&self, what: &'static str) -> Result<T, CodecError> {
        Err(CodecError::Invalid {
            what,
            offset: self.at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_every_single_bit_flip() {
        let data = b"SWAT durability layer reference payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello");
        write_frame(&mut buf, 9, b"");
        let mut c = Cursor::new(&buf);
        let (tag, mut p) = c.frame().unwrap();
        assert_eq!(tag, 7);
        assert_eq!(p.take(5).unwrap(), b"hello");
        assert!(p.is_empty());
        let (tag, p) = c.frame().unwrap();
        assert_eq!(tag, 9);
        assert!(p.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn frame_errors_are_positioned() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"payload");
        // Corrupt the payload: checksum mismatch at the payload offset.
        let mut bad = buf.clone();
        bad[9] ^= 0x40;
        match Cursor::new(&bad).frame().unwrap_err() {
            CodecError::ChecksumMismatch { offset, .. } => assert_eq!(offset, 9),
            e => panic!("unexpected {e:?}"),
        }
        // Oversized declared length: truncated at the length word.
        let mut bad = buf.clone();
        bad[1] = 0xFF;
        bad[2] = 0xFF;
        match Cursor::new(&bad).frame().unwrap_err() {
            CodecError::Truncated { offset } => assert_eq!(offset, 1),
            e => panic!("unexpected {e:?}"),
        }
        // Any truncation point fails cleanly.
        for cut in 0..buf.len() {
            assert!(Cursor::new(&buf[..cut]).frame().is_err(), "cut {cut}");
        }
    }

    #[test]
    fn cursor_rejects_nan_with_offset() {
        let mut buf = vec![0xAA]; // one pad byte so the offset is nonzero
        buf.extend_from_slice(&f64::NAN.to_le_bytes());
        let mut c = Cursor::new(&buf);
        c.u8().unwrap();
        assert_eq!(
            c.f64().unwrap_err(),
            CodecError::Invalid {
                what: "NaN value",
                offset: 1
            }
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            CodecError::Truncated { offset: 4 },
            CodecError::Invalid {
                what: "x",
                offset: 9,
            },
            CodecError::ChecksumMismatch {
                offset: 2,
                stored: 1,
                computed: 3,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
