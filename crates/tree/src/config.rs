//! Configuration and error types for the SWAT tree.

use std::fmt;
use swat_wavelet::is_power_of_two;

use crate::query::QueryOptions;

/// Configuration of a [`crate::SwatTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwatConfig {
    window: usize,
    coefficients: usize,
    min_level: usize,
}

impl SwatConfig {
    /// A tree over a sliding window of `window` values (a power of two,
    /// at least 2) keeping one coefficient per node — the configuration the
    /// paper uses throughout ("a single coefficient (representing the
    /// average) is being maintained").
    ///
    /// # Errors
    ///
    /// [`TreeError::BadWindow`] unless `window` is a power of two >= 2.
    pub fn new(window: usize) -> Result<Self, TreeError> {
        Self::with_coefficients(window, 1)
    }

    /// As [`SwatConfig::new`] but keeping up to `k` Haar coefficients per
    /// node (k >= 1). More coefficients mean finer per-node detail at
    /// proportionally more space; `k = window` is lossless.
    ///
    /// # Errors
    ///
    /// [`TreeError::BadWindow`] or [`TreeError::BadCoefficients`].
    pub fn with_coefficients(window: usize, k: usize) -> Result<Self, TreeError> {
        if window < 2 || !is_power_of_two(window) {
            return Err(TreeError::BadWindow { window });
        }
        if k == 0 {
            return Err(TreeError::BadCoefficients { k });
        }
        Ok(SwatConfig {
            window,
            coefficients: k,
            min_level: 0,
        })
    }

    /// The same configuration operating in the paper's §2.5
    /// reduced-resolution mode: default query evaluation uses only tree
    /// levels `>= min_level` ("a client can choose to approximate the
    /// stream at any level"). `min_level = 0` is full resolution.
    ///
    /// This is part of the tree's configuration — not just a per-query
    /// option — so snapshots round-trip it and a restored tree answers
    /// its default queries identically.
    ///
    /// # Errors
    ///
    /// [`TreeError::BadMinLevel`] if `min_level >= log2(window)`.
    pub fn with_min_level(mut self, min_level: usize) -> Result<Self, TreeError> {
        if min_level >= self.levels() {
            return Err(TreeError::BadMinLevel {
                min_level,
                levels: self.levels(),
            });
        }
        self.min_level = min_level;
        Ok(self)
    }

    /// Sliding-window size `N`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Per-node coefficient budget `k`.
    pub fn coefficients(&self) -> usize {
        self.coefficients
    }

    /// The configured reduced-resolution floor (0 = full resolution).
    pub fn min_level(&self) -> usize {
        self.min_level
    }

    /// The [`QueryOptions`] the option-less query entry points use: the
    /// configured `min_level`.
    pub fn default_opts(&self) -> QueryOptions {
        QueryOptions {
            min_level: self.min_level,
        }
    }

    /// Number of tree levels, `n = log2(N)`.
    pub fn levels(&self) -> usize {
        swat_wavelet::log2(self.window) as usize
    }

    /// Total node count, `3 log N - 2` (top level holds a single node).
    pub fn node_count(&self) -> usize {
        3 * self.levels() - 2
    }
}

/// Errors from constructing or querying a SWAT tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// Window size must be a power of two, at least 2.
    BadWindow {
        /// The offending window size.
        window: usize,
    },
    /// Coefficient budget must be at least 1.
    BadCoefficients {
        /// The offending budget.
        k: usize,
    },
    /// The reduced-resolution floor must name an existing level.
    BadMinLevel {
        /// The offending floor.
        min_level: usize,
        /// Levels the window induces.
        levels: usize,
    },
    /// Bulk initialization got the wrong number of values.
    BadInitLength {
        /// Number of values supplied.
        got: usize,
        /// Window size expected.
        want: usize,
    },
    /// A queried index lies outside the sliding window.
    IndexOutOfWindow {
        /// The offending index.
        index: usize,
        /// Window size.
        window: usize,
    },
    /// The tree has not yet seen enough data to cover the queried index
    /// (still warming up).
    Uncovered {
        /// The first index the tree could not cover.
        index: usize,
    },
    /// An inner-product query was malformed (empty, or mismatched
    /// index/weight lengths, or duplicate indices).
    BadQuery {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A stream value was NaN or infinite (fallible ingestion only; the
    /// panicking entry points assert instead).
    NonFinite {
        /// Zero-based stream position of the offending value (the arrival
        /// count it would have had).
        position: u64,
    },
    /// Restoring a tree supplied the wrong number of level queues.
    RestoredLevelCount {
        /// Queues supplied.
        got: usize,
        /// Levels the configuration demands.
        want: usize,
    },
    /// A restored summary sat in the queue of a different level.
    RestoredLevelMismatch {
        /// Level of the queue the summary was found in.
        queue: usize,
        /// Level recorded in the summary itself.
        summary: usize,
    },
    /// A restored summary claimed a creation time after the tree's clock.
    RestoredFromFuture {
        /// The summary's creation time.
        created_at: u64,
        /// The tree's arrival count.
        now: u64,
    },
    /// A restored level queue held more generations than the level
    /// retains.
    RestoredOverCapacity {
        /// The offending level.
        level: usize,
        /// Summaries supplied for it.
        got: usize,
        /// Generations the level retains (3, or 1 at the top).
        capacity: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::BadWindow { window } => {
                write!(f, "window size {window} must be a power of two >= 2")
            }
            TreeError::BadCoefficients { k } => {
                write!(f, "coefficient budget {k} must be >= 1")
            }
            TreeError::BadMinLevel { min_level, levels } => {
                write!(
                    f,
                    "min level {min_level} must be below the level count {levels}"
                )
            }
            TreeError::BadInitLength { got, want } => {
                write!(f, "initial window has {got} values, expected {want}")
            }
            TreeError::IndexOutOfWindow { index, window } => {
                write!(f, "index {index} outside sliding window of size {window}")
            }
            TreeError::Uncovered { index } => write!(
                f,
                "index {index} not yet covered by any summary (tree warming up)"
            ),
            TreeError::BadQuery { reason } => write!(f, "malformed query: {reason}"),
            TreeError::NonFinite { position } => {
                write!(f, "stream value at position {position} is not finite")
            }
            TreeError::RestoredLevelCount { got, want } => {
                write!(f, "restored tree has {got} level queues, expected {want}")
            }
            TreeError::RestoredLevelMismatch { queue, summary } => write!(
                f,
                "restored summary labeled level {summary} found in level-{queue} queue"
            ),
            TreeError::RestoredFromFuture { created_at, now } => write!(
                f,
                "restored summary created at {created_at}, after the tree's clock {now}"
            ),
            TreeError::RestoredOverCapacity {
                level,
                got,
                capacity,
            } => write!(
                f,
                "restored level {level} has {got} summaries, retains at most {capacity}"
            ),
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        let c = SwatConfig::new(16).unwrap();
        assert_eq!(c.window(), 16);
        assert_eq!(c.coefficients(), 1);
        assert_eq!(c.levels(), 4);
        assert_eq!(c.node_count(), 10); // 3*4 - 2, as in the paper

        let c = SwatConfig::with_coefficients(1024, 8).unwrap();
        assert_eq!(c.levels(), 10);
        assert_eq!(c.node_count(), 28);
        assert_eq!(c.coefficients(), 8);
        assert_eq!(c.min_level(), 0);
        assert_eq!(c.default_opts(), QueryOptions::default());
    }

    #[test]
    fn min_level_configs() {
        let c = SwatConfig::new(16).unwrap().with_min_level(2).unwrap();
        assert_eq!(c.min_level(), 2);
        assert_eq!(c.default_opts(), QueryOptions::at_level(2));
        assert!(matches!(
            SwatConfig::new(16).unwrap().with_min_level(4),
            Err(TreeError::BadMinLevel {
                min_level: 4,
                levels: 4
            })
        ));
    }

    #[test]
    fn invalid_configs() {
        assert!(matches!(
            SwatConfig::new(0),
            Err(TreeError::BadWindow { window: 0 })
        ));
        assert!(matches!(
            SwatConfig::new(1),
            Err(TreeError::BadWindow { .. })
        ));
        assert!(matches!(
            SwatConfig::new(12),
            Err(TreeError::BadWindow { .. })
        ));
        assert!(matches!(
            SwatConfig::with_coefficients(8, 0),
            Err(TreeError::BadCoefficients { k: 0 })
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            TreeError::BadWindow { window: 3 },
            TreeError::BadCoefficients { k: 0 },
            TreeError::BadMinLevel {
                min_level: 4,
                levels: 4,
            },
            TreeError::BadInitLength { got: 3, want: 8 },
            TreeError::IndexOutOfWindow {
                index: 20,
                window: 16,
            },
            TreeError::Uncovered { index: 5 },
            TreeError::BadQuery { reason: "empty" },
            TreeError::NonFinite { position: 12 },
            TreeError::RestoredLevelCount { got: 3, want: 4 },
            TreeError::RestoredLevelMismatch {
                queue: 1,
                summary: 2,
            },
            TreeError::RestoredFromFuture {
                created_at: 9,
                now: 4,
            },
            TreeError::RestoredOverCapacity {
                level: 0,
                got: 4,
                capacity: 3,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
