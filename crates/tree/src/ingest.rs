//! The blocked (chunked) ingest fast path, and the frozen scalar
//! reference it is property-tested against.
//!
//! # The blocked cascade
//!
//! The scalar update ([`SwatTree::push`]) does per-arrival work: build a
//! level-0 summary struct, shift the level slab, and walk the cascade,
//! constructing one [`HaarCoeffs`] per refreshed level. Correct and
//! `O(k)` amortized — but branchy, allocation-shaped, and opaque to the
//! vectorizer.
//!
//! [`SwatTree::push_batch`] instead splits the batch into chunks of
//! `C = 2^L` values aligned to the stream clock (`t0 ≡ 0 (mod C)`), and
//! runs each chunk's *entire* cascade level by level over flat
//! structure-of-arrays slabs (`swat_wavelet::block`):
//!
//! * Level 0: the summaries of even arrivals `t0 + 2m` come straight off
//!   the input slice as `avg`/`det` lanes ([`forward_block`]) plus
//!   `min`/`max` range lanes. Odd arrivals' summaries are skipped — they
//!   never feed a higher level, and only the one at `t0 + C − 1` can
//!   survive into the final slab, where it is computed directly.
//! * Level `l ≥ 1` refreshes at `t0 + n·2^l`, merging the child level's
//!   summaries created at that instant and `2^l` earlier. Only the
//!   *even*-`n` refreshes feed level `l + 1`, and they form the slab
//!   `F_l[m] =` (level-`l` summary at `t0 + m·2^(l+1)`) `=
//!   merge(F_{l−1}[2m], F_{l−1}[2m−1])` — adjacent entries of the child
//!   slab, computed by one precompiled [`PairMergePlan`] sweep.
//! * Each level then installs its *slab tail*: the last
//!   `min(capacity, refreshes)` summaries of the chunk, which is exactly
//!   what the per-arrival pushes would have retained. Odd-`n` tail
//!   entries are merged on the spot from the child slab; the `n = 1`
//!   entry reads the child's newest summary as of `t0` (slab slot 0,
//!   copied in before any mutation).
//! * Refreshes taller than the chunk (when `2^(L+1) | t0 + C`) finish
//!   through the ordinary scalar cascade.
//!
//! Unaligned batch heads, sub-chunk tails, and pathological restored
//! slab states fall back to the scalar path value by value, so any batch
//! decomposition yields the same tree.
//!
//! # Bit-identity
//!
//! The result is **bit-identical** to the scalar path — the arithmetic
//! per coefficient is the same expression in the same order, truncation
//! commutes with the blocked merge (see `swat_wavelet::block`), and the
//! range lanes replay `ValueRange::of`/`union` exactly. The frozen copy
//! of the pre-block scalar path lives in [`reference`] and the
//! `ingest_equivalence` property suite pins the two together node by
//! node across window sizes, budgets, chunk alignments, and interleaved
//! `push`/`push_batch` call patterns.

use std::cell::RefCell;

use crate::node::Summary;
use crate::range::ValueRange;
use crate::tree::SwatTree;
use swat_wavelet::{forward_block, HaarCoeffs, MergeScratch, PairMergePlan};

/// Chunks below this size are ingested value by value: the blocked
/// bookkeeping would cost more than it saves, and the level-0 tail
/// construction may reach before the chunk.
const MIN_BLOCK: usize = 8;

/// Default upper bound on the blocked chunk size (values per cascade
/// sweep): large enough to amortize per-level bookkeeping, small enough
/// that a chunk's lanes stay cache-resident.
const DEFAULT_MAX_CHUNK: usize = 1024;

/// The `extend` staging buffer size.
const EXTEND_BUF: usize = DEFAULT_MAX_CHUNK;

/// Flat per-level scratch lanes: entry `m` of a level's slab holds the
/// stored coefficient prefix (stride = stored count) and range bounds of
/// the summary created at `t0 + m * width`.
#[derive(Debug, Default, Clone)]
struct Lanes {
    coeffs: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// Reusable buffers for the blocked ingest path — the ingestion
/// counterpart of [`crate::QueryScratch`].
///
/// [`SwatTree::push_batch`] borrows a thread-local scratch
/// automatically; callers driving many trees from one loop (or wanting a
/// non-default chunk size) can own one and use
/// [`SwatTree::push_batch_with_scratch`]. All buffers grow to a
/// high-water mark and are reused, so steady-state batched ingestion
/// performs no heap allocation (see `tests/ingest_alloc.rs`).
#[derive(Debug, Clone)]
pub struct IngestScratch {
    max_chunk: usize,
    lanes: Vec<Lanes>,
    /// `plans[l - 1]` merges level-`(l-1)` siblings into level `l`.
    plans: Vec<PairMergePlan>,
    /// Budget the plans were compiled for.
    plan_k: usize,
    /// Staging for tail merges computed one pair at a time.
    stash: Vec<f64>,
    /// Staging buffer for the iterator-fed `extend` path.
    buf: Vec<f64>,
}

impl Default for IngestScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl IngestScratch {
    /// An empty scratch with the default chunk size. Allocates nothing
    /// until first use.
    pub fn new() -> Self {
        IngestScratch {
            max_chunk: DEFAULT_MAX_CHUNK,
            lanes: Vec::new(),
            plans: Vec::new(),
            plan_k: 0,
            stash: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// An empty scratch whose blocked chunks are capped at `max_chunk`
    /// values (rounded down to a power of two, clamped to
    /// `[8, 1_048_576]`) — the ingest bench sweeps this to measure
    /// cascade amortization.
    pub fn with_max_chunk(max_chunk: usize) -> Self {
        let clamped = max_chunk.clamp(MIN_BLOCK, 1 << 20);
        IngestScratch {
            max_chunk: floor_pow2(clamped),
            ..Self::new()
        }
    }

    /// The configured chunk cap.
    pub fn max_chunk(&self) -> usize {
        self.max_chunk
    }

    /// Size lanes, plans, and stash for a chunk of `c` values under
    /// budget `k`, with materialized slabs for levels `0..=l_cap` and
    /// merge plans for parent levels `1..=l_top`.
    fn prepare(&mut self, k: usize, l_cap: usize, l_top: usize, c: usize) {
        if self.plan_k != k {
            self.plans.clear();
            self.plan_k = k;
        }
        while self.plans.len() < l_top {
            let child_len = 1usize << (self.plans.len() + 1);
            self.plans.push(
                PairMergePlan::new(child_len, k.min(child_len), k)
                    .expect("positive budget, power-of-two child"),
            );
        }
        if self.lanes.len() < l_cap + 1 {
            self.lanes.resize_with(l_cap + 1, Lanes::default);
        }
        for (l, lane) in self.lanes.iter_mut().enumerate().take(l_cap + 1) {
            let entries = (c >> (l + 1)) + 1;
            let kl = k.min(1 << (l + 1));
            if lane.coeffs.len() < entries * kl {
                lane.coeffs.resize(entries * kl, 0.0);
            }
            if lane.lo.len() < entries {
                lane.lo.resize(entries, 0.0);
                lane.hi.resize(entries, 0.0);
            }
        }
        if self.stash.len() < k {
            self.stash.resize(k, 0.0);
        }
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<IngestScratch> = RefCell::new(IngestScratch::new());
}

/// Run `f` with this thread's shared ingest scratch. Callers must not
/// run user code (iterators, callbacks) inside `f` — the scratch is a
/// `RefCell` and re-entry would double-borrow.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut IngestScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Largest power of two `<= x` (`x >= 1`).
fn floor_pow2(x: usize) -> usize {
    debug_assert!(x >= 1);
    1usize << (usize::BITS - 1 - x.leading_zeros())
}

/// The next chunk length for a stream at clock `t` with `remaining`
/// values left: the largest power of two dividing `t` (anything for
/// `t = 0`), capped by the remaining input and the scratch's chunk cap.
/// A result below [`MIN_BLOCK`] means "ingest one value the scalar way
/// and retry" — at most `MIN_BLOCK - 1` consecutive times, after which
/// `t` is aligned.
fn chunk_len(t: u64, remaining: usize, max_chunk: usize) -> usize {
    debug_assert!(remaining > 0);
    let align = if t == 0 {
        max_chunk
    } else {
        1usize << t.trailing_zeros().min(30)
    };
    align.min(max_chunk).min(floor_pow2(remaining))
}

impl SwatTree {
    /// The chunk loop behind every batched entry point: blocked cascades
    /// over aligned chunks, scalar pushes for everything else. Callers
    /// have validated finiteness.
    pub(crate) fn push_batch_core(&mut self, values: &[f64], scratch: &mut IngestScratch) {
        let k = self.config.coefficients();
        let mut pool = std::mem::take(&mut self.pool);
        let mut rest = values;
        while !rest.is_empty() {
            let c = chunk_len(self.t, rest.len(), scratch.max_chunk);
            if c < MIN_BLOCK {
                // Unaligned head or sub-chunk tail: one scalar push
                // realigns the clock for the next round.
                self.push_one(rest[0], k, &mut pool);
                rest = &rest[1..];
            } else if self.push_chunk_blocked(&rest[..c], k, scratch, &mut pool) {
                rest = &rest[c..];
            } else {
                // Slab state a stream-grown tree cannot have (restored
                // by hand): the scalar path is the semantics.
                for &v in &rest[..c] {
                    self.push_one(v, k, &mut pool);
                }
                rest = &rest[c..];
            }
        }
        self.pool = pool;
    }

    /// Ingest one aligned power-of-two chunk through the blocked cascade.
    /// Returns `false` — before any mutation — if the chunk-start slab
    /// state fails verification and the caller should fall back to the
    /// scalar path.
    fn push_chunk_blocked(
        &mut self,
        chunk: &[f64],
        k: usize,
        scratch: &mut IngestScratch,
        pool: &mut MergeScratch,
    ) -> bool {
        let c = chunk.len();
        debug_assert!(c >= MIN_BLOCK && c.is_power_of_two());
        let t0 = self.t;
        debug_assert_eq!(t0 % c as u64, 0, "chunks start aligned");
        let n_levels = self.levels.len();
        let big_l = c.trailing_zeros() as usize;
        // Highest level refreshed within the chunk, and the highest one
        // whose slab of even refreshes is materialized (the chunk-top
        // level refreshes at most twice; its entries are built one pair
        // at a time).
        let l_top = big_l.min(n_levels - 1);
        let l_cap = l_top.min(big_l - 1);
        // On a cold stream the refresh at t0 + 2^l is still warming
        // (level l first refreshes at t = 2^(l+1)); for t0 >= c every
        // in-chunk refresh is valid.
        let n_min: usize = if t0 == 0 { 2 } else { 1 };

        // Level l's tail includes the n = 1 refresh exactly when the
        // chunk's refresh count fits in its slab; that merge reads the
        // child level's newest summary as of t0. Verify those boundary
        // summaries up front — a stream-grown tree always passes.
        let mut boundary_needed = [false; 64];
        if t0 > 0 {
            for l in 1..=l_top {
                let count = c >> l;
                if count <= self.levels[l].capacity() {
                    let cl = l - 1;
                    let ck = k.min(1 << (cl + 1));
                    let ok = self.levels[cl].front().is_some_and(|s| {
                        s.created_at() == t0
                            && s.coeffs().len() == 1 << (cl + 1)
                            && s.coeffs().stored() == ck
                    });
                    if !ok {
                        return false;
                    }
                    boundary_needed[cl] = true;
                }
            }
        }

        scratch.prepare(k, l_cap, l_top, c);
        let IngestScratch {
            lanes,
            plans,
            stash,
            ..
        } = scratch;

        // Level-0 lanes: summaries of the even arrivals t0 + 2m,
        // m = 1..=c/2, straight off the input slice. Entry m pairs
        // chunk[2m-1] (newer) with chunk[2m-2] (older); the lane min/max
        // replay ValueRange::of(&[newer, older]) exactly.
        let k0 = k.min(2);
        {
            let lane = &mut lanes[0];
            forward_block(chunk, k, &mut lane.coeffs[k0..]);
            for (i, p) in chunk.chunks_exact(2).enumerate() {
                lane.lo[i + 1] = p[1].min(p[0]);
                lane.hi[i + 1] = p[1].max(p[0]);
            }
        }
        // Chunk-start boundary summaries (slab slot 0) where a tail
        // merge will read them — copied before any slab mutation.
        for (cl, lane) in lanes.iter_mut().enumerate().take(l_cap + 1) {
            if boundary_needed[cl] {
                let s = self.levels[cl].front().expect("verified above");
                let ck = k.min(1 << (cl + 1));
                lane.coeffs[..ck].copy_from_slice(s.coeffs().coefficients());
                lane.lo[0] = s.range().lo();
                lane.hi[0] = s.range().hi();
            }
        }

        // Higher lanes: F_l[m] = merge(F_{l-1}[2m] newer, F_{l-1}[2m-1]
        // older) — adjacent child entries once slot 0 is skipped. The
        // range lanes replay right.range().union(left.range()).
        for l in 1..=l_cap {
            let kl = k.min(1 << (l + 1));
            let ck = k.min(1 << l);
            let pairs = c >> (l + 1);
            let (childs, rest) = lanes.split_at_mut(l);
            let child = &childs[l - 1];
            let lane = &mut rest[0];
            plans[l - 1].merge_adjacent(&child.coeffs[ck..], &mut lane.coeffs[kl..], pairs);
            for i in 0..pairs {
                lane.lo[i + 1] = child.lo[2 * i + 2].min(child.lo[2 * i + 1]);
                lane.hi[i + 1] = child.hi[2 * i + 2].max(child.hi[2 * i + 1]);
            }
        }

        // Install level 0's slab tail: the last min(capacity, 3) of the
        // chunk's per-arrival summaries — created at t0+c-2 (even),
        // t0+c-1 (odd, computed here from the slice), t0+c (even).
        {
            let cap0 = self.levels[0].capacity();
            let lane = &lanes[0];
            let m_last = c / 2;
            let odd_newer = chunk[c - 2];
            let odd_older = chunk[c - 3];
            stash[0] = (odd_newer + odd_older) * 0.5;
            if k0 == 2 {
                stash[1] = (odd_newer - odd_older) * 0.5;
            }
            let entries: [(u64, &[f64], f64, f64); 3] = [
                (
                    t0 + c as u64 - 2,
                    &lane.coeffs[(m_last - 1) * k0..][..k0],
                    lane.lo[m_last - 1],
                    lane.hi[m_last - 1],
                ),
                (
                    t0 + c as u64 - 1,
                    &stash[..k0],
                    odd_newer.min(odd_older),
                    odd_newer.max(odd_older),
                ),
                (
                    t0 + c as u64,
                    &lane.coeffs[m_last * k0..][..k0],
                    lane.lo[m_last],
                    lane.hi[m_last],
                ),
            ];
            let take = cap0.min(3);
            for &(created, coeffs, lo, hi) in &entries[3 - take..] {
                let hc = HaarCoeffs::from_prefix_with(2, coeffs, pool)
                    .expect("level-0 prefixes are valid");
                let summary = Summary::new(hc, ValueRange::new(lo, hi), created, 0);
                if let Some(evicted) = self.levels[0].push(summary) {
                    pool.reclaim(evicted.into_coeffs());
                }
            }
        }

        // Install levels 1..=l_top: each level's last min(capacity,
        // valid refreshes), oldest first — exactly what the scalar
        // per-arrival pushes retain.
        for l in 1..=l_top {
            let cap = self.levels[l].capacity();
            let count = c >> l;
            let valid = (count + 1).saturating_sub(n_min);
            let take = cap.min(valid);
            if take == 0 {
                continue; // Still warming up (cold stream, tall level).
            }
            let kl = k.min(1 << (l + 1));
            let ck = k.min(1 << l);
            for n in (count - take + 1)..=count {
                let created = t0 + ((n as u64) << l);
                let (coeffs, lo, hi): (&[f64], f64, f64) = if n % 2 == 0 && l <= l_cap {
                    let m = n / 2;
                    let lane = &lanes[l];
                    (&lane.coeffs[m * kl..][..kl], lane.lo[m], lane.hi[m])
                } else {
                    // Odd refresh (or the chunk-top level, whose slab is
                    // not materialized): merge child entries n (newer)
                    // and n-1 (older) on the spot.
                    let child = &lanes[l - 1];
                    plans[l - 1].merge_one(
                        &child.coeffs[n * ck..][..ck],
                        &child.coeffs[(n - 1) * ck..][..ck],
                        &mut stash[..kl],
                    );
                    (
                        &stash[..kl],
                        child.lo[n].min(child.lo[n - 1]),
                        child.hi[n].max(child.hi[n - 1]),
                    )
                };
                let hc = HaarCoeffs::from_prefix_with(1 << (l + 1), coeffs, pool)
                    .expect("tail prefixes are valid");
                let summary = Summary::new(hc, ValueRange::new(lo, hi), created, l);
                if let Some(evicted) = self.levels[l].push(summary) {
                    pool.reclaim(evicted.into_coeffs());
                }
            }
        }

        // Advance the clock past the chunk and finish any cascade taller
        // than the chunk (2^(L+1) may divide t0 + c).
        self.t += c as u64;
        self.last = Some(chunk[c - 1]);
        let top_refreshed = (c >> l_top) >= n_min;
        if top_refreshed && l_top < n_levels - 1 {
            self.cascade_from(l_top + 1, k, pool);
        }
        true
    }
}

/// Shared driver for [`SwatTree::extend`] / [`SwatTree::try_extend`]:
/// stage iterator values into aligned blocks and feed them through the
/// chunked cascade. Returns `Some(position)` of the first non-finite
/// value (everything before it has been ingested), `None` if the whole
/// sequence was finite.
///
/// The staging buffer is taken *out* of the thread-local scratch while
/// the user's iterator runs, so iterator code that itself ingests (into
/// this or another tree) cannot double-borrow the scratch.
pub(crate) fn extend_buffered<I: IntoIterator<Item = f64>>(
    tree: &mut SwatTree,
    values: I,
) -> Option<u64> {
    let mut buf = with_thread_scratch(|s| std::mem::take(&mut s.buf));
    buf.clear();
    buf.reserve(EXTEND_BUF);
    let mut bad = false;
    for v in values {
        if !v.is_finite() {
            bad = true;
            break;
        }
        buf.push(v);
        if buf.len() == EXTEND_BUF {
            with_thread_scratch(|s| tree.push_batch_core(&buf, s));
            buf.clear();
        }
    }
    if !buf.is_empty() {
        with_thread_scratch(|s| tree.push_batch_core(&buf, s));
        buf.clear();
    }
    let position = bad.then_some(tree.t);
    with_thread_scratch(|s| s.buf = buf);
    position
}

pub mod reference {
    //! The **frozen** scalar ingest path, snapshotted before the blocked
    //! cascade landed.
    //!
    //! This module is the before-side of the freeze-the-reference
    //! discipline `crate::query::reference` established: a verbatim copy
    //! of the per-arrival update the tree shipped with, kept as (a) the
    //! bit-identity oracle the `ingest_equivalence` property suite pins
    //! [`SwatTree::push_batch`] against, and (b) the baseline the ingest
    //! bench reports speedups over. It must not be "improved" — its
    //! value is that it does not change.

    use crate::node::Summary;
    use crate::range::ValueRange;
    use crate::tree::SwatTree;
    use swat_wavelet::{HaarCoeffs, MergeScratch};

    /// Frozen [`SwatTree::push`]: one scalar per-arrival update with a
    /// call-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn push(tree: &mut SwatTree, value: f64) {
        assert!(value.is_finite(), "stream values must be finite");
        let k = tree.config.coefficients();
        let mut scratch = MergeScratch::new();
        push_one(tree, value, k, &mut scratch);
    }

    /// Frozen pre-block [`SwatTree::push_batch`]: the scalar per-value
    /// loop with hoisted budget read and one call-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite (checked up front).
    pub fn push_batch(tree: &mut SwatTree, values: &[f64]) {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "stream values must be finite"
        );
        let k = tree.config.coefficients();
        let mut scratch = MergeScratch::new();
        for &value in values {
            push_one(tree, value, k, &mut scratch);
        }
    }

    /// Frozen [`SwatTree::extend`].
    ///
    /// # Panics
    ///
    /// Panics on the first non-finite value (prior values are ingested).
    pub fn extend<I: IntoIterator<Item = f64>>(tree: &mut SwatTree, values: I) {
        let k = tree.config.coefficients();
        let mut scratch = MergeScratch::new();
        for v in values {
            assert!(v.is_finite(), "stream values must be finite");
            push_one(tree, v, k, &mut scratch);
        }
    }

    /// The frozen per-arrival update (the pre-block `push_one`, verbatim).
    fn push_one(tree: &mut SwatTree, value: f64, k: usize, scratch: &mut MergeScratch) {
        debug_assert!(value.is_finite(), "callers validate finiteness");
        let prev = tree.last.replace(value);
        tree.t += 1;
        let Some(prev) = prev else {
            return; // First value ever: no pair to summarize yet.
        };
        // Level 0: summarize the two newest raw values (d_0, d_1).
        let coeffs = HaarCoeffs::merge_with(
            &HaarCoeffs::scalar(value),
            &HaarCoeffs::scalar(prev),
            k,
            scratch,
        )
        .expect("scalars always merge");
        let summary = Summary::new(coeffs, ValueRange::of(&[value, prev]), tree.t, 0);
        if let Some(evicted) = tree.levels[0].push(summary) {
            scratch.reclaim(evicted.into_coeffs());
        }
        // Cascade: level l refreshes when 2^l divides t.
        let top = (tree.t.trailing_zeros() as usize).min(tree.levels.len() - 1);
        for l in 1..=top {
            let child = &tree.levels[l - 1];
            let (Some(right), Some(left)) = (child.front(), child.get(2)) else {
                break; // Still warming up.
            };
            debug_assert_eq!(right.created_at(), tree.t);
            debug_assert_eq!(left.created_at(), tree.t - (1 << l));
            let coeffs = HaarCoeffs::merge_with(right.coeffs(), left.coeffs(), k, scratch)
                .expect("sibling blocks have equal widths");
            let range = right.range().union(left.range());
            let summary = Summary::new(coeffs, range, tree.t, l);
            if let Some(evicted) = tree.levels[l].push(summary) {
                scratch.reclaim(evicted.into_coeffs());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwatConfig;

    #[test]
    fn chunk_alignment_schedule() {
        // Cold stream: take the biggest chunk the input allows.
        assert_eq!(chunk_len(0, 4096, 1024), 1024);
        assert_eq!(chunk_len(0, 100, 1024), 64);
        // Odd clock: single scalar push to realign.
        assert_eq!(chunk_len(5, 1000, 1024), 1);
        // Alignment ramps with the clock's trailing zeros.
        assert_eq!(chunk_len(8, 1000, 1024), 8);
        assert_eq!(chunk_len(16, 1000, 1024), 16);
        assert_eq!(chunk_len(1024, 100_000, 1024), 1024);
        // Remaining input caps the chunk.
        assert_eq!(chunk_len(1024, 9, 1024), 8);
        assert_eq!(chunk_len(1024, 7, 1024), 4);
    }

    #[test]
    fn scratch_chunk_cap_is_clamped_pow2() {
        assert_eq!(IngestScratch::with_max_chunk(1000).max_chunk(), 512);
        assert_eq!(IngestScratch::with_max_chunk(1).max_chunk(), 8);
        assert_eq!(
            IngestScratch::with_max_chunk(usize::MAX).max_chunk(),
            1 << 20
        );
        assert_eq!(IngestScratch::new().max_chunk(), 1024);
    }

    #[test]
    fn blocked_matches_reference_smoke() {
        // The full property suite lives in tests/ingest_equivalence.rs;
        // this is the in-crate canary.
        for (n, k) in [(16usize, 1usize), (64, 8), (256, 3)] {
            let config = SwatConfig::with_coefficients(n, k).unwrap();
            let values: Vec<f64> = (0..5 * n)
                .map(|i| ((i * 37 + 11) % 97) as f64 - 48.0)
                .collect();
            let mut blocked = SwatTree::new(config);
            blocked.push_batch(&values);
            let mut frozen = SwatTree::new(config);
            reference::push_batch(&mut frozen, &values);
            assert_eq!(
                blocked.answers_digest(),
                frozen.answers_digest(),
                "n={n} k={k}"
            );
        }
    }
}
