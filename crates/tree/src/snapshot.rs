//! Checkpointing: serialize a tree's summaries to bytes and restore them.
//!
//! A SWAT is tiny (`O(k log N)` numbers), which makes checkpointing it
//! across process restarts — or shipping it to another site, as the
//! paper's distributed setting does with ranges — nearly free. Version 2
//! is the durable format: explicit little-endian, length-framed,
//! CRC32-checksummed sections ([`crate::codec`]) so that any bit flip or
//! truncation is detected and positioned, never silently restored:
//!
//! ```text
//! magic "SWAT"  u8 version = 2
//! section CONFIG    [u8 1][u32 len][u32 crc]  u64 window  u64 k  u64 min_level
//! section STATE     [u8 2][u32 len][u32 crc]  u64 t  u8 has_last [f64 last]
//! section SUMMARIES [u8 3][u32 len][u32 crc]  u64 count, then per summary:
//!                   u64 level  u64 created_at  f64 lo  f64 hi  u64 n_coeffs [f64...]
//! ```
//!
//! [`crate::continuous::ContinuousEngine`] snapshots append one more
//! section (`SUBS`, tag 4) carrying the standing-query table;
//! [`crate::multi::StreamSet`] snapshots wrap one framed tree snapshot
//! per stream under their own header. Version 1 (the unframed,
//! unchecksummed PR-era layout, which also predates `min_level`) is
//! still readable.
//!
//! Restores validate structure exhaustively; a corrupted or truncated
//! buffer yields a [`SnapshotError`] carrying the byte offset of the
//! failure, never a panic. `tests/snapshot_fuzz.rs` flips and truncates
//! every byte of a reference snapshot to enforce exactly that.

use std::collections::VecDeque;
use std::fmt;

use crate::codec::{write_frame, CodecError, Cursor};
use crate::config::SwatConfig;
use crate::node::Summary;
use crate::range::ValueRange;
use crate::tree::SwatTree;
use swat_wavelet::HaarCoeffs;

pub(crate) const MAGIC: &[u8; 4] = b"SWAT";
pub(crate) const VERSION: u8 = 2;
const VERSION_V1: u8 = 1;

pub(crate) const SEC_CONFIG: u8 = 1;
pub(crate) const SEC_STATE: u8 = 2;
pub(crate) const SEC_SUMMARIES: u8 = 3;
pub(crate) const SEC_SUBS: u8 = 4;

/// Errors from [`SwatTree::restore`] and the other snapshot readers.
///
/// Every variant that concerns the buffer's content carries the byte
/// offset at which the problem was detected, so a corrupted checkpoint
/// can be localized rather than just rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The buffer ended at `offset` before the structure was complete.
    Truncated {
        /// Byte offset where more data was needed.
        offset: usize,
    },
    /// A field at `offset` failed validation (window not a power of two,
    /// coefficient counts inconsistent, non-finite values, …).
    Invalid {
        /// What failed validation.
        what: &'static str,
        /// Byte offset of the offending field.
        offset: usize,
    },
    /// A checksummed section did not match its stored CRC-32.
    ChecksumMismatch {
        /// Byte offset of the section payload.
        offset: usize,
        /// Checksum stored in the section header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a SWAT snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::Invalid { what, offset } => {
                write!(f, "invalid snapshot at byte {offset}: {what}")
            }
            SnapshotError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "snapshot checksum mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { offset } => SnapshotError::Truncated { offset },
            CodecError::Invalid { what, offset } => SnapshotError::Invalid { what, offset },
            CodecError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => SnapshotError::ChecksumMismatch {
                offset,
                stored,
                computed,
            },
        }
    }
}

/// Write the shared tree body — magic, version, and the CONFIG / STATE /
/// SUMMARIES sections — used by plain tree snapshots and (with a SUBS
/// section appended) continuous-engine snapshots.
pub(crate) fn write_tree_body(tree: &SwatTree, out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    let mut sec = Vec::with_capacity(24);
    sec.extend_from_slice(&(tree.config().window() as u64).to_le_bytes());
    sec.extend_from_slice(&(tree.config().coefficients() as u64).to_le_bytes());
    sec.extend_from_slice(&(tree.config().min_level() as u64).to_le_bytes());
    write_frame(out, SEC_CONFIG, &sec);

    sec.clear();
    sec.extend_from_slice(&tree.arrivals().to_le_bytes());
    match tree.newest() {
        Some(v) => {
            sec.push(1);
            sec.extend_from_slice(&v.to_le_bytes());
        }
        None => sec.push(0),
    }
    write_frame(out, SEC_STATE, &sec);

    sec.clear();
    sec.extend_from_slice(&(tree.summary_count() as u64).to_le_bytes());
    // Summaries in query order (levels ascending, newest first): the
    // restore path rebuilds each level queue in that order.
    for (level, _, s) in tree.nodes() {
        sec.extend_from_slice(&(level as u64).to_le_bytes());
        sec.extend_from_slice(&s.created_at().to_le_bytes());
        sec.extend_from_slice(&s.range().lo().to_le_bytes());
        sec.extend_from_slice(&s.range().hi().to_le_bytes());
        let coeffs = s.coeffs().coefficients();
        sec.extend_from_slice(&(coeffs.len() as u64).to_le_bytes());
        for c in coeffs {
            sec.extend_from_slice(&c.to_le_bytes());
        }
    }
    write_frame(out, SEC_SUMMARIES, &sec);
}

/// Read a section frame and check its tag.
fn expect_section<'a>(
    c: &mut Cursor<'a>,
    want: u8,
    what: &'static str,
) -> Result<Cursor<'a>, SnapshotError> {
    let at = c.offset();
    let (tag, payload) = c.frame()?;
    if tag != want {
        return Err(SnapshotError::Invalid { what, offset: at });
    }
    Ok(payload)
}

/// Parse the shared tree body (magic, version, CONFIG / STATE /
/// SUMMARIES) from `c`, leaving the cursor positioned after the
/// SUMMARIES section. Only the current version is accepted; v1 has no
/// section structure and is handled by [`restore_v1`].
pub(crate) fn parse_tree_body(c: &mut Cursor<'_>) -> Result<SwatTree, SnapshotError> {
    if c.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }

    let mut sec = expect_section(c, SEC_CONFIG, "expected CONFIG section")?;
    let config_at = sec.offset();
    let window = sec.u64()? as usize;
    let k = sec.u64()? as usize;
    let min_level = sec.u64()? as usize;
    let config = SwatConfig::with_coefficients(window, k)
        .and_then(|cfg| cfg.with_min_level(min_level))
        .map_err(|_| SnapshotError::Invalid {
            what: "bad window/coefficient/min-level config",
            offset: config_at,
        })?;
    if !sec.is_empty() {
        return Err(SnapshotError::Invalid {
            what: "oversized CONFIG section",
            offset: sec.offset(),
        });
    }

    let mut sec = expect_section(c, SEC_STATE, "expected STATE section")?;
    let t = sec.u64()?;
    let last = match sec.u8()? {
        0 => None,
        1 => Some(sec.f64()?),
        _ => {
            return Err(SnapshotError::Invalid {
                what: "bad last-value tag",
                offset: sec.offset() - 1,
            })
        }
    };
    if !sec.is_empty() {
        return Err(SnapshotError::Invalid {
            what: "oversized STATE section",
            offset: sec.offset(),
        });
    }

    let mut sec = expect_section(c, SEC_SUMMARIES, "expected SUMMARIES section")?;
    let count_at = sec.offset();
    let count = sec.u64()? as usize;
    let queues = read_summaries(&mut sec, &config, t, count, count_at)?;
    if !sec.is_empty() {
        return Err(SnapshotError::Invalid {
            what: "oversized SUMMARIES section",
            offset: sec.offset(),
        });
    }

    assemble(config, t, last, queues, count_at)
}

/// Read `count` serialized summaries into per-level queues, validating
/// every structural invariant the tree maintains.
fn read_summaries(
    c: &mut Cursor<'_>,
    config: &SwatConfig,
    t: u64,
    count: usize,
    count_at: usize,
) -> Result<Vec<VecDeque<Summary>>, SnapshotError> {
    let levels = config.levels();
    let k = config.coefficients();
    if count > 3 * levels {
        return Err(SnapshotError::Invalid {
            what: "too many summaries",
            offset: count_at,
        });
    }
    let mut queues: Vec<VecDeque<Summary>> = vec![VecDeque::new(); levels];
    for _ in 0..count {
        let level_at = c.offset();
        let level = c.u64()? as usize;
        if level >= levels {
            return Err(SnapshotError::Invalid {
                what: "summary level out of range",
                offset: level_at,
            });
        }
        let created_at_at = c.offset();
        let created_at = c.u64()?;
        if created_at > t {
            return Err(SnapshotError::Invalid {
                what: "summary from the future",
                offset: created_at_at,
            });
        }
        let range_at = c.offset();
        let lo = c.f64()?;
        let hi = c.f64()?;
        if lo > hi {
            return Err(SnapshotError::Invalid {
                what: "inverted range",
                offset: range_at,
            });
        }
        let n_at = c.offset();
        let n_coeffs = c.u64()? as usize;
        let width = 1usize << (level + 1);
        if n_coeffs == 0 || n_coeffs > width.min(k) {
            return Err(SnapshotError::Invalid {
                what: "bad coefficient count",
                offset: n_at,
            });
        }
        let mut coeffs = Vec::with_capacity(n_coeffs);
        for _ in 0..n_coeffs {
            coeffs.push(c.f64()?);
        }
        let coeffs = HaarCoeffs::from_parts(width, coeffs).map_err(|_| SnapshotError::Invalid {
            what: "bad coefficient vector",
            offset: n_at,
        })?;
        let cap = if level + 1 == levels { 1 } else { 3 };
        let queue = &mut queues[level];
        if queue.len() == cap {
            return Err(SnapshotError::Invalid {
                what: "level over capacity",
                offset: level_at,
            });
        }
        // Written newest-first; appending preserves the order.
        if let Some(prev) = queue.back() {
            if prev.created_at() <= created_at {
                return Err(SnapshotError::Invalid {
                    what: "summaries out of order",
                    offset: created_at_at,
                });
            }
        }
        queue.push_back(Summary::new(
            coeffs,
            ValueRange::new(lo, hi),
            created_at,
            level,
        ));
    }
    Ok(queues)
}

fn assemble(
    config: SwatConfig,
    t: u64,
    last: Option<f64>,
    queues: Vec<VecDeque<Summary>>,
    offset: usize,
) -> Result<SwatTree, SnapshotError> {
    SwatTree::from_restored(config, t, last, queues).map_err(|_| SnapshotError::Invalid {
        what: "inconsistent structure",
        offset,
    })
}

/// Parse the legacy unframed v1 layout (no checksums, no `min_level` —
/// restored trees get `min_level = 0`, which is what v1 writers ran at).
fn restore_v1(c: &mut Cursor<'_>) -> Result<SwatTree, SnapshotError> {
    let config_at = c.offset();
    let window = c.u64()? as usize;
    let k = c.u64()? as usize;
    let config = SwatConfig::with_coefficients(window, k).map_err(|_| SnapshotError::Invalid {
        what: "bad window/coefficient config",
        offset: config_at,
    })?;
    let t = c.u64()?;
    let last = match c.u8()? {
        0 => None,
        1 => Some(c.f64()?),
        _ => {
            return Err(SnapshotError::Invalid {
                what: "bad last-value tag",
                offset: c.offset() - 1,
            })
        }
    };
    let count_at = c.offset();
    let count = c.u64()? as usize;
    let queues = read_summaries(c, &config, t, count, count_at)?;
    assemble(config, t, last, queues, count_at)
}

impl SwatTree {
    /// Serialize the tree's complete state (format version 2: checksummed
    /// framed sections; see the module docs).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.summary_count() * 64);
        write_tree_body(self, &mut out);
        out
    }

    /// Rebuild a tree from [`SwatTree::snapshot`] bytes. Accepts the
    /// current checksummed v2 format and the legacy v1 layout.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn restore(bytes: &[u8]) -> Result<SwatTree, SnapshotError> {
        let mut c = Cursor::new(bytes);
        // Peek the version to dispatch without consuming (v1 and v2 share
        // the magic prefix).
        {
            let mut peek = Cursor::new(bytes);
            if peek.take(4)? != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            let version = peek.u8()?;
            if version == VERSION_V1 {
                c.take(5).expect("peeked");
                let tree = restore_v1(&mut c)?;
                if !c.is_empty() {
                    return Err(SnapshotError::Invalid {
                        what: "trailing bytes",
                        offset: c.offset(),
                    });
                }
                return Ok(tree);
            }
            if version != VERSION {
                return Err(SnapshotError::BadVersion(version));
            }
        }
        let tree = parse_tree_body(&mut c)?;
        if !c.is_empty() {
            // A continuous-engine snapshot carries a subscription section
            // after the tree body; a plain tree restore must not silently
            // drop it.
            let at = c.offset();
            let mut peek = Cursor::new(&[]);
            std::mem::swap(&mut peek, &mut c);
            let what = match peek.frame() {
                Ok((SEC_SUBS, _)) => "subscriptions present (use ContinuousEngine::restore)",
                _ => "trailing bytes",
            };
            return Err(SnapshotError::Invalid { what, offset: at });
        }
        Ok(tree)
    }
}

/// Round-trip helper used by tests: snapshot then restore must preserve
/// observable behavior.
pub fn roundtrip(tree: &SwatTree) -> Result<SwatTree, SnapshotError> {
    SwatTree::restore(&tree.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::InnerProductQuery;
    use crate::tree::SwatTree;

    fn sample_tree(n: usize, k: usize, arrivals: usize) -> SwatTree {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
        tree.extend((0..arrivals).map(|i| ((i * 13) % 59) as f64));
        tree
    }

    /// The v1 writer, frozen here so compatibility stays testable.
    fn v1_snapshot(tree: &SwatTree) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_V1);
        out.extend_from_slice(&(tree.config().window() as u64).to_le_bytes());
        out.extend_from_slice(&(tree.config().coefficients() as u64).to_le_bytes());
        out.extend_from_slice(&tree.arrivals().to_le_bytes());
        match tree.newest() {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(tree.summary_count() as u64).to_le_bytes());
        for (level, _, s) in tree.nodes() {
            out.extend_from_slice(&(level as u64).to_le_bytes());
            out.extend_from_slice(&s.created_at().to_le_bytes());
            out.extend_from_slice(&s.range().lo().to_le_bytes());
            out.extend_from_slice(&s.range().hi().to_le_bytes());
            let coeffs = s.coeffs().coefficients();
            out.extend_from_slice(&(coeffs.len() as u64).to_le_bytes());
            for c in coeffs {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    #[test]
    fn roundtrip_preserves_answers() {
        for (n, k, arrivals) in [(16, 1, 40), (64, 4, 200), (32, 32, 100)] {
            let tree = sample_tree(n, k, arrivals);
            let restored = roundtrip(&tree).unwrap();
            assert_eq!(restored.arrivals(), tree.arrivals());
            assert_eq!(restored.summary_count(), tree.summary_count());
            assert_eq!(restored.answers_digest(), tree.answers_digest());
            for idx in 0..n {
                let a = tree.point(idx).unwrap();
                let b = restored.point(idx).unwrap();
                assert_eq!(a, b, "n={n} k={k} idx={idx}");
            }
            let q = InnerProductQuery::exponential(n / 2, 1e9);
            assert_eq!(
                tree.inner_product(&q).unwrap(),
                restored.inner_product(&q).unwrap()
            );
        }
    }

    #[test]
    fn roundtrip_preserves_reduced_level_answers() {
        // The satellite fix: min_level is part of the configuration and
        // must survive the round trip, so a restored tree answers its
        // default queries identically in reduced-level mode.
        let config = SwatConfig::new(64).unwrap().with_min_level(3).unwrap();
        let mut tree = SwatTree::new(config);
        tree.extend((0..300).map(|i| ((i * 7) % 31) as f64));
        let restored = roundtrip(&tree).unwrap();
        assert_eq!(restored.config(), tree.config());
        assert_eq!(restored.config().min_level(), 3);
        assert_eq!(restored.answers_digest(), tree.answers_digest());
        for idx in 0..64 {
            assert_eq!(tree.point(idx).unwrap(), restored.point(idx).unwrap());
        }
    }

    #[test]
    fn restored_tree_keeps_streaming_identically() {
        let mut original = sample_tree(32, 2, 150);
        let mut restored = roundtrip(&original).unwrap();
        for i in 0..100 {
            let v = ((i * 31) % 41) as f64;
            original.push(v);
            restored.push(v);
        }
        for idx in 0..32 {
            assert_eq!(original.point(idx).unwrap(), restored.point(idx).unwrap());
        }
        assert_eq!(original.answers_digest(), restored.answers_digest());
    }

    #[test]
    fn empty_and_single_value_trees_roundtrip() {
        let tree = SwatTree::new(SwatConfig::new(16).unwrap());
        let restored = roundtrip(&tree).unwrap();
        assert_eq!(restored.arrivals(), 0);
        assert_eq!(restored.summary_count(), 0);

        let mut tree = SwatTree::new(SwatConfig::new(16).unwrap());
        tree.push(7.5);
        let restored = roundtrip(&tree).unwrap();
        assert_eq!(restored.newest(), Some(7.5));
        assert_eq!(restored.arrivals(), 1);
    }

    #[test]
    fn v1_snapshots_remain_readable() {
        for (n, k, arrivals) in [(16, 1, 0), (16, 1, 40), (64, 4, 200)] {
            let tree = sample_tree(n, k, arrivals);
            let restored = SwatTree::restore(&v1_snapshot(&tree)).unwrap();
            assert_eq!(restored.arrivals(), tree.arrivals());
            assert_eq!(restored.answers_digest(), tree.answers_digest());
            assert_eq!(restored.config().min_level(), 0);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            SwatTree::restore(b"nope").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SwatTree::restore(b"no").unwrap_err(),
            SnapshotError::Truncated { offset: 0 }
        );
        assert_eq!(
            SwatTree::restore(b"BLOBxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut bytes = sample_tree(16, 1, 40).snapshot();
        bytes[4] = 99; // version
        assert_eq!(
            SwatTree::restore(&bytes).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn rejects_truncation_anywhere_with_positions() {
        for bytes in [
            sample_tree(16, 1, 40).snapshot(),
            v1_snapshot(&sample_tree(16, 1, 40)),
        ] {
            // Chopping the buffer at any point must fail cleanly, never
            // panic, and the reported offset must sit within the cut.
            for cut in 0..bytes.len() {
                match SwatTree::restore(&bytes[..cut]) {
                    Err(SnapshotError::Truncated { offset }) => {
                        assert!(offset <= cut, "cut {cut} reported offset {offset}")
                    }
                    Err(_) => {}
                    Ok(_) => panic!("cut at {cut} unexpectedly succeeded"),
                }
            }
        }
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let bytes = sample_tree(16, 2, 40).snapshot();
        let digest = sample_tree(16, 2, 40).answers_digest();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                // Every section is checksummed and the prelude is
                // magic/version, so no flip may restore differently.
                if let Ok(t) = SwatTree::restore(&bad) {
                    assert_eq!(
                        t.answers_digest(),
                        digest,
                        "flip at {byte}.{bit} silently changed the tree"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample_tree(16, 1, 40).snapshot();
        let at = bytes.len();
        bytes.push(0);
        assert_eq!(
            SwatTree::restore(&bytes).unwrap_err(),
            SnapshotError::Invalid {
                what: "trailing bytes",
                offset: at
            }
        );
    }

    #[test]
    fn checksum_mismatch_is_positioned() {
        let mut bytes = sample_tree(16, 1, 40).snapshot();
        // Flip a bit inside the CONFIG payload (header is 4 + 1, frame
        // header is 1 + 4 + 4, so the payload starts at 14).
        bytes[14] ^= 0x01;
        match SwatTree::restore(&bytes).unwrap_err() {
            SnapshotError::ChecksumMismatch { offset, .. } => assert_eq!(offset, 14),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn snapshot_is_small() {
        let tree = sample_tree(1 << 14, 1, 40_000);
        let bytes = tree.snapshot();
        // O(log N) summaries, tens of bytes each.
        assert!(bytes.len() < 4096, "snapshot is {} bytes", bytes.len());
    }

    #[test]
    fn errors_display() {
        for e in [
            SnapshotError::BadMagic,
            SnapshotError::BadVersion(3),
            SnapshotError::Truncated { offset: 12 },
            SnapshotError::Invalid {
                what: "x",
                offset: 3,
            },
            SnapshotError::ChecksumMismatch {
                offset: 9,
                stored: 1,
                computed: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
