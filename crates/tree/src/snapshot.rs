//! Checkpointing: serialize a tree's summaries to bytes and restore them.
//!
//! A SWAT is tiny (`O(k log N)` numbers), which makes checkpointing it
//! across process restarts — or shipping it to another site, as the
//! paper's distributed setting does with ranges — nearly free. The
//! format is a simple explicit little-endian layout, versioned, with no
//! external dependencies:
//!
//! ```text
//! magic "SWAT"  u8 version  u64 window  u64 k  u64 t  u8 has_last [f64 last]
//! u64 summary_count  then per summary:
//!   u64 level  u64 created_at  f64 lo  f64 hi  u64 n_coeffs  [f64...]
//! ```
//!
//! Restores validate structure; a corrupted or truncated buffer yields
//! a [`SnapshotError`], never a panic.

use std::collections::VecDeque;
use std::fmt;

use crate::config::SwatConfig;
use crate::node::Summary;
use crate::range::ValueRange;
use crate::tree::SwatTree;
use swat_wavelet::HaarCoeffs;

const MAGIC: &[u8; 4] = b"SWAT";
const VERSION: u8 = 1;

/// Errors from [`SwatTree::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `SWAT` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A field failed validation (window not a power of two, coefficient
    /// counts inconsistent, non-finite values, …).
    Invalid(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a SWAT snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.at + n > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        let b = self.take(8)?;
        let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
        if v.is_nan() {
            return Err(SnapshotError::Invalid("NaN value"));
        }
        Ok(v)
    }
}

impl SwatTree {
    /// Serialize the tree's complete state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.summary_count() * 64);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.config().window() as u64).to_le_bytes());
        out.extend_from_slice(&(self.config().coefficients() as u64).to_le_bytes());
        out.extend_from_slice(&self.arrivals().to_le_bytes());
        match self.newest() {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.summary_count() as u64).to_le_bytes());
        // Summaries in query order (levels ascending, newest first): the
        // restore path rebuilds each level queue in that order.
        for (level, _, s) in self.nodes() {
            out.extend_from_slice(&(level as u64).to_le_bytes());
            out.extend_from_slice(&s.created_at().to_le_bytes());
            out.extend_from_slice(&s.range().lo().to_le_bytes());
            out.extend_from_slice(&s.range().hi().to_le_bytes());
            let coeffs = s.coeffs().coefficients();
            out.extend_from_slice(&(coeffs.len() as u64).to_le_bytes());
            for c in coeffs {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Rebuild a tree from [`SwatTree::snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn restore(bytes: &[u8]) -> Result<SwatTree, SnapshotError> {
        let mut r = Reader { buf: bytes, at: 0 };
        if r.take(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let window = r.u64()? as usize;
        let k = r.u64()? as usize;
        let config = SwatConfig::with_coefficients(window, k)
            .map_err(|_| SnapshotError::Invalid("bad window/coefficient config"))?;
        let t = r.u64()?;
        let last = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            _ => return Err(SnapshotError::Invalid("bad last-value tag")),
        };
        let count = r.u64()? as usize;
        let levels = config.levels();
        if count > 3 * levels {
            return Err(SnapshotError::Invalid("too many summaries"));
        }
        let mut queues: Vec<VecDeque<Summary>> = vec![VecDeque::new(); levels];
        for _ in 0..count {
            let level = r.u64()? as usize;
            if level >= levels {
                return Err(SnapshotError::Invalid("summary level out of range"));
            }
            let created_at = r.u64()?;
            if created_at > t {
                return Err(SnapshotError::Invalid("summary from the future"));
            }
            let lo = r.f64()?;
            let hi = r.f64()?;
            if lo > hi {
                return Err(SnapshotError::Invalid("inverted range"));
            }
            let n_coeffs = r.u64()? as usize;
            let width = 1usize << (level + 1);
            if n_coeffs == 0 || n_coeffs > width.min(k) {
                return Err(SnapshotError::Invalid("bad coefficient count"));
            }
            let mut coeffs = Vec::with_capacity(n_coeffs);
            for _ in 0..n_coeffs {
                coeffs.push(r.f64()?);
            }
            let coeffs = HaarCoeffs::from_parts(width, coeffs)
                .map_err(|_| SnapshotError::Invalid("bad coefficient vector"))?;
            let cap = if level + 1 == levels { 1 } else { 3 };
            let queue = &mut queues[level];
            if queue.len() == cap {
                return Err(SnapshotError::Invalid("level over capacity"));
            }
            // Written newest-first; appending preserves the order.
            if let Some(prev) = queue.back() {
                if prev.created_at() <= created_at {
                    return Err(SnapshotError::Invalid("summaries out of order"));
                }
            }
            queue.push_back(Summary::new(
                coeffs,
                ValueRange::new(lo, hi),
                created_at,
                level,
            ));
        }
        if r.at != bytes.len() {
            return Err(SnapshotError::Invalid("trailing bytes"));
        }
        SwatTree::from_restored(config, t, last, queues)
            .map_err(|_| SnapshotError::Invalid("inconsistent structure"))
    }
}

/// Round-trip helper used by tests: snapshot then restore must preserve
/// observable behavior.
pub fn roundtrip(tree: &SwatTree) -> Result<SwatTree, SnapshotError> {
    SwatTree::restore(&tree.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::InnerProductQuery;
    use crate::tree::SwatTree;

    fn sample_tree(n: usize, k: usize, arrivals: usize) -> SwatTree {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
        tree.extend((0..arrivals).map(|i| ((i * 13) % 59) as f64));
        tree
    }

    #[test]
    fn roundtrip_preserves_answers() {
        for (n, k, arrivals) in [(16, 1, 40), (64, 4, 200), (32, 32, 100)] {
            let tree = sample_tree(n, k, arrivals);
            let restored = roundtrip(&tree).unwrap();
            assert_eq!(restored.arrivals(), tree.arrivals());
            assert_eq!(restored.summary_count(), tree.summary_count());
            for idx in 0..n {
                let a = tree.point(idx).unwrap();
                let b = restored.point(idx).unwrap();
                assert_eq!(a, b, "n={n} k={k} idx={idx}");
            }
            let q = InnerProductQuery::exponential(n / 2, 1e9);
            assert_eq!(
                tree.inner_product(&q).unwrap(),
                restored.inner_product(&q).unwrap()
            );
        }
    }

    #[test]
    fn restored_tree_keeps_streaming_identically() {
        let mut original = sample_tree(32, 2, 150);
        let mut restored = roundtrip(&original).unwrap();
        for i in 0..100 {
            let v = ((i * 31) % 41) as f64;
            original.push(v);
            restored.push(v);
        }
        for idx in 0..32 {
            assert_eq!(original.point(idx).unwrap(), restored.point(idx).unwrap());
        }
    }

    #[test]
    fn empty_and_single_value_trees_roundtrip() {
        let tree = SwatTree::new(SwatConfig::new(16).unwrap());
        let restored = roundtrip(&tree).unwrap();
        assert_eq!(restored.arrivals(), 0);
        assert_eq!(restored.summary_count(), 0);

        let mut tree = SwatTree::new(SwatConfig::new(16).unwrap());
        tree.push(7.5);
        let restored = roundtrip(&tree).unwrap();
        assert_eq!(restored.newest(), Some(7.5));
        assert_eq!(restored.arrivals(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            SwatTree::restore(b"nope").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SwatTree::restore(b"no").unwrap_err(),
            SnapshotError::Truncated
        );
        assert_eq!(
            SwatTree::restore(b"BLOBxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut bytes = sample_tree(16, 1, 40).snapshot();
        bytes[4] = 99; // version
        assert_eq!(
            SwatTree::restore(&bytes).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample_tree(16, 1, 40).snapshot();
        // Chopping the buffer at any point must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let err = SwatTree::restore(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} unexpectedly succeeded");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample_tree(16, 1, 40).snapshot();
        bytes.push(0);
        assert_eq!(
            SwatTree::restore(&bytes).unwrap_err(),
            SnapshotError::Invalid("trailing bytes")
        );
    }

    #[test]
    fn snapshot_is_small() {
        let tree = sample_tree(1 << 14, 1, 40_000);
        let bytes = tree.snapshot();
        // O(log N) summaries, tens of bytes each.
        assert!(bytes.len() < 4096, "snapshot is {} bytes", bytes.len());
    }

    #[test]
    fn errors_display() {
        for e in [
            SnapshotError::BadMagic,
            SnapshotError::BadVersion(3),
            SnapshotError::Truncated,
            SnapshotError::Invalid("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
