//! Multiple streams and correlation estimation.
//!
//! The paper's concluding remarks name this as future work: "We plan to
//! develop efficient techniques to find correlations over multiple data
//! streams." This module provides the natural SWAT-based realization: a
//! [`StreamSet`] maintains one tree per stream over a common window, and
//! correlations between any two streams are estimated from the trees'
//! reconstructions — `O(M log N)` work per pair instead of touching raw
//! history, with accuracy inherited from the summaries (exact for
//! lossless trees).

use crate::codec::{write_frame, Cursor};
use crate::config::{SwatConfig, TreeError};
use crate::query::{InnerProductAnswer, InnerProductQuery, PointAnswer, QueryOptions};
use crate::scratch::QueryScratch;
use crate::snapshot::SnapshotError;
use crate::tree::{digest, SwatTree};

/// A set of synchronized streams, each summarized by its own SWAT.
///
/// ```
/// use swat_tree::{multi::StreamSet, SwatConfig};
///
/// let mut set = StreamSet::new(SwatConfig::new(64).unwrap(), 2);
/// for i in 0..200 {
///     let x = (i as f64 * 0.2).sin();
///     set.push_row(&[x, 2.0 * x + 1.0]); // perfectly correlated
/// }
/// let rho = set.correlation(0, 1, 64).unwrap();
/// assert!(rho > 0.99);
/// ```
#[derive(Debug)]
pub struct StreamSet {
    /// The shared configuration, held by the set itself so that a set
    /// with zero streams still knows its window shape (the trees each
    /// carry a copy).
    config: SwatConfig,
    trees: Vec<SwatTree>,
}

impl StreamSet {
    /// `streams` synchronized streams under a shared configuration.
    ///
    /// `streams == 0` is legal: an empty set is a well-defined value that
    /// ingests empty rows/columns as no-ops, answers every fan-out query
    /// with an empty result vector, and snapshots/restores losslessly —
    /// the state a dynamic deployment passes through before its first
    /// stream registers (previously these operations panicked; the
    /// `empty_set_*` tests pin the fixed behavior).
    pub fn new(config: SwatConfig, streams: usize) -> Self {
        StreamSet {
            config,
            trees: (0..streams).map(|_| SwatTree::new(config)).collect(),
        }
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.trees.len()
    }

    /// The configuration shared by every stream's tree.
    pub fn config(&self) -> &SwatConfig {
        &self.config
    }

    /// The tree summarizing stream `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tree(&self, i: usize) -> &SwatTree {
        &self.trees[i]
    }

    /// Feed one synchronized row: `row[i]` goes to stream `i`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != streams()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.trees.len(), "row arity mismatch");
        for (tree, &v) in self.trees.iter_mut().zip(row) {
            tree.push(v);
        }
    }

    /// Feed a block of synchronized arrivals column-wise: `columns[i]` is
    /// the next batch of values for stream `i`, and all columns must have
    /// equal length. The independent trees are partitioned across at most
    /// `threads` scoped worker threads ([`std::thread::scope`], so no new
    /// dependencies and no `'static` bounds), each running the
    /// single-stream batched fast path [`SwatTree::push_batch`].
    ///
    /// Because every stream's values are applied by exactly one worker in
    /// arrival order, the final state is **deterministic and identical for
    /// every thread count** — including `threads == 1`, which degenerates
    /// to a plain loop without spawning. The
    /// `extend_batched_matches_rows_for_any_thread_count` test proves this
    /// node-by-node.
    ///
    /// An empty set accepts only an empty column slice (the arity check
    /// still applies) and ingests it as a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `columns.len() != streams()`, if column lengths differ,
    /// if `threads == 0`, or if any value is non-finite (the underlying
    /// `push_batch` checks each column before ingesting it).
    pub fn extend_batched<C: AsRef<[f64]> + Sync>(&mut self, columns: &[C], threads: usize) {
        assert_eq!(columns.len(), self.trees.len(), "column arity mismatch");
        assert!(threads > 0, "need at least one thread");
        // With zero streams there is no first column to size the batch
        // from (indexing it was the empty-set panic this module used to
        // have) and nothing to ingest.
        let Some(first) = columns.first() else {
            return;
        };
        let len = first.as_ref().len();
        assert!(
            columns.iter().all(|c| c.as_ref().len() == len),
            "columns must have equal lengths"
        );
        let workers = threads.min(self.trees.len());
        if workers == 1 {
            for (tree, col) in self.trees.iter_mut().zip(columns) {
                tree.push_batch(col.as_ref());
            }
            return;
        }
        // Contiguous shards of ceil(streams / workers) trees each; the
        // shard boundaries depend only on the stream count and `workers`,
        // never on scheduling.
        let shard = self.trees.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (tree_shard, col_shard) in self.trees.chunks_mut(shard).zip(columns.chunks(shard)) {
                scope.spawn(move || {
                    for (tree, col) in tree_shard.iter_mut().zip(col_shard) {
                        tree.push_batch(col.as_ref());
                    }
                });
            }
        });
    }

    /// Approximate values of stream `i` over the `m` newest window
    /// indices, evaluated at resolution `opts` — served through the
    /// batched engine so the whole span shares one cover-cache lookup
    /// table.
    fn recent(&self, i: usize, m: usize, opts: QueryOptions) -> Result<Vec<f64>, TreeError> {
        let tree = &self.trees[i];
        let mut out = Vec::with_capacity(m);
        crate::scratch::with_thread_scratch(|scratch| {
            tree.point_span_into(0, m, opts, scratch, &mut out)
        })?;
        Ok(out)
    }

    /// Answer the same block of point queries against **every** stream,
    /// fanning the independent trees out across at most `threads` scoped
    /// worker threads exactly as [`Self::extend_batched`] shards
    /// ingestion: contiguous shards of `ceil(streams / workers)` trees,
    /// one [`QueryScratch`] per worker, `threads == 1` degenerating to a
    /// plain loop without spawning.
    ///
    /// Returns one answer vector per stream, in stream order. Each answer
    /// is bit-identical to [`SwatTree::point_with`] on that stream's tree,
    /// **for every thread count** — workers only partition read-only trees
    /// and write disjoint result slots, so scheduling cannot influence any
    /// value. On error, the error the lowest-numbered failing stream would
    /// report sequentially is returned.
    ///
    /// # Errors
    ///
    /// As [`SwatTree::point_with`] per stream.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn point_many(
        &self,
        indices: &[usize],
        opts: QueryOptions,
        threads: usize,
    ) -> Result<Vec<Vec<PointAnswer>>, TreeError> {
        self.query_fan_out(threads, |tree, scratch, out| {
            tree.point_many(indices, opts, scratch, out)
        })
    }

    /// Answer the same block of inner-product queries against **every**
    /// stream, sharded like [`Self::point_many`]. Returns one answer
    /// vector per stream, in stream order, each bit-identical to
    /// [`SwatTree::inner_product_with`] per query for every thread count.
    ///
    /// # Errors
    ///
    /// As [`SwatTree::inner_product_with`] per stream; the error of the
    /// lowest-numbered failing stream wins.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn inner_product_many(
        &self,
        queries: &[InnerProductQuery],
        opts: QueryOptions,
        threads: usize,
    ) -> Result<Vec<Vec<InnerProductAnswer>>, TreeError> {
        self.query_fan_out(threads, |tree, scratch, out| {
            tree.inner_product_many(queries, opts, scratch, out)
        })
    }

    /// Deterministic query fan-out: run `eval` once per tree, partitioned
    /// into the same contiguous shards as [`Self::extend_batched`], and
    /// collect per-stream results in stream order.
    fn query_fan_out<T: Send>(
        &self,
        threads: usize,
        eval: impl Fn(&SwatTree, &mut QueryScratch, &mut Vec<T>) -> Result<(), TreeError> + Sync,
    ) -> Result<Vec<Vec<T>>, TreeError> {
        assert!(threads > 0, "need at least one thread");
        // Zero streams: nothing to answer, and `div_ceil(workers)` below
        // would divide by zero (the empty-set panic this module used to
        // have on the query path).
        if self.trees.is_empty() {
            return Ok(Vec::new());
        }
        let workers = threads.min(self.trees.len());
        let mut results: Vec<Result<Vec<T>, TreeError>> =
            (0..self.trees.len()).map(|_| Ok(Vec::new())).collect();
        if workers == 1 {
            let mut scratch = QueryScratch::new();
            for (tree, slot) in self.trees.iter().zip(results.iter_mut()) {
                let mut out = Vec::new();
                *slot = eval(tree, &mut scratch, &mut out).map(|()| out);
            }
        } else {
            let shard = self.trees.len().div_ceil(workers);
            let eval = &eval;
            std::thread::scope(|scope| {
                for (tree_shard, slot_shard) in
                    self.trees.chunks(shard).zip(results.chunks_mut(shard))
                {
                    scope.spawn(move || {
                        let mut scratch = QueryScratch::new();
                        for (tree, slot) in tree_shard.iter().zip(slot_shard.iter_mut()) {
                            let mut out = Vec::new();
                            *slot = eval(tree, &mut scratch, &mut out).map(|()| out);
                        }
                    });
                }
            });
        }
        // First error in stream order, independent of which worker hit it
        // first in wall-clock time.
        results.into_iter().collect()
    }

    /// Approximate inner product `Σ x_a[i] · x_b[i]` over the `m` newest
    /// values of streams `a` and `b`.
    ///
    /// # Errors
    ///
    /// Propagates coverage errors while the trees warm up.
    ///
    /// # Panics
    ///
    /// Panics if a stream index is out of range or `m == 0`.
    pub fn inner_product_between(&self, a: usize, b: usize, m: usize) -> Result<f64, TreeError> {
        self.inner_product_between_with(a, b, m, self.config().default_opts())
    }

    /// As [`Self::inner_product_between`] with explicit resolution.
    ///
    /// # Errors
    ///
    /// Propagates coverage errors while the trees warm up.
    pub fn inner_product_between_with(
        &self,
        a: usize,
        b: usize,
        m: usize,
        opts: QueryOptions,
    ) -> Result<f64, TreeError> {
        assert!(m > 0, "need at least one value");
        let xa = self.recent(a, m, opts)?;
        let xb = self.recent(b, m, opts)?;
        Ok(xa.iter().zip(&xb).map(|(x, y)| x * y).sum())
    }

    /// Pearson correlation of streams `a` and `b` over their `m` newest
    /// values, estimated from the summaries (the paper's reference \[17\]
    /// style normalized-window correlation, §1.1). Returns 0 when either stream
    /// is constant over the span.
    ///
    /// # Errors
    ///
    /// Propagates coverage errors while the trees warm up.
    ///
    /// # Panics
    ///
    /// Panics if a stream index is out of range or `m < 2`.
    pub fn correlation(&self, a: usize, b: usize, m: usize) -> Result<f64, TreeError> {
        self.correlation_with(a, b, m, self.config().default_opts())
    }

    /// As [`Self::correlation`] with explicit resolution.
    ///
    /// # Errors
    ///
    /// Propagates coverage errors while the trees warm up.
    pub fn correlation_with(
        &self,
        a: usize,
        b: usize,
        m: usize,
        opts: QueryOptions,
    ) -> Result<f64, TreeError> {
        assert!(m >= 2, "correlation needs at least two values");
        let xa = self.recent(a, m, opts)?;
        let xb = self.recent(b, m, opts)?;
        Ok(pearson(&xa, &xb))
    }
}

/// Magic prefix of a [`StreamSet::snapshot`] buffer.
const SET_MAGIC: &[u8; 4] = b"SWMS";
const SET_VERSION: u8 = 2;
const SET_VERSION_V1: u8 = 1;
/// Section tag wrapping one stream's tree snapshot.
const SEC_STREAM: u8 = 5;

impl StreamSet {
    /// Serialize the whole set: a header carrying the shared
    /// configuration, then one checksummed frame per stream containing
    /// that tree's [`SwatTree::snapshot`] bytes.
    ///
    /// ```text
    /// magic "SWMS"  u8 version = 2
    /// u64 window  u64 k  u64 min_level  u64 streams
    /// per stream: [u8 5][u32 len][u32 crc][tree snapshot v2]
    /// ```
    ///
    /// Version 2 moved the configuration into the header so that a set
    /// with **zero** streams round-trips (v1 derived the configuration
    /// from the first stream and therefore could not represent an empty
    /// set); per-stream configs are validated against the header on
    /// restore.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SET_MAGIC);
        out.push(SET_VERSION);
        out.extend_from_slice(&(self.config.window() as u64).to_le_bytes());
        out.extend_from_slice(&(self.config.coefficients() as u64).to_le_bytes());
        out.extend_from_slice(&(self.config.min_level() as u64).to_le_bytes());
        out.extend_from_slice(&(self.trees.len() as u64).to_le_bytes());
        for tree in &self.trees {
            write_frame(&mut out, SEC_STREAM, &tree.snapshot());
        }
        out
    }

    /// Rebuild a set from [`StreamSet::snapshot`] bytes. Accepts the
    /// current v2 format and the legacy v1 layout (which has no header
    /// configuration and requires at least one stream).
    ///
    /// All streams must restore under the same configuration and clock
    /// (the set only ever ingests synchronized rows). Offsets reported by
    /// errors from inside a stream frame are relative to that frame's
    /// payload.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn restore(bytes: &[u8]) -> Result<StreamSet, SnapshotError> {
        let mut c = Cursor::new(bytes);
        if c.take(4)? != SET_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = c.u8()?;
        match version {
            SET_VERSION_V1 => Self::restore_v1(&mut c),
            SET_VERSION => Self::restore_v2(&mut c),
            v => Err(SnapshotError::BadVersion(v)),
        }
    }

    /// Parse the v2 body: explicit configuration header, then `streams`
    /// framed tree snapshots, each validated against the header.
    fn restore_v2(c: &mut Cursor<'_>) -> Result<StreamSet, SnapshotError> {
        let config_at = c.offset();
        let window = c.u64()? as usize;
        let k = c.u64()? as usize;
        let min_level = c.u64()? as usize;
        let config = SwatConfig::with_coefficients(window, k)
            .and_then(|cfg| cfg.with_min_level(min_level))
            .map_err(|_| SnapshotError::Invalid {
                what: "bad window/coefficient/min-level config",
                offset: config_at,
            })?;
        let count = c.u64()? as usize;
        let mut trees = Vec::new();
        for _ in 0..count {
            let at = c.offset();
            let tree = Self::read_stream_frame(c, at)?;
            if *tree.config() != config {
                return Err(SnapshotError::Invalid {
                    what: "stream config mismatch",
                    offset: at,
                });
            }
            if let Some(first) = trees.first() {
                let first: &SwatTree = first;
                if tree.arrivals() != first.arrivals() {
                    return Err(SnapshotError::Invalid {
                        what: "stream clock mismatch",
                        offset: at,
                    });
                }
            }
            trees.push(tree);
        }
        Self::finish_restore(c, config, trees)
    }

    /// Parse the legacy v1 body: a bare stream count (necessarily
    /// nonzero — the format has nowhere else to carry the configuration)
    /// followed by framed tree snapshots.
    fn restore_v1(c: &mut Cursor<'_>) -> Result<StreamSet, SnapshotError> {
        let count_at = c.offset();
        let count = c.u64()? as usize;
        if count == 0 {
            return Err(SnapshotError::Invalid {
                what: "zero streams",
                offset: count_at,
            });
        }
        let mut trees: Vec<SwatTree> = Vec::new();
        for _ in 0..count {
            let at = c.offset();
            let tree = Self::read_stream_frame(c, at)?;
            if let Some(first) = trees.first() {
                if tree.config() != first.config() {
                    return Err(SnapshotError::Invalid {
                        what: "stream config mismatch",
                        offset: at,
                    });
                }
                if tree.arrivals() != first.arrivals() {
                    return Err(SnapshotError::Invalid {
                        what: "stream clock mismatch",
                        offset: at,
                    });
                }
            }
            trees.push(tree);
        }
        let config = *trees[0].config();
        Self::finish_restore(c, config, trees)
    }

    /// Read one framed stream section and restore its tree.
    fn read_stream_frame(c: &mut Cursor<'_>, at: usize) -> Result<SwatTree, SnapshotError> {
        let (tag, mut payload) = c.frame()?;
        if tag != SEC_STREAM {
            return Err(SnapshotError::Invalid {
                what: "expected STREAM section",
                offset: at,
            });
        }
        SwatTree::restore(payload.rest())
    }

    /// Shared tail of both restore paths: reject trailing bytes.
    fn finish_restore(
        c: &mut Cursor<'_>,
        config: SwatConfig,
        trees: Vec<SwatTree>,
    ) -> Result<StreamSet, SnapshotError> {
        if !c.is_empty() {
            return Err(SnapshotError::Invalid {
                what: "trailing bytes",
                offset: c.offset(),
            });
        }
        Ok(StreamSet { config, trees })
    }

    /// Order-sensitive digest over every stream's
    /// [`SwatTree::answers_digest`]: equal digests mean every query on
    /// every stream answers identically.
    pub fn answers_digest(&self) -> u64 {
        let mut h = digest::mix(digest::SEED, self.trees.len() as u64);
        for tree in &self.trees {
            h = digest::mix(h, tree.answers_digest());
        }
        h
    }
}

/// Pearson correlation of two equal-length slices (0 for degenerate
/// inputs).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(set: &mut StreamSet, n: usize, f: impl Fn(usize) -> Vec<f64>) {
        for i in 0..n {
            set.push_row(&f(i));
        }
    }

    #[test]
    fn perfectly_correlated_streams() {
        let mut set = StreamSet::new(SwatConfig::new(64).unwrap(), 2);
        feed(&mut set, 200, |i| {
            let x = (i as f64 * 0.3).sin() * 10.0;
            vec![x, 3.0 * x - 5.0]
        });
        let rho = set.correlation(0, 1, 64).unwrap();
        assert!(rho > 0.99, "rho = {rho}");
    }

    #[test]
    fn anti_correlated_streams() {
        let mut set = StreamSet::new(SwatConfig::new(64).unwrap(), 2);
        feed(&mut set, 200, |i| {
            let x = ((i * 17) % 29) as f64;
            vec![x, 100.0 - x]
        });
        let rho = set.correlation(0, 1, 32).unwrap();
        assert!(rho < -0.9, "rho = {rho}");
    }

    #[test]
    fn independent_streams_have_weak_correlation() {
        let mut set = StreamSet::new(SwatConfig::with_coefficients(64, 64).unwrap(), 2);
        // Two decorrelated pseudo-random sequences.
        feed(&mut set, 400, |i| {
            vec![((i * 7919) % 104729) as f64, ((i * 104729) % 7919) as f64]
        });
        let rho = set.correlation(0, 1, 64).unwrap();
        assert!(rho.abs() < 0.4, "rho = {rho}");
    }

    #[test]
    fn lossless_trees_give_exact_correlation() {
        let n = 32;
        let mut set = StreamSet::new(SwatConfig::with_coefficients(n, n).unwrap(), 2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..3 * n {
            let x = ((i * 13) % 37) as f64;
            let y = ((i * 7 + 3) % 23) as f64;
            set.push_row(&[x, y]);
            xs.push(x);
            ys.push(y);
        }
        // Exact correlation over the newest n values (newest first).
        let wx: Vec<f64> = xs.iter().rev().take(n).copied().collect();
        let wy: Vec<f64> = ys.iter().rev().take(n).copied().collect();
        let exact = pearson(&wx, &wy);
        let est = set.correlation(0, 1, n).unwrap();
        assert!((est - exact).abs() < 1e-9, "{est} vs {exact}");
    }

    #[test]
    fn constant_streams_yield_zero() {
        let mut set = StreamSet::new(SwatConfig::new(16).unwrap(), 2);
        feed(&mut set, 64, |_| vec![5.0, 7.0]);
        assert_eq!(set.correlation(0, 1, 16).unwrap(), 0.0);
    }

    #[test]
    fn inner_product_between_matches_reconstructions() {
        let mut set = StreamSet::new(SwatConfig::new(32).unwrap(), 3);
        feed(&mut set, 100, |i| {
            vec![i as f64 % 11.0, i as f64 % 7.0, 1.0]
        });
        // Against the all-ones stream, the pairwise inner product is the
        // sum of stream 0's reconstruction.
        let ip = set.inner_product_between(0, 2, 16).unwrap();
        let direct: f64 = (0..16)
            .map(|idx| set.tree(0).point(idx).unwrap().value)
            .sum();
        assert!((ip - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut set = StreamSet::new(SwatConfig::new(16).unwrap(), 2);
        set.push_row(&[1.0]);
    }

    /// Per-stream synthetic columns, deterministic in (stream, index).
    fn columns(streams: usize, len: usize) -> Vec<Vec<f64>> {
        (0..streams)
            .map(|s| {
                (0..len)
                    .map(|i| ((i * (2 * s + 3) + s) % 53) as f64 - 26.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn extend_batched_matches_rows_for_any_thread_count() {
        for (n, k, streams) in [(16, 1, 5), (32, 4, 8), (8, 8, 3)] {
            let config = SwatConfig::with_coefficients(n, k).unwrap();
            let cols = columns(streams, 3 * n + 1);
            // Reference: row-at-a-time sequential ingestion.
            let mut reference = StreamSet::new(config, streams);
            for i in 0..cols[0].len() {
                let row: Vec<f64> = cols.iter().map(|c| c[i]).collect();
                reference.push_row(&row);
            }
            for threads in [1usize, 2, 3, 7, 16] {
                let mut sharded = StreamSet::new(config, streams);
                sharded.extend_batched(&cols, threads);
                for s in 0..streams {
                    let a = reference.tree(s);
                    let b = sharded.tree(s);
                    assert_eq!(a.arrivals(), b.arrivals());
                    assert_eq!(a.newest(), b.newest());
                    let nodes_a: Vec<_> = a.nodes().collect();
                    let nodes_b: Vec<_> = b.nodes().collect();
                    assert_eq!(
                        nodes_a, nodes_b,
                        "n={n} k={k} streams={streams} threads={threads} stream {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_batched_supports_incremental_blocks() {
        let config = SwatConfig::new(16).unwrap();
        let cols = columns(4, 40);
        let mut whole = StreamSet::new(config, 4);
        whole.extend_batched(&cols, 2);
        let mut blocks = StreamSet::new(config, 4);
        for start in (0..40).step_by(9) {
            let end = (start + 9).min(40);
            let part: Vec<&[f64]> = cols.iter().map(|c| &c[start..end]).collect();
            blocks.extend_batched(&part, 3);
        }
        for s in 0..4 {
            let a: Vec<_> = whole.tree(s).nodes().collect();
            let b: Vec<_> = blocks.tree(s).nodes().collect();
            assert_eq!(a, b, "stream {s}");
        }
    }

    #[test]
    fn query_fan_out_matches_sequential_for_any_thread_count() {
        use crate::query::InnerProductQuery;
        let streams = 7;
        let mut set = StreamSet::new(SwatConfig::with_coefficients(32, 4).unwrap(), streams);
        set.extend_batched(&columns(streams, 100), 2);
        let indices: Vec<usize> = vec![0, 1, 5, 17, 31];
        let queries = [
            InnerProductQuery::exponential(16, 1e9),
            InnerProductQuery::linear_at(3, 20, 1e9),
        ];
        // Sequential reference: one-at-a-time public API per tree.
        let pts_ref: Vec<Vec<_>> = (0..streams)
            .map(|s| {
                indices
                    .iter()
                    .map(|&i| set.tree(s).point(i).unwrap())
                    .collect()
            })
            .collect();
        let ips_ref: Vec<Vec<_>> = (0..streams)
            .map(|s| {
                queries
                    .iter()
                    .map(|q| set.tree(s).inner_product(q).unwrap())
                    .collect()
            })
            .collect();
        for threads in [1usize, 2, 3, 7, 16] {
            let pts = set
                .point_many(&indices, QueryOptions::default(), threads)
                .unwrap();
            assert_eq!(pts, pts_ref, "points, threads={threads}");
            let ips = set
                .inner_product_many(&queries, QueryOptions::default(), threads)
                .unwrap();
            assert_eq!(ips, ips_ref, "inner products, threads={threads}");
        }
    }

    #[test]
    fn query_fan_out_reports_first_stream_error() {
        // Cold trees: every stream fails; the stream-order-first error for
        // index 0 must come back regardless of thread count.
        let set = StreamSet::new(SwatConfig::new(16).unwrap(), 5);
        for threads in [1usize, 2, 4, 8] {
            let err = set
                .point_many(&[0], QueryOptions::default(), threads)
                .unwrap_err();
            assert_eq!(err, TreeError::Uncovered { index: 0 });
        }
    }

    #[test]
    #[should_panic(expected = "column arity")]
    fn extend_batched_rejects_wrong_arity() {
        let mut set = StreamSet::new(SwatConfig::new(16).unwrap(), 2);
        set.extend_batched(&columns(3, 4), 2);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn extend_batched_rejects_ragged_columns() {
        let mut set = StreamSet::new(SwatConfig::new(16).unwrap(), 2);
        set.extend_batched(&[vec![1.0, 2.0], vec![3.0]], 2);
    }

    #[test]
    fn empty_set_operations_never_panic() {
        // Regression: `extend_batched` indexed `columns[0]` and
        // `query_fan_out` computed `len.div_ceil(0)` on empty sets.
        use crate::query::InnerProductQuery;
        let config = SwatConfig::new(16).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let mut set = StreamSet::new(config, 0);
            assert_eq!(set.streams(), 0);
            assert_eq!(set.config().window(), 16);
            set.push_row(&[]);
            let no_columns: [Vec<f64>; 0] = [];
            set.extend_batched(&no_columns, threads);
            let pts = set
                .point_many(&[0, 3, 15], QueryOptions::default(), threads)
                .unwrap();
            assert!(pts.is_empty(), "threads={threads}");
            let ips = set
                .inner_product_many(
                    &[InnerProductQuery::exponential(8, 1e9)],
                    QueryOptions::default(),
                    threads,
                )
                .unwrap();
            assert!(ips.is_empty(), "threads={threads}");
            assert_eq!(
                set.answers_digest(),
                StreamSet::new(config, 0).answers_digest()
            );
        }
    }

    #[test]
    fn empty_set_snapshot_roundtrips() {
        let config = SwatConfig::with_coefficients(32, 4)
            .unwrap()
            .with_min_level(2)
            .unwrap();
        let set = StreamSet::new(config, 0);
        let restored = StreamSet::restore(&set.snapshot()).unwrap();
        assert_eq!(restored.streams(), 0);
        assert_eq!(restored.config(), set.config());
        assert_eq!(restored.answers_digest(), set.answers_digest());
    }

    #[test]
    fn single_stream_set_matches_lone_tree_for_any_thread_count() {
        let config = SwatConfig::with_coefficients(16, 2).unwrap();
        let cols = columns(1, 50);
        let mut oracle = SwatTree::new(config);
        oracle.push_batch(&cols[0]);
        let indices = [0usize, 1, 7, 15];
        for threads in [1usize, 2, 4, 8] {
            let mut set = StreamSet::new(config, 1);
            set.extend_batched(&cols, threads);
            assert_eq!(
                set.tree(0).answers_digest(),
                oracle.answers_digest(),
                "threads={threads}"
            );
            let pts = set
                .point_many(&indices, QueryOptions::default(), threads)
                .unwrap();
            assert_eq!(pts.len(), 1);
            for (slot, &idx) in pts[0].iter().zip(&indices) {
                assert_eq!(
                    *slot,
                    oracle.point(idx).unwrap(),
                    "threads={threads} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn v1_set_snapshots_remain_readable() {
        let mut set = StreamSet::new(SwatConfig::new(16).unwrap(), 2);
        for i in 0..50 {
            set.push_row(&[i as f64, 1.0 - i as f64]);
        }
        // The v1 writer, frozen here so compatibility stays testable: a
        // bare stream count with no configuration header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SET_MAGIC);
        bytes.push(SET_VERSION_V1);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        for s in 0..2 {
            write_frame(&mut bytes, SEC_STREAM, &set.tree(s).snapshot());
        }
        let restored = StreamSet::restore(&bytes).unwrap();
        assert_eq!(restored.config(), set.config());
        assert_eq!(restored.answers_digest(), set.answers_digest());
        // v1 cannot carry an empty set: its configuration lives in the
        // first stream, so a zero count stays an error.
        let mut empty = Vec::new();
        empty.extend_from_slice(SET_MAGIC);
        empty.push(SET_VERSION_V1);
        empty.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            StreamSet::restore(&empty),
            Err(SnapshotError::Invalid {
                what: "zero streams",
                ..
            })
        ));
    }

    #[test]
    fn snapshot_roundtrip_preserves_every_stream() {
        let mut set = StreamSet::new(SwatConfig::with_coefficients(32, 2).unwrap(), 3);
        for i in 0..150 {
            let x = (i as f64 * 0.31).sin();
            set.push_row(&[x, x * 2.0, 5.0 - x]);
        }
        let restored = StreamSet::restore(&set.snapshot()).unwrap();
        assert_eq!(restored.streams(), 3);
        assert_eq!(restored.answers_digest(), set.answers_digest());
        for s in 0..3 {
            for idx in 0..32 {
                assert_eq!(
                    set.tree(s).point(idx).unwrap(),
                    restored.tree(s).point(idx).unwrap(),
                    "stream {s} idx {idx}"
                );
            }
        }
        // Restored sets keep ingesting identically.
        let mut a = set;
        let mut b = restored;
        for i in 0..40 {
            let row = [i as f64, -(i as f64), 0.5];
            a.push_row(&row);
            b.push_row(&row);
        }
        assert_eq!(a.answers_digest(), b.answers_digest());
    }

    #[test]
    fn snapshot_restore_rejects_corruption() {
        let mut set = StreamSet::new(SwatConfig::new(16).unwrap(), 2);
        for i in 0..50 {
            set.push_row(&[i as f64, 2.0 * i as f64]);
        }
        let bytes = set.snapshot();
        let digest = set.answers_digest();
        assert!(matches!(
            StreamSet::restore(b"????xxxx"),
            Err(SnapshotError::BadMagic)
        ));
        for cut in 0..bytes.len() {
            assert!(StreamSet::restore(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << (byte % 8);
            if let Ok(r) = StreamSet::restore(&bad) {
                assert_eq!(r.answers_digest(), digest, "flip at byte {byte}");
            }
        }
    }
}
