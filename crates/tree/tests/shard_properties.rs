//! Property tests for the sharded ingest tier: for *arbitrary* stream
//! counts, shard counts, thread counts, window shapes, and data, a
//! [`ShardedStreamSet`] must be observationally bit-identical to the
//! unsharded [`StreamSet`] oracle, and its distributed top-k must equal
//! the brute-force ranking of the same candidates.

use proptest::prelude::*;
use swat_tree::shard::{root_summary, ShardedStreamSet};
use swat_tree::{InnerProductQuery, QueryOptions, StreamSet, SwatConfig};
use swat_wavelet::TopCoeff;

/// An arbitrary sharded workload: window shape, stream/shard/thread
/// counts, and per-stream columns (equal lengths, enough to exercise
/// several refresh cascades).
#[allow(clippy::type_complexity)]
fn workload() -> impl Strategy<Value = (usize, usize, Vec<Vec<f64>>, usize, usize)> {
    (2u32..=5, 1usize..=4, 0usize..=17, 1usize..=9, 1usize..=9).prop_flat_map(
        |(log_n, k, streams, shards, threads)| {
            let n = 1usize << log_n;
            let k = k.min(n);
            let len = 2 * n + 3;
            prop::collection::vec(
                prop::collection::vec(-100.0..100.0f64, len..=len),
                streams..=streams,
            )
            .prop_map(move |cols| (n, k, cols, shards, threads))
        },
    )
}

/// Brute-force top-k oracle over every stream's root-summary
/// coefficients, ranked by |value| desc then (stream, index) asc.
fn brute_force_top_k(set: &StreamSet, k: usize) -> Vec<TopCoeff> {
    let mut all = Vec::new();
    for g in 0..set.streams() {
        if let Some(root) = root_summary(set.tree(g)) {
            for (index, &value) in root.coeffs().coefficients().iter().enumerate() {
                all.push(TopCoeff {
                    stream: g as u64,
                    index: index as u32,
                    value,
                });
            }
        }
    }
    all.sort_by(|a, b| {
        b.weight()
            .partial_cmp(&a.weight())
            .unwrap()
            .then_with(|| (a.stream, a.index).cmp(&(b.stream, b.index)))
    });
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded ingest is bit-identical to the unsharded oracle: the
    /// global-order digests agree for every shard and thread count.
    #[test]
    fn sharded_ingest_digest_matches_oracle(
        (n, k, cols, shards, threads) in workload()
    ) {
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut oracle = StreamSet::new(config, cols.len());
        oracle.extend_batched(&cols, 1);
        let mut sharded = ShardedStreamSet::new(config, cols.len(), shards);
        sharded.extend_batched(&cols, threads);
        prop_assert_eq!(sharded.answers_digest(), oracle.answers_digest());
    }

    /// Query fan-out answers equal the oracle's, element for element,
    /// for every shard and thread count (success paths).
    #[test]
    fn sharded_queries_match_oracle(
        (n, k, cols, shards, threads) in workload()
    ) {
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut oracle = StreamSet::new(config, cols.len());
        oracle.extend_batched(&cols, 1);
        let mut sharded = ShardedStreamSet::new(config, cols.len(), shards);
        sharded.extend_batched(&cols, threads);
        let indices: Vec<usize> = vec![0, 1, n / 2, n - 1];
        let pts_oracle = oracle.point_many(&indices, QueryOptions::default(), 1);
        let pts_sharded = sharded.point_many(&indices, QueryOptions::default(), threads);
        prop_assert_eq!(pts_sharded, pts_oracle);
        let queries = [InnerProductQuery::exponential(n / 2, 1e9)];
        let ips_oracle = oracle.inner_product_many(&queries, QueryOptions::default(), 1);
        let ips_sharded = sharded.inner_product_many(&queries, QueryOptions::default(), threads);
        prop_assert_eq!(ips_sharded, ips_oracle);
    }

    /// Distributed top-k equals the brute-force oracle exactly, for
    /// every shard count, thread count, and retention bound.
    #[test]
    fn distributed_top_k_is_exact(
        (n, k, cols, shards, threads) in workload(),
        top_k in 1usize..=12,
    ) {
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut oracle = StreamSet::new(config, cols.len());
        oracle.extend_batched(&cols, 1);
        let mut sharded = ShardedStreamSet::new(config, cols.len(), shards);
        sharded.extend_batched(&cols, threads);
        let (top, stats) = sharded.global_top_k(top_k, threads);
        let want = brute_force_top_k(&oracle, top_k);
        prop_assert_eq!(top.entries(), &want[..]);
        prop_assert_eq!(stats.shards_refined + stats.shards_pruned, shards);
    }

    /// Incremental block boundaries never change the outcome.
    #[test]
    fn sharded_blocks_match_one_shot(
        (n, k, cols, shards, threads) in workload(),
        chunk in 1usize..=13,
    ) {
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut whole = ShardedStreamSet::new(config, cols.len(), shards);
        whole.extend_batched(&cols, threads);
        let mut blocks = ShardedStreamSet::new(config, cols.len(), shards);
        let len = cols.first().map(Vec::len).unwrap_or(0);
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let part: Vec<&[f64]> = cols.iter().map(|c| &c[start..end]).collect();
            blocks.extend_batched(&part, threads);
            start = end;
        }
        prop_assert_eq!(whole.answers_digest(), blocks.answers_digest());
    }
}
