//! Steady-state batched ingestion performs **zero heap allocations**.
//!
//! The blocked ingest path keeps all per-chunk state in reusable
//! buffers: the SoA level lanes and precompiled merge plans live in
//! [`IngestScratch`], and the heap coefficient buffers of evicted
//! summaries recycle through the tree's hoisted [`MergeScratch`] pool
//! (inline stores for `k <= 3` never touch the heap at all). After
//! warming the tree, the scratch, and the pool, aligned batches must not
//! allocate — for small budgets *and* for heap-backed `k = 8`.
//!
//! Mirrors `query_alloc.rs`: a counting global allocator wrapping
//! `System`, in a dedicated single-test integration binary so no
//! concurrent test perturbs the counter. Only allocations made by the
//! test thread itself are counted: the libtest harness thread wakes at
//! timing-dependent moments and allocates a handful of bookkeeping
//! objects, which on a single-core machine can land mid-measurement.
//! The flag is a const-initialised `Cell<bool>` TLS slot, so reading it
//! inside the allocator neither allocates nor registers a destructor.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use swat_tree::{IngestScratch, SwatConfig, SwatTree};

thread_local! {
    static MEASURED_THREAD: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

fn count() {
    if MEASURED_THREAD.with(|t| t.get()) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_batched_ingest_does_not_allocate() {
    MEASURED_THREAD.with(|t| t.set(true));
    let n = 4096;
    let batch: Vec<f64> = (0..1024).map(|i| ((i * 37) % 211) as f64 - 100.0).collect();
    for k in [1usize, 2, 3, 8] {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
        let mut scratch = IngestScratch::new();

        // Warm-up: fill the window twice so every level slab is
        // populated and evicting, the lanes/plans reach their high-water
        // mark, and (for k > 3) the coefficient pool holds recycled
        // buffers for every level width.
        for _ in 0..(2 * n / batch.len()).max(2) {
            tree.push_batch_with_scratch(&batch, &mut scratch);
        }

        let before = allocations();
        for _ in 0..16 {
            tree.push_batch_with_scratch(&batch, &mut scratch);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state batched ingest allocated {delta} times (k = {k})"
        );

        // The scalar head/tail path shares the pool: unaligned pushes
        // after warm-up stay allocation-free too.
        let before = allocations();
        for i in 0..257 {
            tree.push((i % 97) as f64);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state scalar pushes allocated {delta} times (k = {k})"
        );
    }
}
