//! Property-based tests for the SWAT tree's structural invariants.

use proptest::prelude::*;
use swat_tree::{InnerProductQuery, QueryOptions, SwatConfig, SwatTree};

/// Arbitrary window exponent (window 4..=256) and a stream of values.
fn tree_inputs() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (2u32..=8).prop_flat_map(|log_n| {
        let n = 1usize << log_n;
        // Stream long enough to fully warm up (> 2N) plus arbitrary extra.
        prop::collection::vec(0.0..100.0f64, 2 * n + 1..4 * n).prop_map(move |v| (n, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Once warm, every window index is covered at every subsequent time.
    #[test]
    fn window_always_covered((n, values) in tree_inputs()) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        for (i, &v) in values.iter().enumerate() {
            tree.push(v);
            if i + 1 >= 2 * n {
                prop_assert!(tree.is_warm());
                prop_assert!(tree.reconstruct_window().is_ok(), "gap at t={}", i + 1);
            }
        }
    }

    /// Structural bounds from §2.6: 3 log N − 2 summaries once warm.
    #[test]
    fn summary_count_matches_paper((n, values) in tree_inputs()) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        tree.extend(values.iter().copied());
        let log_n = n.trailing_zeros() as usize;
        prop_assert_eq!(tree.summary_count(), 3 * log_n - 2);
    }

    /// Point-query error bounds are sound against ground truth at all
    /// indices and times.
    #[test]
    fn point_bounds_sound((n, values) in tree_inputs()) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        let mut truth = swat_tree::ExactWindow::new(n);
        for &v in &values {
            tree.push(v);
            truth.push(v);
        }
        for idx in 0..n {
            let a = tree.point(idx).unwrap();
            let t = truth.get(idx).unwrap();
            prop_assert!(
                (a.value - t).abs() <= a.error_bound + 1e-9,
                "idx {}: |{} - {}| > {}", idx, a.value, t, a.error_bound
            );
        }
    }

    /// With a full coefficient budget (k = N) the tree is lossless: every
    /// point query returns the exact stream value at every time.
    #[test]
    fn full_budget_tree_is_exact((n, values) in tree_inputs()) {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, n).unwrap());
        let mut truth = swat_tree::ExactWindow::new(n);
        for &v in &values {
            tree.push(v);
            truth.push(v);
        }
        for idx in 0..n {
            let a = tree.point(idx).unwrap();
            let t = truth.get(idx).unwrap();
            prop_assert!((a.value - t).abs() < 1e-9, "idx {}: {} vs {}", idx, a.value, t);
        }
        // Inner products are exact too.
        let q = InnerProductQuery::exponential(n.min(16), 1e-6);
        let ans = tree.inner_product(&q).unwrap();
        let exact = q.exact(&truth.to_vec());
        prop_assert!((ans.value - exact).abs() < 1e-6);
    }

    /// Inner-product error bounds are sound for random query shapes.
    #[test]
    fn inner_product_bounds_sound(
        (n, values) in tree_inputs(),
        start_frac in 0.0..0.5f64,
        len_frac in 0.01..0.5f64,
    ) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        let mut truth = swat_tree::ExactWindow::new(n);
        for &v in &values {
            tree.push(v);
            truth.push(v);
        }
        let start = ((n as f64) * start_frac) as usize;
        let m = (((n as f64) * len_frac) as usize).clamp(1, n - start);
        for q in [
            InnerProductQuery::exponential_at(start, m, 1.0),
            InnerProductQuery::linear_at(start, m, 1.0),
        ] {
            let ans = tree.inner_product(&q).unwrap();
            let exact = q.exact(&truth.to_vec());
            prop_assert!(
                (ans.value - exact).abs() <= ans.error_bound + 1e-9,
                "|{} - {}| > {}", ans.value, exact, ans.error_bound
            );
        }
    }

    /// Space grows with k but stays logarithmic in N: doubling N adds a
    /// constant number of summaries.
    #[test]
    fn space_is_logarithmic(log_n in 3u32..9, k in 1usize..5) {
        let build = |n: usize| {
            let mut t = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
            t.extend((0..2 * n).map(|i| (i % 97) as f64));
            t
        };
        let n = 1usize << log_n;
        let small = build(n);
        let big = build(2 * n);
        prop_assert_eq!(big.summary_count() - small.summary_count(), 3);
    }

    /// Range queries return exactly the reconstructed values inside the
    /// band, and nothing else.
    #[test]
    fn range_query_consistent_with_reconstruction((n, values) in tree_inputs()) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        tree.extend(values.iter().copied());
        let window = tree.reconstruct_window().unwrap();
        let q = swat_tree::RangeQuery::new(50.0, 10.0, 0, n - 1);
        let matches = tree.range_query(&q).unwrap();
        let expected: Vec<usize> = (0..n)
            .filter(|&i| (window[i] - 50.0).abs() <= 10.0)
            .collect();
        let got: Vec<usize> = matches.iter().map(|m| m.index).collect();
        prop_assert_eq!(got, expected);
        for m in &matches {
            prop_assert!((m.value - window[m.index]).abs() < 1e-9);
        }
    }

    /// Snapshots round-trip: the restored tree answers identically and
    /// keeps streaming identically.
    #[test]
    fn snapshot_roundtrip((n, values) in tree_inputs()) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        // (kept mutable: streaming continues after the roundtrip check)
        tree.extend(values.iter().copied());
        let bytes = tree.snapshot();
        let mut restored = SwatTree::restore(&bytes).expect("own snapshots restore");
        for idx in 0..n {
            prop_assert_eq!(tree.point(idx).unwrap(), restored.point(idx).unwrap());
        }
        // Continue streaming both.
        for i in 0..(n as u64) {
            let v = (i % 13) as f64;
            tree.push(v);
            restored.push(v);
        }
        for idx in 0..n {
            prop_assert_eq!(tree.point(idx).unwrap(), restored.point(idx).unwrap());
        }
    }

    /// Arbitrary bytes never panic the restore path.
    #[test]
    fn restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = SwatTree::restore(&bytes);
    }

    /// Flipping any single byte of a valid snapshot either fails cleanly
    /// or yields a structurally valid tree — never a panic.
    #[test]
    fn corrupted_snapshots_fail_cleanly(
        (n, values) in tree_inputs(),
        pos_frac in 0.0..1.0f64,
        xor in 1u8..=255,
    ) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        tree.extend(values.iter().copied());
        let mut bytes = tree.snapshot();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= xor;
        if let Ok(restored) = SwatTree::restore(&bytes) {
            // If it restored, it must at least be internally consistent.
            prop_assert!(restored.summary_count() <= 3 * restored.config().levels());
        }
    }

    /// Streaming `push` agrees with `from_window` at *arbitrary* arrival
    /// counts, not just the full-refresh instants the seed's
    /// `streaming_matches_from_window_at_refresh_points` checked. At any
    /// time `T`, level `l` last refreshed at `s_l = T - T mod 2^l`, so a
    /// bulk tree over the window ending there must carry bit-identical
    /// level-`l` nodes (coefficients AND ranges — the merge is exact and
    /// shares its arithmetic with the direct transform).
    #[test]
    fn streaming_matches_from_window_at_arbitrary_counts(
        (n, k, values) in (2u32..=6, 1usize..=6).prop_flat_map(|(log_n, k)| {
            let n = 1usize << log_n;
            prop::collection::vec(-50.0..50.0f64, 2 * n..4 * n + 3)
                .prop_map(move |v| (n, k, v))
        })
    ) {
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut streamed = SwatTree::new(config);
        streamed.extend(values.iter().copied());
        let t = values.len();
        for l in 0..config.levels() {
            // T >= 2N guarantees s_l >= 2N - 2^l >= N, so a full window
            // ends at the refresh instant.
            let s = t - t % (1usize << l);
            let bulk = SwatTree::from_window(config, &values[s - n..s]).unwrap();
            for pos in swat_tree::NodePos::ORDER {
                let Some(want) = bulk.node(l, pos) else { continue };
                let got = streamed.node(l, pos).unwrap();
                prop_assert_eq!(
                    got.coeffs(), want.coeffs(),
                    "coefficients at T={} level {} {}", t, l, pos.name()
                );
                prop_assert_eq!(
                    got.range(), want.range(),
                    "range at T={} level {} {}", t, l, pos.name()
                );
                // Creation times differ only by the window offset.
                prop_assert_eq!(
                    got.created_at(),
                    want.created_at() + (s - n) as u64,
                    "created_at at T={} level {} {}", t, l, pos.name()
                );
            }
        }
    }

    /// Batched ingestion is indistinguishable from sequential pushes for
    /// random windows, budgets, values, and batch splits.
    #[test]
    fn push_batch_equivalent_for_random_splits(
        (n, k, values) in (2u32..=6, 1usize..=6).prop_flat_map(|(log_n, k)| {
            let n = 1usize << log_n;
            prop::collection::vec(-1e6..1e6f64, 1..3 * n)
                .prop_map(move |v| (n, k, v))
        }),
        chunk in 1usize..40,
    ) {
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut sequential = SwatTree::new(config);
        for &v in &values {
            sequential.push(v);
        }
        let mut batched = SwatTree::new(config);
        for block in values.chunks(chunk) {
            batched.push_batch(block);
        }
        prop_assert_eq!(sequential.arrivals(), batched.arrivals());
        prop_assert_eq!(sequential.newest(), batched.newest());
        let a: Vec<_> = sequential.nodes().collect();
        let b: Vec<_> = batched.nodes().collect();
        prop_assert_eq!(a, b);
    }

    /// Reduced-level queries never fail once warm, and flag extrapolation.
    #[test]
    fn reduced_level_total((n, values) in tree_inputs(), m in 1usize..4) {
        let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
        tree.extend(values.iter().copied());
        let levels = n.trailing_zeros() as usize;
        let m = m.min(levels - 1);
        for idx in 0..n {
            let a = tree.point_with(idx, QueryOptions::at_level(m)).unwrap();
            prop_assert!(a.level >= m);
            prop_assert!(a.value.is_finite());
        }
    }
}

/// The §2.6 error model holds empirically on the ε-increment stream it
/// assumes (with slack for node aging, which the closed form idealizes
/// away).
#[test]
fn error_model_holds_on_ramp_stream() {
    use swat_tree::error_model;
    let n = 256;
    let eps = 0.01;
    let mut tree = SwatTree::new(SwatConfig::new(n).unwrap());
    let mut truth = swat_tree::ExactWindow::new(n);
    let mut worst_exp: f64 = 0.0;
    let mut worst_lin: f64 = 0.0;
    let m = 64;
    for (i, v) in swat_data::walk::RandomWalk::ramp(0.0, 1e9, eps)
        .take(4 * n)
        .enumerate()
    {
        tree.push(v);
        truth.push(v);
        if i + 1 >= 2 * n {
            let w = truth.to_vec();
            let qe = InnerProductQuery::exponential(m, 1.0);
            let ql = InnerProductQuery::linear(m, 1.0);
            let ae = tree.inner_product(&qe).unwrap();
            let al = tree.inner_product(&ql).unwrap();
            worst_exp = worst_exp.max((ae.value - qe.exact(&w)).abs());
            worst_lin = worst_lin.max((al.value - ql.exact(&w)).abs());
        }
    }
    let bound_exp = error_model::exponential_bound(m, eps);
    let bound_lin = error_model::linear_bound(m, eps);
    // Slack factor 3 accounts for node aging between refreshes.
    assert!(
        worst_exp <= 3.0 * bound_exp,
        "exp error {worst_exp} exceeds 3x bound {bound_exp}"
    );
    assert!(
        worst_lin <= 3.0 * bound_lin,
        "lin error {worst_lin} exceeds 3x bound {bound_lin}"
    );
    // And the exponential bound is far tighter than the linear one — the
    // paper's central asymptotic contrast (O(ε log M) vs O(ε M²)).
    assert!(worst_exp < worst_lin, "exp {worst_exp} vs lin {worst_lin}");
}
