//! Golden test reproducing the paper's Figure 2 execution trace.
//!
//! The paper walks a SWAT over a window of N = 16 through five arrivals
//! (4, 6, 2, 10, 4) and quotes intermediate node contents and coverages.
//! The initial window is only partially determined by the text; we pick a
//! window consistent with every quoted number:
//!
//! * R_0 holds sum 26 (avg 13) -> window indices [0, 1] = 14, 12,
//! * S_0 holds sum 14 (avg 7)  -> indices [1, 2] = 12, 2,
//! * R_1 holds sum 32 (avg 8)  -> indices [0..3] = 14, 12, 2, 4,
//! * S_1 holds sum 8 (avg 2)   -> indices [2..5] = 2, 4, 1, 1.
//!
//! Everything the text asserts is then checked against the
//! implementation.

use swat_tree::{InnerProductQuery, NodePos, SwatConfig, SwatTree};

/// The initial window, newest value first (window-index order).
const WINDOW_NEWEST_FIRST: [f64; 16] = [
    14.0, 12.0, 2.0, 4.0, 1.0, 1.0, 3.0, 5.0, 2.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0,
];

fn initial_tree() -> SwatTree {
    let mut oldest_first = WINDOW_NEWEST_FIRST;
    oldest_first.reverse();
    SwatTree::from_window(SwatConfig::new(16).unwrap(), &oldest_first).unwrap()
}

fn avg(tree: &SwatTree, level: usize, pos: NodePos) -> f64 {
    tree.node(level, pos)
        .unwrap_or_else(|| panic!("missing node {level}/{}", pos.name()))
        .coeffs()
        .average()
}

fn coverage(tree: &SwatTree, level: usize, pos: NodePos) -> (usize, usize) {
    tree.node(level, pos).unwrap().coverage(tree.arrivals())
}

#[test]
fn figure_2a_initial_state() {
    let tree = initial_tree();
    // "At t = 0, every node is up-to-date."
    assert_eq!(coverage(&tree, 0, NodePos::Right), (0, 1));
    assert_eq!(coverage(&tree, 0, NodePos::Shift), (1, 2));
    assert_eq!(coverage(&tree, 0, NodePos::Left), (2, 3));
    assert_eq!(coverage(&tree, 1, NodePos::Right), (0, 3));
    assert_eq!(coverage(&tree, 1, NodePos::Shift), (2, 5));
    assert_eq!(coverage(&tree, 1, NodePos::Left), (4, 7));
    assert_eq!(coverage(&tree, 2, NodePos::Right), (0, 7));
    assert_eq!(coverage(&tree, 2, NodePos::Shift), (4, 11));
    assert_eq!(coverage(&tree, 2, NodePos::Left), (8, 15));
    assert_eq!(coverage(&tree, 3, NodePos::Right), (0, 15));
    // Node contents implied by the trace arithmetic.
    assert_eq!(avg(&tree, 0, NodePos::Right), 13.0); // 26/2
    assert_eq!(avg(&tree, 0, NodePos::Shift), 7.0); // 14/2
    assert_eq!(avg(&tree, 1, NodePos::Right), 8.0); // 32/4
    assert_eq!(avg(&tree, 1, NodePos::Shift), 2.0); // 8/4
}

#[test]
fn figure_2b_after_arrival_of_4() {
    let mut tree = initial_tree();
    tree.push(4.0);
    // "L0 gets the summary stored in S0, 14/2, and S0 gets 26/2 from R0.
    //  R0 computes the average of 14 and 4. The average 18/2 is stored."
    assert_eq!(avg(&tree, 0, NodePos::Left), 7.0);
    assert_eq!(avg(&tree, 0, NodePos::Shift), 13.0);
    assert_eq!(avg(&tree, 0, NodePos::Right), 9.0);
    // "All nodes at higher levels are shifted up by 1 time unit. For
    //  example, L2 now stores an approximation to [9-16] instead of [8-15]."
    assert_eq!(coverage(&tree, 2, NodePos::Left), (9, 16));
    assert_eq!(coverage(&tree, 1, NodePos::Right), (1, 4));
}

#[test]
fn figure_2c_after_arrival_of_6() {
    let mut tree = initial_tree();
    tree.push(4.0);
    tree.push(6.0);
    // "At level 0, L0 gets 26/2 from S0, and S0 gets 18/2 from R0. The new
    //  average of [0,1], 10/2, is stored in R0."
    assert_eq!(avg(&tree, 0, NodePos::Left), 13.0);
    assert_eq!(avg(&tree, 0, NodePos::Shift), 9.0);
    assert_eq!(avg(&tree, 0, NodePos::Right), 5.0);
    // "At level 1, L1 gets 8/4 from S1, and S1 gets 32/4 from R1. Lastly,
    //  R1 computes and stores the average of R0 and L0, which is 36/4."
    assert_eq!(avg(&tree, 1, NodePos::Left), 2.0);
    assert_eq!(avg(&tree, 1, NodePos::Shift), 8.0);
    assert_eq!(avg(&tree, 1, NodePos::Right), 9.0);
}

#[test]
fn figure_2d_coverages_match_query_walkthrough() {
    let mut tree = initial_tree();
    for v in [4.0, 6.0, 2.0] {
        tree.push(v);
    }
    // The paper's §2.4 walkthrough of query Q = ([0,3,8,13], ...) on the
    // t = 3 tree quotes these coverages:
    assert_eq!(coverage(&tree, 0, NodePos::Right), (0, 1)); // "R0 approximates [0-1]"
    assert_eq!(coverage(&tree, 0, NodePos::Shift), (1, 2)); // "S0 approximates [1-2]"
    assert_eq!(coverage(&tree, 0, NodePos::Left), (2, 3)); // "L0 approximates [2-3]"
    assert_eq!(coverage(&tree, 1, NodePos::Left), (5, 8)); // "L1 approximates [5-8]"
    assert_eq!(coverage(&tree, 2, NodePos::Shift), (7, 14)); // "S2 approximates [7-14]"
}

#[test]
fn figure_2d_query_selects_the_papers_node_set() {
    let mut tree = initial_tree();
    for v in [4.0, 6.0, 2.0] {
        tree.push(v);
    }
    // Q = ([0, 3, 8, 13], [10, 8, 4, 1], 50): the paper's greedy cover
    // selects V = {R0, L0, L1, S2} — exactly four nodes.
    let q = InnerProductQuery::new(vec![0, 3, 8, 13], vec![10.0, 8.0, 4.0, 1.0], 50.0).unwrap();
    let ans = tree.inner_product(&q).unwrap();
    assert_eq!(ans.nodes_used, 4, "paper's V has exactly 4 nodes");
    assert_eq!(ans.extrapolated, 0);
    // The nodes serving indices 0, 3, 8, 13 are at levels 0, 0, 1, 2.
    assert_eq!(tree.point(0).unwrap().level, 0);
    assert_eq!(tree.point(3).unwrap().level, 0);
    assert_eq!(tree.point(8).unwrap().level, 1);
    assert_eq!(tree.point(13).unwrap().level, 2);
}

#[test]
fn figure_2e_level_2_refreshes_at_t4() {
    let mut tree = initial_tree();
    for v in [4.0, 6.0, 2.0, 10.0] {
        tree.push(v);
    }
    // At t = 4 levels 0, 1, 2 refresh. R1 = avg of the four newest
    // (10, 2, 6, 4) = 22/4; R2 = merge of R1 with the t = 0 L1 block
    // (14, 12, 2, 4 -> sum 32): (22 + 32) / 8.
    assert_eq!(coverage(&tree, 1, NodePos::Right), (0, 3));
    assert_eq!(avg(&tree, 1, NodePos::Right), 5.5);
    assert_eq!(coverage(&tree, 2, NodePos::Right), (0, 7));
    assert_eq!(avg(&tree, 2, NodePos::Right), 54.0 / 8.0);
    // Level 3 did not refresh (t = 4 is not a multiple of 8): it aged.
    assert_eq!(coverage(&tree, 3, NodePos::Right), (4, 19));
}

#[test]
fn figure_2f_after_all_five_arrivals() {
    let mut tree = initial_tree();
    for v in [4.0, 6.0, 2.0, 10.0, 4.0] {
        tree.push(v);
    }
    assert_eq!(tree.arrivals(), 21);
    // t = 5: only level 0 refreshed; R0 = avg(4, 10) = 7.
    assert_eq!(avg(&tree, 0, NodePos::Right), 7.0);
    assert_eq!(coverage(&tree, 0, NodePos::Right), (0, 1));
    // Level 1 aged by one.
    assert_eq!(coverage(&tree, 1, NodePos::Right), (1, 4));
    // The whole window is still covered.
    assert!(tree.reconstruct_window().is_ok());
}
