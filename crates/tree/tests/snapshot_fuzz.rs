//! Exhaustive corruption fuzz over the snapshot formats: flip every bit
//! of every byte and truncate at every offset of reference snapshots for
//! all three serializable structures. The contract under attack bytes is
//! strict — a typed [`SnapshotError`], or a restore observably identical
//! to the reference. Never a panic, never a silently different tree.

use swat_tree::continuous::ContinuousEngine;
use swat_tree::multi::StreamSet;
use swat_tree::{InnerProductQuery, QueryOptions, SwatConfig, SwatTree};

fn reference_tree() -> SwatTree {
    let config = SwatConfig::with_coefficients(32, 3)
        .unwrap()
        .with_min_level(1)
        .unwrap();
    let mut tree = SwatTree::new(config);
    tree.extend((0..130).map(|i| ((i * 17) % 23) as f64 - 7.5));
    tree
}

/// Run `restore` against every single-bit flip and every truncation of
/// `bytes`; `digest_of` extracts the identity witness from a successful
/// restore, compared against `reference`.
fn exhaust<T>(
    what: &str,
    bytes: &[u8],
    reference: u64,
    restore: impl Fn(&[u8]) -> Option<T>,
    digest_of: impl Fn(&T) -> u64,
) {
    for cut in 0..bytes.len() {
        if let Some(r) = restore(&bytes[..cut]) {
            assert_eq!(
                digest_of(&r),
                reference,
                "{what}: truncation at {cut} restored a different structure"
            );
        }
    }
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.to_vec();
            bad[byte] ^= 1 << bit;
            if let Some(r) = restore(&bad) {
                assert_eq!(
                    digest_of(&r),
                    reference,
                    "{what}: bit flip at {byte}.{bit} restored a different structure"
                );
            }
        }
    }
}

#[test]
fn tree_snapshot_survives_every_flip_and_truncation() {
    let tree = reference_tree();
    exhaust(
        "tree",
        &tree.snapshot(),
        tree.answers_digest(),
        |b| SwatTree::restore(b).ok(),
        SwatTree::answers_digest,
    );
}

#[test]
fn engine_snapshot_survives_every_flip_and_truncation() {
    let mut engine = ContinuousEngine::from_tree(reference_tree());
    engine.subscribe(InnerProductQuery::exponential(8, 1e9), 1);
    engine.subscribe_with(
        InnerProductQuery::new(vec![0, 4, 9], vec![0.5, -1.0, 2.0], 50.0).unwrap(),
        QueryOptions::at_level(2),
        3,
    );
    // The subscription table participates in the identity: mix the
    // post-restore behavior (next notification batch) into the witness.
    let witness = |e: &ContinuousEngine| {
        let mut clone = ContinuousEngine::restore(&e.snapshot()).expect("clean roundtrip");
        let notes = clone.push(1.25);
        let mut h = clone.tree().answers_digest();
        for n in notes {
            h = h
                .wrapping_mul(0x100000001b3)
                .wrapping_add(n.answer.value.to_bits())
                .wrapping_add(n.at);
        }
        h
    };
    let reference = witness(&engine);
    exhaust(
        "engine",
        &engine.snapshot(),
        reference,
        |b| ContinuousEngine::restore(b).ok(),
        witness,
    );
}

#[test]
fn stream_set_snapshot_survives_every_flip_and_truncation() {
    let mut set = StreamSet::new(SwatConfig::with_coefficients(16, 2).unwrap(), 2);
    for i in 0..60 {
        let x = (i as f64 * 0.7).cos() * 9.0;
        set.push_row(&[x, 3.0 - x]);
    }
    exhaust(
        "stream set",
        &set.snapshot(),
        set.answers_digest(),
        |b| StreamSet::restore(b).ok(),
        StreamSet::answers_digest,
    );
}
