//! Steady-state query serving performs **zero heap allocations**.
//!
//! A counting global allocator wraps `System`; after warming the tree,
//! the scratch, and the output buffers, a block of mixed queries (point,
//! batched point, inner product — exact and kernel — range, and window
//! reconstruction) must not allocate at all. This is a dedicated
//! single-test integration binary so no concurrent test can perturb the
//! counter. Only allocations made by the test thread itself are
//! counted: the libtest harness thread wakes at timing-dependent
//! moments and allocates a handful of bookkeeping objects, which on a
//! single-core machine can land mid-measurement. The flag is a
//! const-initialised `Cell<bool>` TLS slot, so reading it inside the
//! allocator neither allocates nor registers a destructor.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use swat_tree::{InnerProductQuery, QueryOptions, QueryScratch, RangeQuery, SwatConfig, SwatTree};

thread_local! {
    static MEASURED_THREAD: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

fn count() {
    if MEASURED_THREAD.with(|t| t.get()) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_query_serving_does_not_allocate() {
    MEASURED_THREAD.with(|t| t.set(true));
    let n = 256;
    for k in [1usize, 4, 16] {
        let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
        tree.extend((0..3 * n).map(|i| ((i * 31) % 101) as f64 - 50.0));
        assert!(tree.is_warm());

        let mut scratch = QueryScratch::new();
        let point_indices: Vec<usize> = (0..n).step_by(3).collect();
        let queries = [
            InnerProductQuery::exponential(n, 1e9),
            InnerProductQuery::exponential_at(7, n / 2, 1e9),
            InnerProductQuery::linear(n / 2, 1e9),
            InnerProductQuery::linear_at(3, n / 2, 1e9),
            InnerProductQuery::new(vec![0, 9, 100, 200], vec![1.0, -2.0, 0.5, 3.0], 1e9).unwrap(),
        ];
        let range = RangeQuery {
            center: 0.0,
            radius: 30.0,
            newest: 0,
            oldest: n - 1,
        };
        let opts = QueryOptions::default();

        let mut points = Vec::new();
        let mut inners = Vec::new();
        let mut matches = Vec::new();
        let mut window = Vec::new();

        let serve = |scratch: &mut QueryScratch,
                     points: &mut Vec<_>,
                     inners: &mut Vec<_>,
                     matches: &mut Vec<_>,
                     window: &mut Vec<f64>| {
            tree.point_many(&point_indices, opts, scratch, points)
                .unwrap();
            for &idx in &point_indices {
                tree.point_with_scratch(idx, opts, scratch).unwrap();
            }
            tree.inner_product_many(&queries, opts, scratch, inners)
                .unwrap();
            for q in &queries {
                tree.inner_product_with_scratch(q, opts, scratch).unwrap();
                tree.inner_product_coeffs(q, opts, scratch).unwrap();
            }
            tree.range_query_with_scratch(&range, opts, scratch, matches)
                .unwrap();
            tree.reconstruct_window_into(scratch, window).unwrap();
        };

        // Warm-up: buffers (scratch, outputs, profile weight tables) grow
        // to the workload's high-water mark.
        serve(
            &mut scratch,
            &mut points,
            &mut inners,
            &mut matches,
            &mut window,
        );
        serve(
            &mut scratch,
            &mut points,
            &mut inners,
            &mut matches,
            &mut window,
        );

        let before = allocations();
        for _ in 0..16 {
            serve(
                &mut scratch,
                &mut points,
                &mut inners,
                &mut matches,
                &mut window,
            );
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state serving allocated {delta} times (k = {k})"
        );
    }
}
