//! Bit-identity property suite: the blocked batch-ingest path must
//! produce trees **node-for-node identical** to the frozen scalar
//! reference (`swat_tree::ingest::reference`) for every window size,
//! coefficient budget, chunk cap, batch decomposition, and interleaving
//! of the ingest entry points — including unaligned heads and tails.

use proptest::prelude::*;
use swat_tree::ingest::reference;
use swat_tree::{IngestScratch, SwatConfig, SwatTree};

/// Assert two trees are observably identical, node by node (clearer
/// failure messages than the digest alone), then cross-check the digest.
fn assert_identical(blocked: &SwatTree, frozen: &SwatTree, ctx: &str) {
    let a: Vec<_> = blocked.nodes().collect();
    let b: Vec<_> = frozen.nodes().collect();
    assert_eq!(a.len(), b.len(), "summary count mismatch ({ctx})");
    for ((la, pa, sa), (lb, pb, sb)) in a.iter().zip(&b) {
        assert_eq!((la, pa), (lb, pb), "node order mismatch ({ctx})");
        assert_eq!(
            sa.created_at(),
            sb.created_at(),
            "created_at mismatch at level {la} {pa:?} ({ctx})"
        );
        assert_eq!(
            sa.range().lo().to_bits(),
            sb.range().lo().to_bits(),
            "range lo bits mismatch at level {la} {pa:?} ({ctx})"
        );
        assert_eq!(
            sa.range().hi().to_bits(),
            sb.range().hi().to_bits(),
            "range hi bits mismatch at level {la} {pa:?} ({ctx})"
        );
        let ca: Vec<u64> = sa
            .coeffs()
            .coefficients()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        let cb: Vec<u64> = sb
            .coeffs()
            .coefficients()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        assert_eq!(
            ca, cb,
            "coefficient bits mismatch at level {la} {pa:?} ({ctx})"
        );
    }
    assert_eq!(
        blocked.answers_digest(),
        frozen.answers_digest(),
        "digest mismatch ({ctx})"
    );
}

/// A value stream exercising varied magnitudes and signs (finite only).
fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            -1e6f64..1e6,
            -1.0f64..1.0,
            Just(0.0),
            (-50i32..50).prop_map(f64::from),
        ],
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One big batch vs the frozen per-value reference, across window
    /// sizes, budgets, chunk caps, and total lengths (aligned or not).
    #[test]
    fn single_batch_matches_reference(
        (log_n, k, total, chunk_cap, vals) in (2u32..=8).prop_flat_map(|log_n| {
            let n = 1usize << log_n;
            (
                Just(log_n),
                prop_oneof![Just(1usize), Just(2), Just(3), Just(8), Just(17)],
                0usize..(3 * n + 5),
                prop_oneof![Just(8usize), Just(16), Just(64), Just(1024)],
            )
                .prop_flat_map(|(log_n, k, total, cap)| {
                    (Just(log_n), Just(k), Just(total), Just(cap), values(total))
                })
        })
    ) {
        let n = 1usize << log_n;
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut blocked = SwatTree::new(config);
        let mut scratch = IngestScratch::with_max_chunk(chunk_cap);
        blocked.push_batch_with_scratch(&vals, &mut scratch);
        let mut frozen = SwatTree::new(config);
        reference::push_batch(&mut frozen, &vals);
        assert_identical(&blocked, &frozen, &format!("n={n} k={k} total={total} cap={chunk_cap}"));
    }

    /// Arbitrary batch decompositions — including 1-value batches (the
    /// scalar head/tail path) and batches crossing chunk boundaries —
    /// all collapse to the same tree.
    #[test]
    fn arbitrary_splits_match_reference(
        (log_n, k, vals, splits) in (2u32..=7).prop_flat_map(|log_n| {
            let n = 1usize << log_n;
            (2 * n..3 * n).prop_flat_map(move |total| {
                (
                    Just(log_n),
                    prop_oneof![Just(1usize), Just(3), Just(8)],
                    values(total),
                    prop::collection::vec(1usize..=total.max(1), 0..12),
                )
            })
        })
    ) {
        let n = 1usize << log_n;
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut blocked = SwatTree::new(config);
        let mut rest: &[f64] = &vals;
        for &s in &splits {
            if rest.is_empty() { break; }
            let cut = s.min(rest.len());
            blocked.push_batch(&rest[..cut]);
            rest = &rest[cut..];
        }
        blocked.push_batch(rest);
        let mut frozen = SwatTree::new(config);
        reference::push_batch(&mut frozen, &vals);
        assert_identical(&blocked, &frozen, &format!("n={n} k={k} splits={splits:?}"));
    }

    /// Interleaving scalar `push`, batched `push_batch`, and iterator
    /// `extend` still matches the reference stream byte for byte.
    #[test]
    fn interleaved_entry_points_match_reference(
        (log_n, k, ops) in (2u32..=7).prop_flat_map(|log_n| {
            let n = 1usize << log_n;
            (
                Just(log_n),
                prop_oneof![Just(2usize), Just(8), Just(17)],
                prop::collection::vec(
                    (0u8..3, 1usize..n.max(2), -100.0f64..100.0),
                    1..10,
                ),
            )
        })
    ) {
        let n = 1usize << log_n;
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut blocked = SwatTree::new(config);
        let mut all = Vec::new();
        for (mode, len, seed) in ops {
            let vals: Vec<f64> = (0..len).map(|i| seed + i as f64 * 0.75).collect();
            match mode {
                0 => for &v in &vals { blocked.push(v); },
                1 => blocked.push_batch(&vals),
                _ => blocked.extend(vals.iter().copied()),
            }
            all.extend_from_slice(&vals);
        }
        let mut frozen = SwatTree::new(config);
        reference::push_batch(&mut frozen, &all);
        assert_identical(&blocked, &frozen, &format!("n={n} k={k} len={}", all.len()));
    }

    /// Snapshot round-trips mid-stream don't disturb the blocked path:
    /// a restored tree continues bit-identically (boundary verification
    /// accepts stream-grown slab states).
    #[test]
    fn restored_trees_continue_identically(
        (log_n, k, head, tail) in (3u32..=7).prop_flat_map(|log_n| {
            let n = 1usize << log_n;
            (0..2 * n).prop_flat_map(move |head_len| {
                (
                    Just(log_n),
                    prop_oneof![Just(1usize), Just(8)],
                    values(head_len),
                    values(2 * n),
                )
            })
        })
    ) {
        let n = 1usize << log_n;
        let config = SwatConfig::with_coefficients(n, k).unwrap();
        let mut tree = SwatTree::new(config);
        tree.push_batch(&head);
        let bytes = tree.snapshot();
        let mut restored = SwatTree::restore(&bytes).unwrap();
        restored.push_batch(&tail);
        let mut frozen = SwatTree::new(config);
        let mut all = head.clone();
        all.extend_from_slice(&tail);
        reference::push_batch(&mut frozen, &all);
        assert_identical(&restored, &frozen, &format!("n={n} k={k} head={}", head.len()));
    }
}

/// Deterministic large case: multiple 1024-value chunks, plus unaligned
/// head/tail, at the bench's window and budget.
#[test]
fn large_stream_crosses_max_chunks() {
    for k in [1usize, 3, 8] {
        let config = SwatConfig::with_coefficients(4096, k).unwrap();
        let vals: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761u64) % 10_007) as f64 * 0.01 - 50.0)
            .collect();
        let mut blocked = SwatTree::new(config);
        blocked.push(vals[0]);
        blocked.push_batch(&vals[1..7]);
        blocked.push_batch(&vals[7..9_500]);
        blocked.extend(vals[9_500..].iter().copied());
        let mut frozen = SwatTree::new(config);
        reference::push_batch(&mut frozen, &vals);
        assert_identical(&blocked, &frozen, &format!("large k={k}"));
    }
}

/// The frozen reference matches the scalar `push` loop (it is the same
/// code); the blocked path matches both.
#[test]
fn reference_matches_scalar_push() {
    let config = SwatConfig::with_coefficients(64, 8).unwrap();
    let vals: Vec<f64> = (0..300).map(|i| (i as f64).sin() * 40.0).collect();
    let mut pushed = SwatTree::new(config);
    for &v in &vals {
        pushed.push(v);
    }
    let mut frozen = SwatTree::new(config);
    for &v in &vals {
        reference::push(&mut frozen, v);
    }
    assert_identical(&pushed, &frozen, "push vs reference::push");
    let mut extended = SwatTree::new(config);
    reference::extend(&mut extended, vals.iter().copied());
    assert_identical(&extended, &frozen, "reference extend vs push");
}

/// `try_push_batch` rejects mid-stream NaN without mutating; the fused
/// single-pass validation keeps the all-or-nothing contract even when
/// the bad value sits past several valid chunks.
#[test]
fn try_push_batch_all_or_nothing_across_chunks() {
    let config = SwatConfig::with_coefficients(256, 8).unwrap();
    let mut tree = SwatTree::new(config);
    tree.push_batch(&vec![1.5; 256]);
    let before = tree.answers_digest();
    let mut vals = vec![2.5; 1400];
    vals[1337] = f64::NAN;
    let err = tree.try_push_batch(&vals).unwrap_err();
    assert_eq!(
        format!("{err}"),
        format!(
            "{}",
            swat_tree::TreeError::NonFinite {
                position: 256 + 1337
            }
        )
    );
    assert_eq!(
        tree.answers_digest(),
        before,
        "failed batch must not mutate"
    );
    // And the happy path afterwards still works.
    vals[1337] = 2.5;
    tree.try_push_batch(&vals).unwrap();
}
