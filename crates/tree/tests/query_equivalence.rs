//! Property tests pinning the zero-allocation query engine to the frozen
//! reference implementations, bit for bit.
//!
//! The engine (`swat_tree::scratch`) is only allowed to differ from
//! `swat_tree::query::reference` in *where bytes live* — every answer
//! field (values, error bounds, `meets_precision`, node counts,
//! extrapolation flags) and every error must be identical, across window
//! sizes, coefficient budgets, warm-up states, and reduced-level options.

use proptest::prelude::*;
use swat_tree::multi::StreamSet;
use swat_tree::query::reference;
use swat_tree::{
    InnerProductQuery, QueryOptions, QueryScratch, RangeQuery, SwatConfig, SwatTree, TreeError,
};

/// Window exponent, coefficient budget, and a stream that may leave the
/// tree anywhere from cold to long-warm (so uncovered paths are hit too).
fn tree_inputs() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (2u32..=7).prop_flat_map(|log_n| {
        let n = 1usize << log_n;
        (1..=n, prop::collection::vec(-50.0..50.0f64, 1..4 * n)).prop_map(move |(k, v)| (n, k, v))
    })
}

fn build(n: usize, k: usize, values: &[f64]) -> SwatTree {
    let mut tree = SwatTree::new(SwatConfig::with_coefficients(n, k).unwrap());
    tree.extend(values.iter().copied());
    tree
}

fn point_answers_identical(
    a: &Result<swat_tree::PointAnswer, TreeError>,
    b: &Result<swat_tree::PointAnswer, TreeError>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            x.value.to_bits() == y.value.to_bits()
                && x.error_bound.to_bits() == y.error_bound.to_bits()
                && x.level == y.level
                && x.extrapolated == y.extrapolated
        }
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

fn inner_answers_identical(
    a: &Result<swat_tree::InnerProductAnswer, TreeError>,
    b: &Result<swat_tree::InnerProductAnswer, TreeError>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            x.value.to_bits() == y.value.to_bits()
                && x.error_bound.to_bits() == y.error_bound.to_bits()
                && x.meets_precision == y.meets_precision
                && x.nodes_used == y.nodes_used
                && x.extrapolated == y.extrapolated
        }
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

/// A mixed bag of inner-product queries exercising all profiles and the
/// general (unsorted, gappy) path.
fn query_mix(n: usize) -> Vec<InnerProductQuery> {
    let mut qs = vec![
        InnerProductQuery::exponential(n, 10.0),
        InnerProductQuery::exponential_at(n / 4, n / 2, 1.0),
        InnerProductQuery::linear(n.max(2) / 2, 25.0),
        InnerProductQuery::linear_at(1, n - 1, 5.0),
        InnerProductQuery::point(n - 1, 0.5),
    ];
    if n >= 8 {
        qs.push(
            InnerProductQuery::new(vec![n - 1, 0, n / 2, 3], vec![-1.5, 2.0, 0.25, 4.0], 3.0)
                .unwrap(),
        );
    }
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scratch point path ≡ reference, at every index, for min_level 0..3,
    /// at every warm-up state.
    #[test]
    fn point_engine_matches_reference((n, k, values) in tree_inputs()) {
        let tree = build(n, k, &values);
        let mut scratch = QueryScratch::new();
        for min_level in 0..3usize {
            let opts = QueryOptions::at_level(min_level);
            for idx in 0..n {
                let want = reference::point_with(&tree, idx, opts);
                let got = tree.point_with_scratch(idx, opts, &mut scratch);
                prop_assert!(
                    point_answers_identical(&got, &want),
                    "idx {idx} min_level {min_level}: {got:?} vs {want:?}"
                );
                // The public API routes through the engine; same contract.
                let via_public = tree.point_with(idx, opts);
                prop_assert!(point_answers_identical(&via_public, &want));
            }
        }
    }

    /// `point_many` ≡ one-at-a-time `point_with`, including error cases.
    #[test]
    fn point_many_matches_one_at_a_time((n, k, values) in tree_inputs()) {
        let tree = build(n, k, &values);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let indices: Vec<usize> = (0..n).chain([n / 2, 0, n - 1]).collect();
        for min_level in 0..3usize {
            let opts = QueryOptions::at_level(min_level);
            let batched = tree.point_many(&indices, opts, &mut scratch, &mut out);
            let mut seq: Result<Vec<_>, TreeError> = Ok(Vec::new());
            for &idx in &indices {
                match (&mut seq, tree.point_with(idx, opts)) {
                    (Ok(v), Ok(a)) => v.push(a),
                    (Ok(_), Err(e)) => { seq = Err(e); break; }
                    _ => unreachable!(),
                }
            }
            match (batched, seq) {
                (Ok(()), Ok(seq)) => {
                    prop_assert_eq!(out.len(), seq.len());
                    for (g, w) in out.iter().zip(&seq) {
                        prop_assert!(point_answers_identical(&Ok(*g), &Ok(*w)));
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "batched {a:?} vs sequential {b:?}"),
            }
        }
    }

    /// Scratch inner-product path and `inner_product_many` ≡ reference
    /// for every profile, window, and reduced-level option.
    #[test]
    fn inner_product_engine_matches_reference((n, k, values) in tree_inputs()) {
        let tree = build(n, k, &values);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let queries = query_mix(n);
        for min_level in 0..3usize {
            let opts = QueryOptions::at_level(min_level);
            for q in &queries {
                let want = reference::inner_product_with(&tree, q, opts);
                let got = tree.inner_product_with_scratch(q, opts, &mut scratch);
                prop_assert!(
                    inner_answers_identical(&got, &want),
                    "{q:?} min_level {min_level}: {got:?} vs {want:?}"
                );
            }
            // Batched: all queries in one block vs the sequential answers.
            let batched = tree.inner_product_many(&queries, opts, &mut scratch, &mut out);
            let mut seq: Result<Vec<_>, TreeError> = Ok(Vec::new());
            for q in &queries {
                match (&mut seq, reference::inner_product_with(&tree, q, opts)) {
                    (Ok(v), Ok(a)) => v.push(a),
                    (Ok(_), Err(e)) => { seq = Err(e); break; }
                    _ => unreachable!(),
                }
            }
            match (batched, seq) {
                (Ok(()), Ok(seq)) => {
                    prop_assert_eq!(out.len(), seq.len());
                    for (g, w) in out.iter().zip(&seq) {
                        prop_assert!(inner_answers_identical(&Ok(*g), &Ok(*w)));
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "batched {a:?} vs sequential {b:?}"),
            }
        }
    }

    /// Scratch range path ≡ reference: same matches, same order, same
    /// errors.
    #[test]
    fn range_engine_matches_reference(
        (n, k, values) in tree_inputs(),
        center in -60.0..60.0f64,
        radius in 0.0..40.0f64,
    ) {
        let tree = build(n, k, &values);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let spans = [(0usize, n - 1), (0, 0), (n / 2, n - 1), (1, n / 2 + 1)];
        for (newest, oldest) in spans {
            let q = RangeQuery { center, radius, newest, oldest: oldest.max(newest) };
            let want = reference::range_query_with(&tree, &q, QueryOptions::default());
            let got = tree
                .range_query_with_scratch(&q, QueryOptions::default(), &mut scratch, &mut out)
                .map(|()| out.clone());
            match (&got, &want) {
                (Ok(g), Ok(w)) => {
                    prop_assert_eq!(g.len(), w.len());
                    for (a, b) in g.iter().zip(w) {
                        prop_assert_eq!(a.index, b.index);
                        prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "{got:?} vs {want:?}"),
            }
        }
    }

    /// Scratch window reconstruction ≡ reference.
    #[test]
    fn reconstruct_engine_matches_reference((n, k, values) in tree_inputs()) {
        let tree = build(n, k, &values);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let want = reference::reconstruct_window(&tree);
        let got = tree
            .reconstruct_window_into(&mut scratch, &mut out)
            .map(|()| out.clone());
        match (&got, &want) {
            (Ok(g), Ok(w)) => {
                prop_assert_eq!(g.len(), w.len());
                for (a, b) in g.iter().zip(w) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "{got:?} vs {want:?}"),
        }
    }

    /// The wavelet-domain kernel is sound (truth within its bound) and
    /// its bound is at most 2x the exact path's.
    #[test]
    fn kernel_is_sound((n, k, values) in tree_inputs()) {
        let tree = build(n, k, &values);
        if !tree.is_warm() {
            // Soundness vs. ground truth needs a full window; cold and
            // extrapolated cases are covered by the equivalence tests.
            continue;
        }
        let mut truth = swat_tree::ExactWindow::new(n);
        for &v in &values {
            truth.push(v);
        }
        let window: Vec<f64> = (0..n).map(|i| truth.get(i).unwrap()).collect();
        let mut scratch = QueryScratch::new();
        for q in query_mix(n) {
            let exact = q.exact(&window);
            let ans = tree
                .inner_product_coeffs(&q, QueryOptions::default(), &mut scratch)
                .unwrap();
            prop_assert!(
                (ans.value - exact).abs() <= ans.error_bound + 1e-9,
                "{q:?}: |{} - {exact}| > {}", ans.value, ans.error_bound
            );
            let reference_ans = tree.inner_product(&q).unwrap();
            prop_assert!(
                ans.error_bound <= 2.0 * reference_ans.error_bound + 1e-9,
                "{q:?}: kernel bound {} vs exact-path bound {}",
                ans.error_bound, reference_ans.error_bound
            );
        }
    }

    /// StreamSet query fan-out is deterministic: identical answers for
    /// every thread count, bit for bit.
    #[test]
    fn stream_set_fan_out_is_deterministic(
        streams in 1usize..9,
        seed in 0u64..1000,
    ) {
        let n = 32;
        let mut set = StreamSet::new(SwatConfig::with_coefficients(n, 4).unwrap(), streams);
        let cols: Vec<Vec<f64>> = (0..streams)
            .map(|s| {
                (0..3 * n)
                    .map(|i| (((i as u64 + seed) * (2 * s as u64 + 3)) % 101) as f64 - 50.0)
                    .collect()
            })
            .collect();
        set.extend_batched(&cols, 2);
        let indices: Vec<usize> = vec![0, 3, n / 2, n - 1];
        let queries = query_mix(n);
        let pts1 = set.point_many(&indices, QueryOptions::default(), 1).unwrap();
        let ips1 = set
            .inner_product_many(&queries, QueryOptions::default(), 1)
            .unwrap();
        for threads in [2usize, 3, 7, 16] {
            let pts = set.point_many(&indices, QueryOptions::default(), threads).unwrap();
            prop_assert_eq!(&pts, &pts1, "threads={}", threads);
            let ips = set
                .inner_product_many(&queries, QueryOptions::default(), threads)
                .unwrap();
            prop_assert_eq!(&ips, &ips1, "threads={}", threads);
        }
    }
}
