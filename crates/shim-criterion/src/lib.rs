//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace's
//! micro-benchmarks run on this minimal wall-clock harness exposing the
//! criterion API subset they use: benchmark groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, throughput annotation, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple and honest rather than statistical: after one
//! warm-up call, each benchmark runs batches of iterations until either
//! `sample_size` samples or a ~250 ms budget is reached, and reports the
//! minimum per-iteration time (the usual low-noise estimator). Under
//! `cargo test` (which executes `harness = false` bench targets with the
//! `--test` flag) every benchmark runs exactly once, as a smoke test.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for parity with criterion.
pub use std::hint::black_box;

/// Top-level harness handle: a factory for benchmark groups.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

/// How much work one benchmark iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Strategy for handing setup products to [`Bencher::iter_batched`].
/// The shim times each routine call individually, so the distinction is
/// informational only.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Many small inputs per batch.
    SmallInput,
    /// One large input per batch.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            best: None,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.best);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            best: None,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.best);
        self
    }

    /// End the group (purely cosmetic here).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, best: Option<Duration>) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        match best {
            Some(d) => {
                let per_iter = d.as_secs_f64();
                let rate = self.throughput.and_then(|t| match t {
                    Throughput::Elements(n) if per_iter > 0.0 => {
                        Some(format!("  {:.0} elem/s", n as f64 / per_iter))
                    }
                    Throughput::Bytes(n) if per_iter > 0.0 => {
                        Some(format!("  {:.0} B/s", n as f64 / per_iter))
                    }
                    _ => None,
                });
                println!(
                    "bench {label:<40} {:>12}{}",
                    format_duration(d),
                    rate.unwrap_or_default()
                );
            }
            None => println!("bench {label:<40} (no measurement)"),
        }
    }
}

/// Runs and times the benchmark routine.
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

/// Per-benchmark wall-clock budget (ignored in `--test` smoke mode).
const BUDGET: Duration = Duration::from_millis(250);

fn smoke_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Time `routine` repeatedly, keeping the fastest sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        if smoke_test_mode() {
            return;
        }
        let started = Instant::now();
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            best = best.min(t0.elapsed());
            if started.elapsed() > BUDGET {
                break;
            }
        }
        self.best = Some(best);
    }

    /// Time `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        black_box(routine(setup())); // warm-up
        if smoke_test_mode() {
            return;
        }
        let started = Instant::now();
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            best = best.min(t0.elapsed());
            if started.elapsed() > BUDGET {
                break;
            }
        }
        self.best = Some(best);
    }
}

fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Declare a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim/demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("k=1").to_string(), "k=1");
    }
}
