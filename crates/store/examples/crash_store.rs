//! Fabricate a crashed tiered store for driving `swat recover` by hand:
//! ingest with background flushing, ack, then die without clean
//! shutdown. Usage: `cargo run -p swat-store --example crash_store -- DIR`.

use std::time::Duration;
use swat_store::{DurableStore, StoreOptions};
use swat_tree::SwatConfig;

fn main() {
    let dir = std::env::args().nth(1).expect("usage: crash_store DIR");
    let opts = StoreOptions {
        freeze_rows: 8,
        compact_fanin: 2,
        retry_backoff: Duration::from_millis(1),
        ..StoreOptions::default()
    };
    let config = SwatConfig::with_coefficients(32, 2).expect("32 is a power of two");
    let mut store =
        DurableStore::create_with(&dir, config, 2, opts).expect("store directory is writable");
    for i in 0..43 {
        store
            .push_row(&[i as f64, (i * i) as f64])
            .expect("finite rows");
    }
    store.sync().expect("the ack");
    println!(
        "crashing with {} rows acked, digest {:016x}",
        store.arrivals(),
        store.answers_digest()
    );
    store.crash();
}
