//! The segment manifest — the commit point of the tiered store.
//!
//! A manifest is a small checksummed file naming the live segments in
//! chronological order plus `covered_t`, the arrival clock up to which
//! segments (not the WAL) are the durable source of truth. Every flush
//! and every compaction becomes visible by atomically writing
//! `manifest-<seq+1>` — fsync, rename, directory fsync — so at any crash
//! instant there is a complete old manifest or a complete new one, and
//! any segment file not named by the newest valid manifest is an orphan
//! that recovery reclaims.
//!
//! ## On-disk layout
//!
//! ```text
//! "SMAN" version  seq  covered_t  count   entries...   crc32
//!   4B     1B     8B      8B       4B                   4B
//! entry:  name_len  name(utf-8)  start_t  end_t
//!           2B        ..           8B       8B
//! ```

use std::fs;
use std::path::Path;

use swat_tree::codec::{crc32, CodecError, Cursor};

use crate::checkpoint::{self, FileKind};
use crate::error::StoreError;
use crate::fault::IoFaults;
use crate::io;
use crate::segment;

/// First bytes of every manifest file.
pub const MAN_MAGIC: &[u8; 4] = b"SMAN";
/// Current manifest format version.
pub const MAN_VERSION: u8 = 1;
/// Manifest generations kept on disk: the newest is truth, the previous
/// one is the fallback if a crash lands mid-rename of the newest.
pub const KEPT_MANIFESTS: usize = 2;

/// Name of the manifest with sequence number `seq`.
pub fn manifest_name(seq: u64) -> String {
    format!("manifest-{seq:020}.man")
}

/// Parse `seq` back out of a [`manifest_name`].
pub fn parse_manifest_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("manifest-")?.strip_suffix(".man")?;
    if rest.len() != 20 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Every kind of file the tiered store writes into its directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreFile {
    /// Legacy whole-set checkpoint (`ckpt-<t>.ckpt`, PR 4 format).
    Checkpoint(u64),
    /// A write-ahead-log generation (`wal-<base>.wal`).
    Wal(u64),
    /// An immutable segment (`seg-<start>-<end>.seg`).
    Segment(u64, u64),
    /// A manifest generation (`manifest-<seq>.man`).
    Manifest(u64),
}

/// Classify a store-directory file name; `None` for files this store
/// never writes (including `.tmp` staging files).
pub fn classify(name: &str) -> Option<StoreFile> {
    if let Some((kind, t)) = checkpoint::parse_name(name) {
        return Some(match kind {
            FileKind::Checkpoint => StoreFile::Checkpoint(t),
            FileKind::Wal => StoreFile::Wal(t),
        });
    }
    if let Some((s, e)) = segment::parse_segment_name(name) {
        return Some(StoreFile::Segment(s, e));
    }
    parse_manifest_name(name).map(StoreFile::Manifest)
}

/// One segment the manifest declares live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name within the store directory.
    pub name: String,
    /// First arrival the segment's rows carry.
    pub start_t: u64,
    /// Arrival clock of the segment's snapshot.
    pub end_t: u64,
}

/// The live-segment list at one commit point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic commit sequence number.
    pub seq: u64,
    /// Arrivals durably captured by segments; the WAL owns `covered_t..`.
    pub covered_t: u64,
    /// Live segments, chronological (`entries[i].end_t == entries[i+1].start_t`).
    pub entries: Vec<SegmentEntry>,
}

impl Manifest {
    /// Serialize with the trailing whole-file checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAN_MAGIC);
        out.push(MAN_VERSION);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.covered_t.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            // invariant: segment file names are short ASCII (45 bytes),
            // so the u16 length prefix cannot overflow.
            out.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
            out.extend_from_slice(e.name.as_bytes());
            out.extend_from_slice(&e.start_t.to_le_bytes());
            out.extend_from_slice(&e.end_t.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and verify a manifest. `file` names the source for error
    /// context. The whole-file checksum is checked first, so a manifest
    /// is either verified end-to-end or not used at all.
    pub fn decode(file: &str, bytes: &[u8]) -> Result<Manifest, StoreError> {
        let corrupt = |source| StoreError::Corrupt {
            file: file.to_owned(),
            source,
        };
        if bytes.len() < 4 {
            return Err(corrupt(CodecError::Truncated { offset: 0 }));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(CodecError::ChecksumMismatch {
                offset: body.len(),
                stored,
                computed,
            }));
        }
        let mut c = Cursor::new(body);
        let magic = c.take(4).map_err(corrupt)?;
        if magic != MAN_MAGIC {
            return Err(corrupt(CodecError::Invalid {
                what: "manifest magic",
                offset: 0,
            }));
        }
        let version = c.u8().map_err(corrupt)?;
        if version != MAN_VERSION {
            return Err(corrupt(CodecError::Invalid {
                what: "manifest version",
                offset: 4,
            }));
        }
        let seq = c.u64().map_err(corrupt)?;
        let covered_t = c.u64().map_err(corrupt)?;
        let count = c.u32().map_err(corrupt)? as usize;
        let mut entries = Vec::new();
        let mut prev_end = None;
        for _ in 0..count {
            let name_len = {
                let b = c.take(2).map_err(corrupt)?;
                u16::from_le_bytes(b.try_into().expect("2 bytes")) as usize
            };
            let name_at = c.offset();
            let name = std::str::from_utf8(c.take(name_len).map_err(corrupt)?)
                .map_err(|_| {
                    corrupt(CodecError::Invalid {
                        what: "manifest entry name",
                        offset: name_at,
                    })
                })?
                .to_owned();
            let start_t = c.u64().map_err(corrupt)?;
            let end_t = c.u64().map_err(corrupt)?;
            // Entries must name real segment files and chain: a manifest
            // violating that is not one we wrote.
            if segment::parse_segment_name(&name) != Some((start_t, end_t))
                || prev_end.is_some_and(|p| p != start_t)
            {
                return Err(corrupt(CodecError::Invalid {
                    what: "manifest entry chain",
                    offset: name_at,
                }));
            }
            prev_end = Some(end_t);
            entries.push(SegmentEntry {
                name,
                start_t,
                end_t,
            });
        }
        if !c.is_empty() {
            return Err(corrupt(CodecError::Invalid {
                what: "manifest trailing bytes",
                offset: c.offset(),
            }));
        }
        let m = Manifest {
            seq,
            covered_t,
            entries,
        };
        if m.covered_t != m.entries.last().map_or(0, |e| e.end_t) {
            return Err(corrupt(CodecError::Invalid {
                what: "manifest covered clock",
                offset: 13,
            }));
        }
        Ok(m)
    }
}

/// Atomically commit `manifest` to `dir` through the given fault domain,
/// then drop manifest generations beyond the newest [`KEPT_MANIFESTS`].
/// The rename inside [`io::write_atomic`] is the commit point: before it
/// the old manifest is truth, after it the new one is.
pub fn commit(faults: &IoFaults, dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    io::write_atomic(
        faults,
        dir,
        &manifest_name(manifest.seq),
        &manifest.encode(),
        "commit manifest",
    )?;
    let mut seqs = list_manifests(dir)?;
    seqs.sort_unstable();
    let drop_n = seqs.len().saturating_sub(KEPT_MANIFESTS);
    for seq in &seqs[..drop_n] {
        let _ = fs::remove_file(dir.join(manifest_name(*seq)));
    }
    Ok(())
}

/// Sequence numbers of every manifest file present in `dir`.
pub fn list_manifests(dir: &Path) -> Result<Vec<u64>, StoreError> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir).map_err(StoreError::io("list store directory"))? {
        let entry = entry.map_err(StoreError::io("list store directory"))?;
        if let Some(seq) = parse_manifest_name(&entry.file_name().to_string_lossy()) {
            seqs.push(seq);
        }
    }
    Ok(seqs)
}

/// Load the newest manifest in `dir` that verifies, newest-first.
/// Returns the manifest (if any verified) and how many newer ones were
/// skipped as corrupt.
pub fn load_newest(dir: &Path) -> Result<(Option<Manifest>, usize), StoreError> {
    let mut seqs = list_manifests(dir)?;
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut skipped = 0;
    for seq in seqs {
        let name = manifest_name(seq);
        if let Ok(bytes) = fs::read(dir.join(&name)) {
            if let Ok(m) = Manifest::decode(&name, &bytes) {
                if m.seq == seq {
                    return Ok((Some(m), skipped));
                }
            }
        }
        skipped += 1;
    }
    Ok((None, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment_name;
    use std::path::PathBuf;

    fn sample() -> Manifest {
        Manifest {
            seq: 7,
            covered_t: 30,
            entries: vec![
                SegmentEntry {
                    name: segment_name(0, 20),
                    start_t: 0,
                    end_t: 20,
                },
                SegmentEntry {
                    name: segment_name(20, 30),
                    start_t: 20,
                    end_t: 30,
                },
            ],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-man-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrips() {
        let m = sample();
        assert_eq!(Manifest::decode("m", &m.encode()).unwrap(), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::decode("m", &empty.encode()).unwrap(), empty);
    }

    #[test]
    fn every_flip_and_truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Manifest::decode("m", &bytes[..cut]).is_err(), "cut {cut}");
        }
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(Manifest::decode("m", &bad).is_err(), "flip {byte}.{bit}");
            }
        }
    }

    #[test]
    fn classify_names_every_store_file() {
        assert_eq!(
            classify("ckpt-00000000000000000010.ckpt"),
            Some(StoreFile::Checkpoint(10))
        );
        assert_eq!(
            classify("wal-00000000000000000000.wal"),
            Some(StoreFile::Wal(0))
        );
        assert_eq!(
            classify(&segment_name(3, 9)),
            Some(StoreFile::Segment(3, 9))
        );
        assert_eq!(classify(&manifest_name(4)), Some(StoreFile::Manifest(4)));
        assert_eq!(classify("node-meta"), None);
        assert_eq!(classify(&format!("{}.tmp", manifest_name(4))), None);
    }

    #[test]
    fn commit_keeps_the_newest_two_and_load_skips_corrupt() {
        let dir = tmp("commit");
        let faults = IoFaults::none();
        for seq in 0..4 {
            let m = Manifest {
                seq,
                ..Manifest::default()
            };
            commit(&faults, &dir, &m).unwrap();
        }
        let mut seqs = list_manifests(&dir).unwrap();
        seqs.sort_unstable();
        assert_eq!(seqs, [2, 3]);

        // Corrupt the newest: load falls back to seq 2 and reports it.
        let mut bytes = fs::read(dir.join(manifest_name(3))).unwrap();
        bytes[5] ^= 0x10;
        fs::write(dir.join(manifest_name(3)), bytes).unwrap();
        let (m, skipped) = load_newest(&dir).unwrap();
        assert_eq!(m.unwrap().seq, 2);
        assert_eq!(skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
