//! # SWAT durability layer
//!
//! Crash consistency for SWAT summaries. A network node that holds the
//! only full-resolution summary of its local streams (the paper's §3
//! deployment) cannot afford to lose it to a process crash: rebuilding
//! from peers costs the very network messages the hierarchy exists to
//! avoid. This crate makes a node's [`StreamSet`](swat_tree::StreamSet)
//! durable with a classic checkpoint + write-ahead-log design, engineered
//! so that **arbitrary storage corruption degrades recovery, never
//! correctness**:
//!
//! * [`store::DurableStore`] — the live object: every arrival row is a
//!   checksummed WAL record before the in-memory trees apply it;
//!   checkpoints are whole-file-checksummed snapshots written with the
//!   `fsync` → atomic-rename → directory-`fsync` protocol.
//! * [`recovery::RecoveryManager`] — rebuilds from the newest verifiable
//!   checkpoint plus the longest verified WAL prefix, chaining sealed log
//!   generations, truncating torn tails, and falling back a generation
//!   when the newest checkpoint is damaged. The recovered trees are
//!   bit-identical (by `answers_digest`) to a never-crashed store at some
//!   verified prefix of the ingested rows.
//! * [`fault::FaultInjector`] — seeded, replayable bit flips, torn
//!   writes, and file deletions; the property tests drive recovery
//!   through thousands of such fault plans.
//! * [`image`] — a small checksummed record container for non-tree
//!   durable state (the replication layer's per-node bookkeeping).
//!
//! Formats are defined in [`wal`] and [`checkpoint`]; every decode path
//! returns a positioned [`StoreError`] and none of them can panic on
//! adversarial bytes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod image;
pub mod meta;
pub mod recovery;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use fault::{Fault, FaultInjector, FaultPlan};
pub use image::{read_image, ImageWriter};
pub use meta::NodeMeta;
pub use recovery::{RecoveryManager, RecoveryReport};
pub use store::{holds_store, DurableStore};
