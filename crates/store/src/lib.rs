//! # SWAT durability layer
//!
//! Crash consistency for SWAT summaries. A network node that holds the
//! only full-resolution summary of its local streams (the paper's §3
//! deployment) cannot afford to lose it to a process crash: rebuilding
//! from peers costs the very network messages the hierarchy exists to
//! avoid. This crate makes a node's [`StreamSet`](swat_tree::StreamSet)
//! durable with a tiered, LSM-flavoured design, engineered so that
//! **arbitrary storage corruption degrades recovery, never correctness**
//! and **no caller ever blocks on an `fsync`**:
//!
//! * [`store::DurableStore`] — the live object: every arrival row is a
//!   checksummed WAL record plus an in-memory tree update; at every
//!   `freeze_rows` boundary the accumulated rows freeze and a background
//!   thread serializes them into an immutable, bloom-guarded
//!   [`segment`] with an embedded snapshot, committing via the
//!   [`manifest`] and only then pruning the covered WAL prefix.
//! * [`compaction`] — background k-way merge of adjacent segments, with
//!   the manifest rename as the single commit point; a crash at any step
//!   leaves only reclaimable orphans, never lost rows.
//! * [`recovery::RecoveryManager`] — rebuilds from the newest verifiable
//!   manifest: base snapshot from the newest intact segment, newer
//!   segments' verified rows rolled forward, then the WAL chain replayed
//!   in bounded-memory chunks with torn tails truncated. The recovered
//!   trees are bit-identical (by `answers_digest`) to a never-crashed
//!   store at some verified prefix of the acknowledged rows.
//! * [`fault`] — two seeded fault families: [`fault::FaultPlan`] mutates
//!   dead directories (bit rot, torn tails, lost files) and
//!   [`fault::IoFaults`] makes live writes/fsyncs/renames fail
//!   (`ENOSPC`, `EIO`, torn writes, mid-operation crashes). A persistent
//!   background fault parks the flush and degrades the store
//!   ([`store::StoreHealth`]) while ingest continues.
//! * [`image`] — a small checksummed record container for non-tree
//!   durable state (the replication layer's per-node bookkeeping).
//!
//! Formats are defined in [`wal`], [`segment`], [`manifest`], and the
//! legacy [`checkpoint`]; every decode path returns a positioned
//! [`StoreError`] and none of them can panic on adversarial bytes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checkpoint;
pub mod compaction;
pub mod error;
pub mod fault;
pub mod image;
mod io;
pub mod manifest;
pub mod meta;
pub mod recovery;
pub mod segment;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use fault::{Fault, FaultInjector, FaultPlan, IoFaultKind, IoFaultPlan, IoFaults, IoOp};
pub use image::{read_image, ImageWriter};
pub use manifest::{Manifest, SegmentEntry, StoreFile};
pub use meta::NodeMeta;
pub use recovery::{RecoveryManager, RecoveryReport};
pub use store::{holds_store, DurableStore, StoreHealth, StoreOptions, TierStatus};
