//! Durable per-node failover metadata: the leadership term and the
//! per-shard configuration epochs.
//!
//! The no-split-brain argument of the daemon's failover protocol leans on
//! one durability fact: **a node never claims or acknowledges the same
//! term twice with different state**, even across a crash-restart. That
//! makes the term record the one piece of daemon state that must hit disk
//! *before* the node speaks — so it gets the full checkpoint treatment:
//! an [`image`](crate::image) container (every bit flip detected), written
//! to a temporary sibling, `fsync`ed, atomically renamed into place, and
//! the directory `fsync`ed.
//!
//! The file lives inside the node's store directory under a name the
//! checkpoint/WAL scanner ignores ([`META_FILE`]), so recovery and meta
//! persistence share a directory without either scanning the other's
//! files.

use std::fs;
use std::io;
use std::path::Path;

use swat_tree::codec::{CodecError, Cursor};

use crate::error::StoreError;
use crate::image::{read_image, ImageWriter};

/// File name of the metadata image inside a store directory. The
/// checkpoint scanner's `parse_name` does not recognize it, so it never
/// shadows tree recovery.
pub const META_FILE: &str = "node-meta";

const TMP_FILE: &str = "node-meta.tmp";
const TAG_TERM: u8 = 1;
const TAG_EPOCH: u8 = 2;
// A mandatory terminator: without it, truncating the image at a record
// boundary would silently drop trailing epoch records.
const TAG_END: u8 = 3;

/// A node's durable failover state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeMeta {
    /// The newest leadership term this node has claimed or acknowledged.
    pub term: u64,
    /// The node believed to lead `term`.
    pub leader: u64,
    /// Per-shard configuration epochs this node has acknowledged,
    /// ascending by shard.
    pub epochs: Vec<(u32, u64)>,
}

impl NodeMeta {
    /// Serialize into image bytes (exposed for corruption fuzzing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ImageWriter::new();
        let mut term = Vec::with_capacity(16);
        term.extend_from_slice(&self.term.to_le_bytes());
        term.extend_from_slice(&self.leader.to_le_bytes());
        w.record(TAG_TERM, &term);
        for &(shard, epoch) in &self.epochs {
            let mut rec = Vec::with_capacity(12);
            rec.extend_from_slice(&shard.to_le_bytes());
            rec.extend_from_slice(&epoch.to_le_bytes());
            w.record(TAG_EPOCH, &rec);
        }
        w.record(TAG_END, &[]);
        w.finish()
    }

    /// Decode image bytes (exposed for corruption fuzzing).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any structural damage — a flipped bit,
    /// a truncation, a missing or duplicated term record.
    pub fn from_bytes(bytes: &[u8]) -> Result<NodeMeta, StoreError> {
        let corrupt = |source: CodecError| StoreError::Corrupt {
            file: META_FILE.to_string(),
            source,
        };
        let invalid = |what: &'static str| corrupt(CodecError::Invalid { what, offset: 0 });
        let mut meta: Option<NodeMeta> = None;
        let mut ended = false;
        for (tag, payload) in read_image(bytes)? {
            if ended {
                return Err(invalid("record after the end marker"));
            }
            match tag {
                TAG_TERM => {
                    if meta.is_some() {
                        return Err(invalid("duplicate term record"));
                    }
                    let mut c = Cursor::new(&payload);
                    let term = c.u64().map_err(corrupt)?;
                    let leader = c.u64().map_err(corrupt)?;
                    if !c.is_empty() {
                        return Err(invalid("oversized term record"));
                    }
                    meta = Some(NodeMeta {
                        term,
                        leader,
                        epochs: Vec::new(),
                    });
                }
                TAG_EPOCH => {
                    let m = meta
                        .as_mut()
                        .ok_or_else(|| invalid("epoch before term record"))?;
                    let mut c = Cursor::new(&payload);
                    let shard = c.u32().map_err(corrupt)?;
                    let epoch = c.u64().map_err(corrupt)?;
                    if !c.is_empty() {
                        return Err(invalid("oversized epoch record"));
                    }
                    if m.epochs.last().is_some_and(|&(s, _)| s >= shard) {
                        return Err(invalid("epoch records out of order"));
                    }
                    m.epochs.push((shard, epoch));
                }
                TAG_END => {
                    if !payload.is_empty() {
                        return Err(invalid("oversized end marker"));
                    }
                    ended = true;
                }
                _ => return Err(invalid("unknown metadata record tag")),
            }
        }
        if !ended {
            return Err(invalid("missing end marker (truncated image)"));
        }
        meta.ok_or_else(|| invalid("missing term record"))
    }

    /// Durably persist into `dir` (created if missing): temporary file,
    /// `fsync`, atomic rename, directory `fsync`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if any filesystem step fails; on error the
    /// previous metadata file (if any) is intact.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        fs::create_dir_all(dir).map_err(StoreError::io("create metadata directory"))?;
        let tmp = dir.join(TMP_FILE);
        fs::write(&tmp, self.to_bytes()).map_err(StoreError::io("write metadata"))?;
        let f = fs::File::open(&tmp).map_err(StoreError::io("reopen metadata for fsync"))?;
        f.sync_all().map_err(StoreError::io("fsync metadata"))?;
        fs::rename(&tmp, dir.join(META_FILE)).map_err(StoreError::io("rename metadata"))?;
        // Best-effort directory fsync, same policy as the checkpoint
        // writer: the rename is atomic either way.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Load from `dir`. A missing file is `Ok(None)` — the node has never
    /// persisted a term; anything unreadable or structurally damaged is
    /// an error, because acting on a default term after losing a newer
    /// one is exactly the split-brain the record exists to prevent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] on
    /// structural damage.
    pub fn load(dir: &Path) -> Result<Option<NodeMeta>, StoreError> {
        let bytes = match fs::read(dir.join(META_FILE)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StoreError::Io {
                    context: "read metadata",
                    source: e,
                })
            }
        };
        Self::from_bytes(&bytes).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeMeta {
        NodeMeta {
            term: 7,
            leader: 2,
            epochs: vec![(0, 1), (1, 0), (2, 4)],
        }
    }

    #[test]
    fn roundtrips_in_memory() {
        let m = sample();
        assert_eq!(NodeMeta::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn roundtrips_on_disk_and_overwrites_atomically() {
        let dir = std::env::temp_dir().join(format!("swat-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(NodeMeta::load(&dir).unwrap(), None, "no dir yet");
        let first = sample();
        first.save(&dir).unwrap();
        assert_eq!(NodeMeta::load(&dir).unwrap(), Some(first));
        let second = NodeMeta {
            term: 12,
            leader: 3,
            epochs: vec![(0, 2)],
        };
        second.save(&dir).unwrap();
        assert_eq!(NodeMeta::load(&dir).unwrap(), Some(second));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    NodeMeta::from_bytes(&mutated).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                NodeMeta::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn structural_damage_is_typed() {
        // Duplicate term record.
        let m = sample();
        let mut w = ImageWriter::new();
        let mut term = Vec::new();
        term.extend_from_slice(&m.term.to_le_bytes());
        term.extend_from_slice(&m.leader.to_le_bytes());
        w.record(TAG_TERM, &term).record(TAG_TERM, &term);
        assert!(NodeMeta::from_bytes(&w.finish()).is_err());
        // Epoch record before any term record.
        let mut w = ImageWriter::new();
        w.record(TAG_EPOCH, &[0u8; 12]);
        assert!(NodeMeta::from_bytes(&w.finish()).is_err());
        // Unknown tag.
        let mut w = ImageWriter::new();
        w.record(9, &[]);
        assert!(NodeMeta::from_bytes(&w.finish()).is_err());
        // Empty image: no term record.
        assert!(NodeMeta::from_bytes(&ImageWriter::new().finish()).is_err());
    }
}
