//! The write-ahead log format.
//!
//! Every arrival row is persisted as one fixed-size record **before** the
//! process can acknowledge it, so a crash loses at most what the kernel
//! had not yet reached disk with — and a crash mid-write leaves a *torn*
//! record whose checksum cannot verify. Recovery therefore reads the
//! longest verified prefix and drops the tail, never guessing.
//!
//! ## On-disk layout
//!
//! ```text
//! header  "SWAL" version  base_t  window  k  min_level  streams  crc32
//!           4B      1B      8B      8B    8B     8B        8B     4B
//! record  crc32  row[0] .. row[streams-1]        (repeated to EOF)
//!           4B     8B each, f64 little-endian bits
//! ```
//!
//! The header checksum covers every header byte before it; each record
//! checksum covers that record's row bytes. `base_t` is the number of
//! arrivals already captured by the checkpoint this log extends, which
//! lets recovery chain log generations: replaying `wal-<t>` completely
//! lands exactly on the `base_t` of the next generation.
//!
//! The header repeats the tree configuration so an empty store (no
//! checkpoint written yet) is still recoverable from `wal-0` alone.

use swat_tree::codec::{crc32, CodecError, Cursor};
use swat_tree::SwatConfig;

/// First bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"SWAL";
/// Current WAL format version.
pub const WAL_VERSION: u8 = 1;
/// Serialized header size in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 8 * 5 + 4;

/// The fixed-size header at the start of a WAL file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Arrivals already captured by the checkpoint this log extends.
    pub base_t: u64,
    /// Sliding-window size `N` of the summarized trees.
    pub window: u64,
    /// Coefficients retained per summary.
    pub k: u64,
    /// Reduced-resolution floor (§2.5) the trees were configured with.
    pub min_level: u64,
    /// Streams per row.
    pub streams: u64,
}

impl WalHeader {
    /// Capture the identity of a live store.
    pub fn describe(config: &SwatConfig, streams: usize, base_t: u64) -> WalHeader {
        WalHeader {
            base_t,
            window: config.window() as u64,
            k: config.coefficients() as u64,
            min_level: config.min_level() as u64,
            streams: streams as u64,
        }
    }

    /// Serialize to the fixed [`HEADER_LEN`]-byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(WAL_MAGIC);
        out.push(WAL_VERSION);
        for v in [
            self.base_t,
            self.window,
            self.k,
            self.min_level,
            self.streams,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out
    }

    /// Parse and verify a header from the start of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<WalHeader, CodecError> {
        let mut c = Cursor::new(bytes);
        let magic = c.take(4)?;
        if magic != WAL_MAGIC {
            return Err(CodecError::Invalid {
                what: "WAL magic",
                offset: 0,
            });
        }
        let version = c.u8()?;
        if version != WAL_VERSION {
            return Err(CodecError::Invalid {
                what: "WAL version",
                offset: 4,
            });
        }
        let base_t = c.u64()?;
        let window = c.u64()?;
        let k = c.u64()?;
        let min_level = c.u64()?;
        let streams = c.u64()?;
        let crc_at = c.offset();
        let stored = c.u32()?;
        let computed = crc32(&bytes[..crc_at]);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch {
                offset: crc_at,
                stored,
                computed,
            });
        }
        Ok(WalHeader {
            base_t,
            window,
            k,
            min_level,
            streams,
        })
    }

    /// Reconstruct the tree configuration this log was written under, or
    /// a positioned error if the checksummed fields are nonetheless not a
    /// valid configuration (possible only for files we never wrote).
    pub fn config(&self) -> Result<SwatConfig, CodecError> {
        let bad = |what| CodecError::Invalid { what, offset: 5 };
        if self.window > usize::MAX as u64 || self.k > usize::MAX as u64 || self.streams == 0 {
            return Err(bad("WAL stream shape"));
        }
        SwatConfig::with_coefficients(self.window as usize, self.k as usize)
            .and_then(|c| c.with_min_level(self.min_level as usize))
            .map_err(|_| bad("WAL tree configuration"))
    }
}

/// Bytes of one record carrying a row of `streams` values.
pub fn record_len(streams: usize) -> usize {
    4 + 8 * streams
}

/// Append one checksummed record for `row` to `out`.
pub fn encode_record(out: &mut Vec<u8>, row: &[f64]) {
    let start = out.len();
    out.extend_from_slice(&[0; 4]);
    for &v in row {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let crc = crc32(&out[start + 4..]);
    out[start..start + 4].copy_from_slice(&crc.to_le_bytes());
}

/// The verified prefix of a WAL body (the bytes after the header).
pub struct WalPrefix {
    /// Replayable rows, flattened with stride `streams`.
    pub values: Vec<f64>,
    /// Verified body length in bytes; anything past it is a torn or
    /// corrupt tail that recovery must discard.
    pub verified_len: usize,
}

/// Scan `body` for the longest prefix of whole, checksum-verified, finite
/// records. Scanning stops — without failing — at the first record that
/// is incomplete, fails its checksum, or decodes to a non-finite value,
/// because nothing after an unverifiable record can be trusted to be
/// aligned, let alone intact.
pub fn scan_records(body: &[u8], streams: usize) -> WalPrefix {
    let rlen = record_len(streams);
    let mut values = Vec::new();
    let mut at = 0;
    'records: while body.len() - at >= rlen {
        let stored = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
        let row = &body[at + 4..at + rlen];
        if crc32(row) != stored {
            break;
        }
        let mark = values.len();
        for s in 0..streams {
            let bits = u64::from_le_bytes(row[8 * s..8 * s + 8].try_into().expect("8 bytes"));
            let v = f64::from_bits(bits);
            if !v.is_finite() {
                values.truncate(mark);
                break 'records;
            }
            values.push(v);
        }
        at += rlen;
    }
    WalPrefix {
        values,
        verified_len: at,
    }
}

/// Streaming verified-prefix reader over a WAL body.
///
/// Recovery of a long-lived stream must not materialize the whole log:
/// this reader pulls the body through a fixed-size chunk buffer, verifies
/// record checksums incrementally, and hands back at most `chunk_rows`
/// rows at a time. The memory high-water mark is one chunk regardless of
/// how large the log grew. Semantics match [`scan_records`] exactly: the
/// first incomplete, corrupt, or non-finite record ends the verified
/// prefix, and a read error is treated as the end of readable data (the
/// tail is dropped, never guessed at).
pub struct WalBodyReader<R: std::io::Read> {
    inner: R,
    streams: usize,
    /// Whole-record-aligned staging buffer (capacity `chunk_rows` records).
    buf: Vec<u8>,
    target: usize,
    verified_len: u64,
    done: bool,
}

impl<R: std::io::Read> WalBodyReader<R> {
    /// A reader delivering up to `chunk_rows` rows per call (minimum 1).
    pub fn new(inner: R, streams: usize, chunk_rows: usize) -> WalBodyReader<R> {
        let target = record_len(streams) * chunk_rows.max(1);
        WalBodyReader {
            inner,
            streams,
            buf: Vec::with_capacity(target),
            target,
            verified_len: 0,
            done: false,
        }
    }

    /// Body bytes verified so far (the caller computes the dropped tail
    /// as `body_len - verified_len` once the reader is exhausted).
    pub fn verified_len(&self) -> u64 {
        self.verified_len
    }

    /// The next chunk of verified rows (flattened with stride `streams`),
    /// or `None` when the verified prefix is exhausted.
    pub fn next_rows(&mut self) -> Option<Vec<f64>> {
        if self.done {
            return None;
        }
        // Top up the staging buffer to one chunk (or EOF / read error).
        let mut eof = false;
        let mut scratch = [0u8; 8192];
        while self.buf.len() < self.target {
            let want = (self.target - self.buf.len()).min(scratch.len());
            match self.inner.read(&mut scratch[..want]) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(_) => {
                    // An unreadable tail is a dropped tail.
                    eof = true;
                    self.done = true;
                    break;
                }
            }
        }
        let prefix = scan_records(&self.buf, self.streams);
        let whole = self.buf.len() / record_len(self.streams) * record_len(self.streams);
        if prefix.verified_len < whole || eof {
            // A record inside the chunk failed verification, or the log
            // ends here (possibly with a torn partial record): nothing
            // after this point can be trusted.
            self.done = true;
        }
        self.verified_len += prefix.verified_len as u64;
        self.buf.drain(..prefix.verified_len);
        if prefix.values.is_empty() {
            self.done = true;
            return None;
        }
        Some(prefix.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> WalHeader {
        let config = SwatConfig::with_coefficients(64, 3)
            .unwrap()
            .with_min_level(2)
            .unwrap();
        WalHeader::describe(&config, 3, 17)
    }

    #[test]
    fn header_roundtrips() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(WalHeader::decode(&bytes).unwrap(), h);
        let config = h.config().unwrap();
        assert_eq!(config.window(), 64);
        assert_eq!(config.coefficients(), 3);
        assert_eq!(config.min_level(), 2);
    }

    #[test]
    fn header_rejects_every_bit_flip_and_truncation() {
        let bytes = header().encode();
        for cut in 0..bytes.len() {
            WalHeader::decode(&bytes[..cut]).unwrap_err();
        }
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                WalHeader::decode(&bad).unwrap_err();
            }
        }
    }

    #[test]
    fn records_roundtrip_and_tail_is_dropped() {
        let rows = [[1.0, -2.5], [3.25, 0.0], [9.0, 1e-3]];
        let mut body = Vec::new();
        for row in &rows {
            encode_record(&mut body, row);
        }
        let full = scan_records(&body, 2);
        assert_eq!(full.verified_len, body.len());
        assert_eq!(full.values, [1.0, -2.5, 3.25, 0.0, 9.0, 1e-3]);

        // A torn final record: the verified prefix is exactly the whole
        // records before it.
        for cut in 0..record_len(2) {
            let torn = &body[..2 * record_len(2) + cut];
            let p = scan_records(torn, 2);
            assert_eq!(p.verified_len, 2 * record_len(2), "cut {cut}");
            assert_eq!(p.values.len(), 4);
        }
    }

    #[test]
    fn any_corrupt_record_ends_the_verified_prefix() {
        let mut body = Vec::new();
        for i in 0..5 {
            encode_record(&mut body, &[i as f64, -(i as f64)]);
        }
        let rlen = record_len(2);
        for byte in 0..body.len() {
            for bit in 0..8 {
                let mut bad = body.clone();
                bad[byte] ^= 1 << bit;
                let p = scan_records(&bad, 2);
                let hit = byte / rlen;
                assert_eq!(
                    p.values.len(),
                    2 * hit,
                    "flip at {byte}.{bit} must cut the prefix at record {hit}"
                );
                assert_eq!(p.verified_len, hit * rlen);
            }
        }
    }

    #[test]
    fn body_reader_matches_scan_records_chunk_by_chunk() {
        let mut body = Vec::new();
        for i in 0..100 {
            encode_record(&mut body, &[i as f64, -(i as f64)]);
        }
        // Clean body: all rows, in order, across many small chunks.
        let mut r = WalBodyReader::new(&body[..], 2, 7);
        let mut values = Vec::new();
        while let Some(chunk) = r.next_rows() {
            assert!(chunk.len() <= 7 * 2);
            values.extend(chunk);
        }
        let reference = scan_records(&body, 2);
        assert_eq!(values, reference.values);
        assert_eq!(r.verified_len(), reference.verified_len as u64);

        // A flipped record mid-body ends the prefix at the same point.
        let mut bad = body.clone();
        bad[record_len(2) * 43 + 5] ^= 0x20;
        let mut r = WalBodyReader::new(&bad[..], 2, 7);
        let mut values = Vec::new();
        while let Some(chunk) = r.next_rows() {
            values.extend(chunk);
        }
        assert_eq!(values.len(), 43 * 2);
        assert_eq!(r.verified_len(), (record_len(2) * 43) as u64);

        // A torn final record is dropped.
        let torn = &body[..body.len() - 3];
        let mut r = WalBodyReader::new(torn, 2, 64);
        let mut rows = 0;
        while let Some(chunk) = r.next_rows() {
            rows += chunk.len() / 2;
        }
        assert_eq!(rows, 99);
    }

    #[test]
    fn non_finite_rows_are_rejected_even_with_a_valid_checksum() {
        let mut body = Vec::new();
        encode_record(&mut body, &[1.0, 2.0]);
        encode_record(&mut body, &[f64::NAN, 2.0]);
        encode_record(&mut body, &[3.0, 4.0]);
        let p = scan_records(&body, 2);
        assert_eq!(p.values, [1.0, 2.0]);
        assert_eq!(p.verified_len, record_len(2));
    }
}
