//! The durable store: an in-memory [`StreamSet`] whose every mutation is
//! captured on disk before it is acknowledged.
//!
//! A store directory holds checkpoint generations and the WAL extending
//! the newest one:
//!
//! ```text
//! ckpt-00000000000000000256.ckpt   full StreamSet image at t = 256
//! ckpt-00000000000000000512.ckpt   full StreamSet image at t = 512
//! wal-00000000000000000512.wal     arrivals 512.. (the live log)
//! ```
//!
//! [`DurableStore::push_row`] appends a checksummed WAL record and then
//! applies the row to the in-memory trees; [`DurableStore::checkpoint`]
//! seals the log, writes a fresh checkpoint atomically, opens the next
//! log generation, and prunes generations older than the last two. The
//! previous generation is kept deliberately: if a fault corrupts the
//! newest checkpoint, recovery falls back to the older one and replays
//! its (sealed, complete) WAL to reach the exact same state.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use swat_tree::{StreamSet, SwatConfig};

use crate::checkpoint::{self, checkpoint_name, wal_name, FileKind};
use crate::error::StoreError;
use crate::wal::{self, WalHeader};

/// How many checkpoint generations [`DurableStore::checkpoint`] retains.
pub const KEPT_GENERATIONS: usize = 2;

/// Whether `dir` holds store files (a checkpoint or WAL generation).
/// Unrelated files — e.g. the [`crate::meta`] image that shares the
/// directory — do not count, so "recover or create?" decisions stay
/// correct when other state lives alongside the trees.
pub fn holds_store(dir: &Path) -> bool {
    let Ok(entries) = fs::read_dir(dir) else {
        return false;
    };
    entries
        .flatten()
        .any(|e| checkpoint::parse_name(&e.file_name().to_string_lossy()).is_some())
}

/// A crash-consistent [`StreamSet`].
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    set: StreamSet,
    wal: BufWriter<File>,
    wal_base: u64,
    rows_since_checkpoint: u64,
}

impl DurableStore {
    /// Create a fresh store in `dir` (created if missing). Fails if the
    /// directory already holds store files — recover those with
    /// [`crate::recovery::RecoveryManager`] instead of silently clobbering
    /// them.
    pub fn create(
        dir: impl Into<PathBuf>,
        config: SwatConfig,
        streams: usize,
    ) -> Result<DurableStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(StoreError::io("create store directory"))?;
        for entry in fs::read_dir(&dir).map_err(StoreError::io("list store directory"))? {
            let entry = entry.map_err(StoreError::io("list store directory"))?;
            if checkpoint::parse_name(&entry.file_name().to_string_lossy()).is_some() {
                return Err(StoreError::Io {
                    context: "create store in a directory that already holds one",
                    source: std::io::Error::from(std::io::ErrorKind::AlreadyExists),
                });
            }
        }
        let set = StreamSet::new(config, streams);
        Self::resume(dir, set, false)
    }

    /// Wrap an already-reconstructed `set` (freshly created, or rebuilt by
    /// recovery) and open its live WAL generation. With `checkpoint_now`,
    /// a checkpoint is written first so the on-disk state is self-
    /// contained even if earlier generations were corrupt.
    pub(crate) fn resume(
        dir: PathBuf,
        set: StreamSet,
        checkpoint_now: bool,
    ) -> Result<DurableStore, StoreError> {
        let base = set.tree(0).arrivals();
        let wal = open_wal(&dir, &set, base)?;
        let mut store = DurableStore {
            dir,
            set,
            wal,
            wal_base: base,
            rows_since_checkpoint: 0,
        };
        if checkpoint_now {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Append one synchronized row durably: the WAL record is written
    /// (buffered) before the in-memory trees see the values. Call
    /// [`sync`](Self::sync) to force it to disk, or rely on the implicit
    /// sync inside [`checkpoint`](Self::checkpoint).
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), StoreError> {
        if row.len() != self.set.streams() {
            return Err(StoreError::BadRow {
                got: row.len(),
                want: self.set.streams(),
            });
        }
        if let Some(stream) = row.iter().position(|v| !v.is_finite()) {
            return Err(StoreError::BadValue { stream });
        }
        let mut record = Vec::with_capacity(wal::record_len(row.len()));
        wal::encode_record(&mut record, row);
        self.wal
            .write_all(&record)
            .map_err(StoreError::io("append WAL record"))?;
        self.set.push_row(row);
        self.rows_since_checkpoint += 1;
        Ok(())
    }

    /// Flush buffered WAL records and `fsync` the log.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal
            .flush()
            .map_err(StoreError::io("flush WAL buffer"))?;
        self.wal
            .get_ref()
            .sync_data()
            .map_err(StoreError::io("fsync WAL"))?;
        Ok(())
    }

    /// Seal the current WAL generation, write a checkpoint of the present
    /// state atomically, open the next generation, and prune everything
    /// older than the last [`KEPT_GENERATIONS`] checkpoints.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        let t = self.set.tree(0).arrivals();
        checkpoint::write_atomic(
            &self.dir,
            &checkpoint_name(t),
            &checkpoint::encode(&self.set),
        )?;
        self.wal = open_wal(&self.dir, &self.set, t)?;
        self.wal_base = t;
        self.rows_since_checkpoint = 0;
        self.prune(t)?;
        Ok(())
    }

    /// Remove generations no longer needed for recovery: checkpoints
    /// beyond the newest [`KEPT_GENERATIONS`] and WAL files older than the
    /// oldest kept checkpoint. The live WAL (`base == t_now`) always
    /// survives.
    fn prune(&self, t_now: u64) -> Result<(), StoreError> {
        let mut ckpts: Vec<u64> = Vec::new();
        let mut wals: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(StoreError::io("list store directory"))? {
            let entry = entry.map_err(StoreError::io("list store directory"))?;
            match checkpoint::parse_name(&entry.file_name().to_string_lossy()) {
                Some((FileKind::Checkpoint, t)) => ckpts.push(t),
                Some((FileKind::Wal, t)) => wals.push(t),
                None => {}
            }
        }
        ckpts.sort_unstable();
        let kept = ckpts.len().saturating_sub(KEPT_GENERATIONS);
        // WAL generations strictly older than the oldest kept checkpoint
        // are unreachable; with fewer than KEPT_GENERATIONS checkpoints,
        // the wal-0 bootstrap generation is still the fallback, so
        // nothing is old enough to drop.
        let floor = if ckpts.len() >= KEPT_GENERATIONS {
            ckpts[kept]
        } else {
            0
        };
        for t in &ckpts[..kept] {
            let _ = fs::remove_file(self.dir.join(checkpoint_name(*t)));
        }
        for t in wals {
            if t < floor && t != t_now {
                let _ = fs::remove_file(self.dir.join(wal_name(t)));
            }
        }
        checkpoint::sync_dir(&self.dir)
    }

    /// The summarized streams.
    pub fn set(&self) -> &StreamSet {
        &self.set
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arrivals ingested per stream (the durable clock).
    pub fn arrivals(&self) -> u64 {
        self.set.tree(0).arrivals()
    }

    /// Rows appended to the live WAL since the last checkpoint.
    pub fn rows_since_checkpoint(&self) -> u64 {
        self.rows_since_checkpoint
    }

    /// The answers-identity digest of the underlying [`StreamSet`] — the
    /// witness that recovery was bit-identical.
    pub fn answers_digest(&self) -> u64 {
        self.set.answers_digest()
    }
}

/// Open `wal-<base>` fresh (truncating any unverifiable leftover with the
/// same name), write its header, and make the header durable.
fn open_wal(dir: &Path, set: &StreamSet, base: u64) -> Result<BufWriter<File>, StoreError> {
    let path = dir.join(wal_name(base));
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)
        .map_err(StoreError::io("open WAL"))?;
    let mut wal = BufWriter::new(file);
    let header = WalHeader::describe(set.config(), set.streams(), base);
    wal.write_all(&header.encode())
        .map_err(StoreError::io("write WAL header"))?;
    wal.flush().map_err(StoreError::io("flush WAL header"))?;
    wal.get_ref()
        .sync_data()
        .map_err(StoreError::io("fsync WAL header"))?;
    checkpoint::sync_dir(dir)?;
    Ok(wal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> SwatConfig {
        SwatConfig::with_coefficients(32, 2).unwrap()
    }

    #[test]
    fn create_refuses_to_clobber_existing_state() {
        let dir = tmp("clobber");
        let store = DurableStore::create(&dir, config(), 1).unwrap();
        drop(store);
        let err = DurableStore::create(&dir, config(), 1).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn push_validates_rows_before_touching_disk_or_trees() {
        let dir = tmp("validate");
        let mut store = DurableStore::create(&dir, config(), 2).unwrap();
        assert!(matches!(
            store.push_row(&[1.0]),
            Err(StoreError::BadRow { got: 1, want: 2 })
        ));
        assert!(matches!(
            store.push_row(&[1.0, f64::INFINITY]),
            Err(StoreError::BadValue { stream: 1 })
        ));
        assert_eq!(store.arrivals(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_generations_and_prunes_old_ones() {
        let dir = tmp("rotate");
        let mut store = DurableStore::create(&dir, config(), 1).unwrap();
        for round in 0..4u64 {
            for i in 0..10 {
                store.push_row(&[(round * 10 + i) as f64]).unwrap();
            }
            store.checkpoint().unwrap();
        }
        let mut ckpts = 0;
        let mut wals = 0;
        for entry in fs::read_dir(&dir).unwrap() {
            match checkpoint::parse_name(&entry.unwrap().file_name().to_string_lossy()) {
                Some((FileKind::Checkpoint, _)) => ckpts += 1,
                Some((FileKind::Wal, _)) => wals += 1,
                None => {}
            }
        }
        assert_eq!(ckpts, KEPT_GENERATIONS);
        // The sealed WAL of the older kept checkpoint plus the live one.
        assert_eq!(wals, KEPT_GENERATIONS);
        assert_eq!(store.arrivals(), 40);
        let _ = fs::remove_dir_all(&dir);
    }
}
