//! The durable store: a tiered (LSM-style) hierarchy in which durability
//! never stalls ingest.
//!
//! A store directory holds immutable segments, the manifest naming them,
//! and the WAL generations extending the newest commit point:
//!
//! ```text
//! seg-00000000000000000000-00000000000000004096.seg   rows 0..4096 + snapshot@4096
//! seg-00000000000000004096-00000000000000008192.seg   rows 4096..8192 + snapshot@8192
//! manifest-00000000000000000003.man                   the commit point
//! wal-00000000000000008192.wal                        arrivals 8192.. (the live log)
//! ```
//!
//! [`DurableStore::push_row`] appends a checksummed record to the live
//! WAL (buffered) and applies the row to the in-memory trees; every
//! `freeze_rows` arrivals the active generation is *frozen* and handed to
//! a background flush thread, which serializes it into an immutable,
//! CRC-framed, bloom-guarded segment, commits a new manifest (fsync →
//! atomic rename → directory fsync), and only then prunes the WAL prefix
//! the segment now covers. No caller ever blocks on that fsync.
//!
//! ## Degradation, not death
//!
//! Disk faults on the background path (ENOSPC, EIO, torn writes) park
//! the frozen generation; the flusher retries with bounded backoff while
//! ingest continues on the WAL, and [`DurableStore::status`] reports
//! [`StoreHealth::Degraded`]. Faults on the foreground WAL path mark the
//! live generation broken: ingest still continues in memory, acks via
//! [`DurableStore::sync`] fail until either the WAL rolls to a healthy
//! generation or the segment tier catches up past the damage. A fault
//! mid-compaction aborts cleanly, leaving the input segments intact.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use swat_tree::{StreamSet, SwatConfig};

use crate::checkpoint::wal_name;
use crate::compaction;
use crate::error::StoreError;
use crate::fault::IoFaults;
use crate::io;
use crate::manifest::{self, Manifest, SegmentEntry, StoreFile};
use crate::segment::{self, segment_name, SegmentData};
use crate::wal::{self, WalHeader};

/// Flush the buffered WAL to the kernel once this many bytes accumulate
/// (an `fsync` still only happens in [`DurableStore::sync`]).
const WAL_FLUSH_BYTES: usize = 64 * 1024;

/// Whether `dir` holds store files (a segment, manifest, WAL generation,
/// or legacy checkpoint). Unrelated files — e.g. the [`crate::meta`]
/// image that shares the directory — do not count, so "recover or
/// create?" decisions stay correct when other state lives alongside the
/// trees.
pub fn holds_store(dir: &Path) -> bool {
    let Ok(entries) = fs::read_dir(dir) else {
        return false;
    };
    entries
        .flatten()
        .any(|e| manifest::classify(&e.file_name().to_string_lossy()).is_some())
}

/// Tuning and fault-injection knobs for a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Arrivals per frozen generation; `0` disables automatic freezing
    /// (generations then freeze only on [`DurableStore::checkpoint`]).
    pub freeze_rows: u64,
    /// Segments merged per compaction; compaction triggers once the
    /// manifest holds at least `2 * compact_fanin` segments.
    pub compact_fanin: usize,
    /// Rows a merged segment may not exceed, bounding compaction memory
    /// and keeping old giants from re-merging forever.
    pub max_segment_rows: u64,
    /// Backoff between retries of a parked (failed) flush.
    pub retry_backoff: Duration,
    /// Fault domain of the foreground WAL path (production: no faults).
    pub wal_faults: Arc<IoFaults>,
    /// Fault domain of the background flush/compaction path.
    pub flush_faults: Arc<IoFaults>,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            freeze_rows: 4096,
            compact_fanin: 4,
            max_segment_rows: 1 << 18,
            retry_backoff: Duration::from_millis(25),
            wal_faults: IoFaults::none(),
            flush_faults: IoFaults::none(),
        }
    }
}

/// Whether durability is keeping up with ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// No parked generations, live WAL intact.
    Healthy,
    /// A disk fault is outstanding; ingest continues, acks may lag.
    Degraded {
        /// Frozen generations waiting to be flushed.
        parked: usize,
        /// The most recent underlying failure, rendered.
        last_error: String,
    },
}

/// A point-in-time snapshot of the tiered store's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStatus {
    /// Arrivals ingested per stream (the in-memory clock).
    pub arrivals: u64,
    /// Arrivals durably captured by segments (the manifest clock).
    pub covered_t: u64,
    /// Live segments in the manifest.
    pub segments: usize,
    /// Successful background flushes so far.
    pub flushes: u64,
    /// Successful compactions so far.
    pub compactions: u64,
    /// Degradation state.
    pub health: StoreHealth,
}

/// State shared between the foreground store and the flush thread.
#[derive(Debug)]
struct Shared {
    manifest: Manifest,
    flush_error: Option<String>,
    parked: usize,
    flushes: u64,
    compactions: u64,
}

type SharedView = Arc<Mutex<Shared>>;

/// Work items for the flush thread.
enum Job {
    /// Serialize the frozen generation `[start_t, start_t + rows)`.
    Flush { start_t: u64, rows: Vec<f64> },
    /// Reply once every pending flush has been attempted: `Ok` when the
    /// segment tier is fully caught up, `Err(last_error)` otherwise.
    Barrier(SyncSender<Result<(), String>>),
    /// Exit without draining (process-shutdown semantics; acked rows are
    /// safe in the WAL).
    Stop,
}

/// A crash-consistent [`StreamSet`] with tiered durability.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    set: StreamSet,
    opts: StoreOptions,
    wal: WalWriter,
    wal_base: u64,
    /// Sealed, not-yet-fsynced WAL generation handles; [`Self::sync`]
    /// drains them oldest-first so the ack order matches arrival order.
    sealed: Vec<File>,
    /// Highest arrival clock guarded by a *broken* generation that was
    /// rolled away: rows below it may exist nowhere durable but the
    /// segment tier, so [`Self::sync`] must not ack until
    /// `covered_t` reaches it.
    wal_hole: Option<u64>,
    /// Rows `[tail_base, arrivals)`, flattened — the active + frozen
    /// generations that no committed segment carries yet. Serves
    /// [`Self::history`] over the uncovered span and is the source of
    /// frozen-generation row copies.
    tail: Vec<f64>,
    tail_base: u64,
    rows_since_freeze: u64,
    shared: SharedView,
    jobs: Option<Sender<Job>>,
    flusher: Option<JoinHandle<()>>,
}

impl DurableStore {
    /// Create a fresh store in `dir` (created if missing) with default
    /// [`StoreOptions`]. Fails if the directory already holds store
    /// files — recover those with [`crate::recovery::RecoveryManager`]
    /// instead of silently clobbering them.
    pub fn create(
        dir: impl Into<PathBuf>,
        config: SwatConfig,
        streams: usize,
    ) -> Result<DurableStore, StoreError> {
        Self::create_with(dir, config, streams, StoreOptions::default())
    }

    /// [`Self::create`] with explicit options.
    pub fn create_with(
        dir: impl Into<PathBuf>,
        config: SwatConfig,
        streams: usize,
        opts: StoreOptions,
    ) -> Result<DurableStore, StoreError> {
        let dir = dir.into();
        if streams == 0 {
            return Err(StoreError::BadRow { got: 0, want: 1 });
        }
        fs::create_dir_all(&dir).map_err(StoreError::io("create store directory"))?;
        for entry in fs::read_dir(&dir).map_err(StoreError::io("list store directory"))? {
            let entry = entry.map_err(StoreError::io("list store directory"))?;
            if manifest::classify(&entry.file_name().to_string_lossy()).is_some() {
                return Err(StoreError::Io {
                    context: "create store in a directory that already holds one",
                    source: std::io::Error::from(std::io::ErrorKind::AlreadyExists),
                });
            }
        }
        let set = StreamSet::new(config, streams);
        let initial = Manifest::default();
        manifest::commit(&opts.wal_faults, &dir, &initial)?;
        Self::resume(dir, set, initial, opts)
    }

    /// Wrap an already-reconstructed `set` (freshly created, or rebuilt
    /// by recovery) whose arrival clock equals `manifest.covered_t`, open
    /// its live WAL generation, and start the flush thread.
    pub(crate) fn resume(
        dir: PathBuf,
        set: StreamSet,
        manifest: Manifest,
        opts: StoreOptions,
    ) -> Result<DurableStore, StoreError> {
        let base = set.tree(0).arrivals();
        debug_assert_eq!(manifest.covered_t, base);
        let wal = open_wal(&dir, &set, base, &opts.wal_faults)?;
        // The flusher replays frozen rows into its own shadow set so
        // segment snapshots are produced without ever borrowing (or
        // blocking) the foreground trees; ingest determinism makes the
        // shadow bit-identical at every generation boundary.
        let shadow =
            StreamSet::restore(&set.snapshot()).map_err(|source| StoreError::Snapshot {
                file: "<live snapshot>".to_owned(),
                source,
            })?;
        let shared: SharedView = Arc::new(Mutex::new(Shared {
            manifest,
            flush_error: None,
            parked: 0,
            flushes: 0,
            compactions: 0,
        }));
        let (tx, rx) = mpsc::channel();
        let flusher = Flusher {
            dir: dir.clone(),
            shadow,
            faults: opts.flush_faults.clone(),
            shared: shared.clone(),
            parked: VecDeque::new(),
            fanin: opts.compact_fanin,
            max_rows: opts.max_segment_rows,
            backoff: opts.retry_backoff,
        };
        let handle = std::thread::Builder::new()
            .name("swat-store-flush".to_owned())
            .spawn(move || flusher.run(rx))
            .map_err(StoreError::io("spawn flush thread"))?;
        Ok(DurableStore {
            dir,
            set,
            opts,
            wal,
            wal_base: base,
            sealed: Vec::new(),
            wal_hole: None,
            tail: Vec::new(),
            tail_base: base,
            rows_since_freeze: 0,
            shared,
            jobs: Some(tx),
            flusher: Some(handle),
        })
    }

    /// Ingest one synchronized row: a checksummed WAL record is buffered
    /// before the in-memory trees see the values. Never blocks on disk —
    /// call [`sync`](Self::sync) for the durability acknowledgment. The
    /// only errors are row validation; I/O trouble surfaces at `sync`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), StoreError> {
        if row.len() != self.set.streams() {
            return Err(StoreError::BadRow {
                got: row.len(),
                want: self.set.streams(),
            });
        }
        if let Some(stream) = row.iter().position(|v| !v.is_finite()) {
            return Err(StoreError::BadValue { stream });
        }
        let mut record = Vec::with_capacity(wal::record_len(row.len()));
        wal::encode_record(&mut record, row);
        self.wal.append(&record);
        self.set.push_row(row);
        self.tail.extend_from_slice(row);
        self.rows_since_freeze += 1;
        if self.opts.freeze_rows > 0 && self.rows_since_freeze >= self.opts.freeze_rows {
            self.freeze();
        }
        Ok(())
    }

    /// Freeze the active generation: hand its rows to the background
    /// flusher and roll the WAL to a fresh generation. Does not wait for
    /// the flush and does not `fsync` anything. No-op when the active
    /// generation is empty.
    pub fn freeze(&mut self) {
        let end = self.set.tree(0).arrivals();
        let start = self.wal_base;
        if end == start {
            return;
        }
        // Land buffered records with the kernel so the sealed handle's
        // later fsync covers them; a failure is already recorded in the
        // writer and the rows still reach durability via the segment.
        let _ = self.wal.flush();
        match open_wal(&self.dir, &self.set, end, &self.opts.wal_faults) {
            Ok(next) => {
                let old = std::mem::replace(&mut self.wal, next);
                if old.broken.is_none() {
                    self.sealed.push(old.file);
                } else {
                    // The broken generation's rows now live only in the
                    // frozen copy headed for the segment tier; until a
                    // committed segment covers them, sync() must not ack.
                    self.wal_hole = Some(end);
                }
            }
            Err(_) => {
                // Could not open the next generation: keep appending to
                // the current one. Recovery replays a generation from any
                // base at or before its clock, so a long generation
                // spanning several freezes is merely untidy.
            }
        }
        let streams = self.set.streams();
        let skip = ((start - self.tail_base) as usize) * streams;
        let rows = self.tail[skip..].to_vec();
        debug_assert_eq!(rows.len(), ((end - start) as usize) * streams);
        if let Some(jobs) = &self.jobs {
            let _ = jobs.send(Job::Flush {
                start_t: start,
                rows,
            });
        }
        self.wal_base = end;
        self.rows_since_freeze = 0;
        self.trim_tail();
    }

    /// Drop tail rows the segment tier has durably covered.
    fn trim_tail(&mut self) {
        // invariant: the mutex is only held for short field copies; a
        // poisoned lock means the flush thread panicked, which no
        // adversarial input can cause.
        let covered = self
            .shared
            .lock()
            .expect("flush thread panicked")
            .manifest
            .covered_t;
        if covered > self.tail_base {
            let cut = ((covered - self.tail_base) as usize) * self.set.streams();
            self.tail.drain(..cut.min(self.tail.len()));
            self.tail_base = covered;
        }
    }

    /// The durability acknowledgment: when this returns `Ok`, every row
    /// pushed so far survives a crash. Flushes and `fsync`s the live and
    /// sealed WAL generations; if the WAL path is degraded, the call
    /// still succeeds once the segment tier has durably covered every
    /// arrival.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let covered = self
            .shared
            .lock()
            .expect("flush thread panicked")
            .manifest
            .covered_t;
        match self.sync_wal() {
            Ok(()) => {
                // A healthy WAL chain is not enough if a broken
                // generation was rolled away: those rows are durable only
                // once a committed segment covers their clock.
                match self.wal_hole {
                    Some(hole) if covered < hole => {
                        let parked = self.shared.lock().expect("flush thread panicked").parked;
                        Err(StoreError::Degraded {
                            parked,
                            message: format!(
                                "WAL generation below t={hole} was lost to a write fault; \
                                 rows await the segment tier (covered t={covered})"
                            ),
                        })
                    }
                    _ => {
                        self.wal_hole = None;
                        Ok(())
                    }
                }
            }
            Err(e) => {
                if covered >= self.set.tree(0).arrivals() {
                    // Everything acked is in fsynced segments; the broken
                    // WAL generation no longer guards any data.
                    self.sealed.clear();
                    self.wal_hole = None;
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }

    fn sync_wal(&mut self) -> Result<(), StoreError> {
        while let Some(file) = self.sealed.first() {
            io::sync_file(&self.opts.wal_faults, file, "fsync sealed WAL")?;
            self.sealed.remove(0);
        }
        self.wal.sync()?;
        io::sync_dir(&self.opts.wal_faults, &self.dir, "fsync store directory")
    }

    /// Make everything durable *in segments*: freeze the active
    /// generation, wait for the flush tier to drain, and `fsync` the
    /// WAL. Returns [`StoreError::Degraded`] when parked generations
    /// could not be flushed (acked data is still safe — in the WAL).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.freeze();
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if let Some(jobs) = &self.jobs {
            let _ = jobs.send(Job::Barrier(reply_tx));
        }
        match reply_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(message)) => {
                let parked = self.shared.lock().expect("flush thread panicked").parked;
                return Err(StoreError::Degraded { parked, message });
            }
            Err(_) => {
                return Err(StoreError::Degraded {
                    parked: 0,
                    message: "flush thread unavailable".to_owned(),
                })
            }
        }
        self.trim_tail();
        self.sync()
    }

    /// Historical values of `stream` for arrivals `[from, min(to, now))`,
    /// served from the segment tier (bloom-guarded: a segment whose
    /// filter excludes the stream is answered as zeros without reading
    /// it) plus the in-memory uncovered tail.
    pub fn history(&self, stream: usize, from: u64, to: u64) -> Result<Vec<f64>, StoreError> {
        let streams = self.set.streams();
        if stream >= streams {
            return Err(StoreError::BadRow {
                got: stream,
                want: streams,
            });
        }
        let to = to.min(self.set.tree(0).arrivals());
        if from >= to {
            return Ok(Vec::new());
        }
        let m = {
            self.shared
                .lock()
                .expect("flush thread panicked")
                .manifest
                .clone()
        };
        let floor = m.entries.first().map_or(self.tail_base, |e| e.start_t);
        if from < floor {
            return Err(StoreError::NoHistory { t: from });
        }
        let mut out = vec![0.0f64; (to - from) as usize];
        for e in &m.entries {
            let lo = e.start_t.max(from);
            let hi = e.end_t.min(to);
            if lo >= hi {
                continue;
            }
            let bytes = fs::read(self.dir.join(&e.name)).map_err(StoreError::io("read segment"))?;
            let seg = SegmentData::parse(&e.name, &bytes)?;
            if !seg.bloom().may_contain(stream) {
                continue; // provably all-zero: already the answer
            }
            let rows = seg.rows();
            for t in lo..hi {
                let idx = ((t - e.start_t) as usize) * streams + stream;
                if idx >= rows.values.len() {
                    return Err(StoreError::NoHistory { t });
                }
                out[(t - from) as usize] = rows.values[idx];
            }
        }
        for t in self.tail_base.max(from)..to {
            let idx = ((t - self.tail_base) as usize) * streams + stream;
            out[(t - from) as usize] = self.tail[idx];
        }
        Ok(out)
    }

    /// A point-in-time view of the tier shape and degradation state.
    pub fn status(&self) -> TierStatus {
        let s = self.shared.lock().expect("flush thread panicked");
        let health = if s.parked > 0 || self.wal.broken.is_some() {
            StoreHealth::Degraded {
                parked: s.parked,
                last_error: s
                    .flush_error
                    .clone()
                    .or_else(|| self.wal.broken.clone())
                    .unwrap_or_default(),
            }
        } else {
            StoreHealth::Healthy
        };
        TierStatus {
            arrivals: self.set.tree(0).arrivals(),
            covered_t: s.manifest.covered_t,
            segments: s.manifest.entries.len(),
            flushes: s.flushes,
            compactions: s.compactions,
            health: health.clone(),
        }
    }

    /// Shorthand for [`Self::status`]`.health`.
    pub fn health(&self) -> StoreHealth {
        self.status().health
    }

    /// The summarized streams.
    pub fn set(&self) -> &StreamSet {
        &self.set
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arrivals ingested per stream (the durable clock).
    pub fn arrivals(&self) -> u64 {
        self.set.tree(0).arrivals()
    }

    /// Rows in the active (not yet frozen) generation.
    pub fn rows_since_freeze(&self) -> u64 {
        self.rows_since_freeze
    }

    /// The answers-identity digest of the underlying [`StreamSet`] — the
    /// witness that recovery was bit-identical.
    pub fn answers_digest(&self) -> u64 {
        self.set.answers_digest()
    }

    /// Simulate a process kill: unflushed WAL buffer lost, both fault
    /// domains dead (any in-flight background write fails as at a power
    /// cut), flush thread reaped. Only the files remain — exactly what
    /// [`crate::recovery::RecoveryManager`] is handed after a real crash.
    pub fn crash(mut self) {
        self.opts.wal_faults.kill();
        self.opts.flush_faults.kill();
        self.wal.discard();
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(jobs) = self.jobs.take() {
            let _ = jobs.send(Job::Stop);
        }
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DurableStore {
    fn drop(&mut self) {
        // Graceful-shutdown parity with the old BufWriter store: buffered
        // records reach the kernel (no fsync); parked flushes are
        // abandoned — their rows are already in the WAL.
        let _ = self.wal.flush();
        self.shutdown();
    }
}

/// The buffered, fault-adjudicated live WAL generation.
#[derive(Debug)]
struct WalWriter {
    file: File,
    buf: Vec<u8>,
    faults: Arc<IoFaults>,
    /// Set on the first write/fsync failure: the generation may hold a
    /// torn record, so it stops accepting appends and [`DurableStore`]
    /// routes durability through the segment tier instead.
    broken: Option<String>,
}

impl WalWriter {
    fn append(&mut self, bytes: &[u8]) {
        if self.broken.is_some() {
            return;
        }
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= WAL_FLUSH_BYTES {
            let _ = self.flush();
        }
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        if let Some(msg) = &self.broken {
            return Err(degraded_io(msg));
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let res = io::write_all(
            &self.faults,
            &mut self.file,
            &self.buf,
            "append WAL records",
        );
        self.buf.clear();
        if let Err(e) = &res {
            self.broken = Some(e.to_string());
        }
        res
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.flush()?;
        io::sync_file(&self.faults, &self.file, "fsync WAL").inspect_err(|e| {
            // A failed fsync may have dropped dirty pages; nothing in
            // this generation can be trusted as durable anymore.
            self.broken = Some(e.to_string());
        })
    }

    fn discard(&mut self) {
        self.buf.clear();
    }
}

fn degraded_io(msg: &str) -> StoreError {
    StoreError::Io {
        context: "WAL generation degraded",
        source: std::io::Error::other(msg.to_owned()),
    }
}

/// Open `wal-<base>` fresh (truncating any unverifiable leftover with the
/// same name) and buffer its header. Nothing is fsynced here — the
/// header becomes durable with the first [`DurableStore::sync`].
fn open_wal(
    dir: &Path,
    set: &StreamSet,
    base: u64,
    faults: &Arc<IoFaults>,
) -> Result<WalWriter, StoreError> {
    let path = dir.join(wal_name(base));
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)
        .map_err(StoreError::io("open WAL"))?;
    let mut writer = WalWriter {
        file,
        buf: Vec::new(),
        faults: faults.clone(),
        broken: None,
    };
    writer.append(&WalHeader::describe(set.config(), set.streams(), base).encode());
    Ok(writer)
}

/// The background flush/compaction worker.
struct Flusher {
    dir: PathBuf,
    shadow: StreamSet,
    faults: Arc<IoFaults>,
    shared: SharedView,
    parked: VecDeque<(u64, Vec<f64>)>,
    fanin: usize,
    max_rows: u64,
    backoff: Duration,
}

impl Flusher {
    fn run(mut self, rx: Receiver<Job>) {
        loop {
            let msg = if self.parked.is_empty() {
                match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                }
            } else {
                match rx.recv_timeout(self.backoff) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            match msg {
                Some(Job::Flush { start_t, rows }) => {
                    self.parked.push_back((start_t, rows));
                    self.drain();
                }
                Some(Job::Barrier(reply)) => {
                    self.drain();
                    let result = if self.parked.is_empty() {
                        Ok(())
                    } else {
                        let s = self.shared.lock().expect("store dropped mid-lock");
                        Err(s.flush_error.clone().unwrap_or_default())
                    };
                    let _ = reply.send(result);
                }
                Some(Job::Stop) => break,
                None => self.drain(),
            }
        }
    }

    /// Flush parked generations oldest-first; stop at the first failure
    /// (order is part of the format: segments must chain).
    fn drain(&mut self) {
        while let Some((start_t, rows)) = self.parked.pop_front() {
            match self.flush_one(start_t, &rows) {
                Ok(()) => {}
                Err(e) => {
                    self.parked.push_front((start_t, rows));
                    let mut s = self.shared.lock().expect("store dropped mid-lock");
                    s.flush_error = Some(e.to_string());
                    s.parked = self.parked.len();
                    return;
                }
            }
        }
        let mut s = self.shared.lock().expect("store dropped mid-lock");
        s.parked = 0;
        s.flush_error = None;
    }

    fn flush_one(&mut self, start_t: u64, rows: &[f64]) -> Result<(), StoreError> {
        let streams = self.shadow.streams();
        let end_t = start_t + (rows.len() / streams) as u64;
        // invariant: jobs arrive in freeze order, so the shadow clock is
        // always within [start_t, end_t]; a retry whose earlier attempt
        // already replayed must not replay twice.
        let at = self.shadow.tree(0).arrivals();
        if at < end_t {
            let skip = ((at - start_t) as usize) * streams;
            for row in rows[skip..].chunks_exact(streams) {
                self.shadow.push_row(row);
            }
        }
        let name = segment_name(start_t, end_t);
        let bytes = segment::encode(start_t, rows, &self.shadow);
        io::write_atomic(&self.faults, &self.dir, &name, &bytes, "write segment")?;
        let mut m = {
            self.shared
                .lock()
                .expect("store dropped mid-lock")
                .manifest
                .clone()
        };
        m.seq += 1;
        m.covered_t = end_t;
        m.entries.push(SegmentEntry {
            name,
            start_t,
            end_t,
        });
        manifest::commit(&self.faults, &self.dir, &m)?;
        {
            let mut s = self.shared.lock().expect("store dropped mid-lock");
            s.manifest = m.clone();
            s.flushes += 1;
        }
        self.prune_wals(m.covered_t);
        self.maybe_compact();
        Ok(())
    }

    /// Remove WAL generations whose entire span is durably covered by
    /// segments: generation `b_i` is unreachable once the next base
    /// `b_(i+1) <= covered_t`. The newest generation never qualifies.
    fn prune_wals(&self, covered_t: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut bases: Vec<u64> = entries
            .flatten()
            .filter_map(
                |e| match manifest::classify(&e.file_name().to_string_lossy()) {
                    Some(StoreFile::Wal(b)) => Some(b),
                    _ => None,
                },
            )
            .collect();
        bases.sort_unstable();
        for pair in bases.windows(2) {
            if pair[1] <= covered_t {
                let _ = fs::remove_file(self.dir.join(wal_name(pair[0])));
            }
        }
    }

    /// Run compactions until the policy is satisfied. A failure aborts
    /// cleanly — inputs are untouched — and is recorded as degradation;
    /// it retries after the next successful flush.
    fn maybe_compact(&mut self) {
        loop {
            let m = {
                self.shared
                    .lock()
                    .expect("store dropped mid-lock")
                    .manifest
                    .clone()
            };
            match compaction::compact_once(&self.faults, &self.dir, &m, self.fanin, self.max_rows) {
                Ok(Some(next)) => {
                    let mut s = self.shared.lock().expect("store dropped mid-lock");
                    s.manifest = next;
                    s.compactions += 1;
                }
                Ok(None) => return,
                Err(e) => {
                    let mut s = self.shared.lock().expect("store dropped mid-lock");
                    s.flush_error = Some(e.to_string());
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{IoFaultKind, IoFaultPlan};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> SwatConfig {
        SwatConfig::with_coefficients(32, 2).unwrap()
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            freeze_rows: 8,
            compact_fanin: 2,
            retry_backoff: Duration::from_millis(1),
            ..StoreOptions::default()
        }
    }

    #[test]
    fn create_refuses_to_clobber_existing_state() {
        let dir = tmp("clobber");
        let store = DurableStore::create(&dir, config(), 1).unwrap();
        drop(store);
        let err = DurableStore::create(&dir, config(), 1).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn push_validates_rows_before_touching_disk_or_trees() {
        let dir = tmp("validate");
        let mut store = DurableStore::create(&dir, config(), 2).unwrap();
        assert!(matches!(
            store.push_row(&[1.0]),
            Err(StoreError::BadRow { got: 1, want: 2 })
        ));
        assert!(matches!(
            store.push_row(&[1.0, f64::INFINITY]),
            Err(StoreError::BadValue { stream: 1 })
        ));
        assert_eq!(store.arrivals(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn freezes_flush_to_segments_and_prune_the_wal() {
        let dir = tmp("tiers");
        let mut store = DurableStore::create_with(&dir, config(), 1, small_opts()).unwrap();
        for i in 0..40 {
            store.push_row(&[i as f64]).unwrap();
        }
        store.checkpoint().unwrap();
        let st = store.status();
        assert_eq!(st.arrivals, 40);
        assert_eq!(st.covered_t, 40);
        assert_eq!(st.health, StoreHealth::Healthy);
        assert!(st.flushes >= 5, "{st:?}");
        assert!(st.compactions >= 1, "{st:?}");

        let mut wals = 0;
        let mut segs = 0;
        let mut mans = 0;
        for entry in fs::read_dir(&dir).unwrap() {
            match manifest::classify(&entry.unwrap().file_name().to_string_lossy()) {
                Some(StoreFile::Wal(_)) => wals += 1,
                Some(StoreFile::Segment(..)) => segs += 1,
                Some(StoreFile::Manifest(_)) => mans += 1,
                _ => {}
            }
        }
        assert_eq!(wals, 1, "covered generations must be pruned");
        assert_eq!(st.segments, segs);
        assert!(mans <= manifest::KEPT_MANIFESTS);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_flush_fault_parks_then_catches_up() {
        let dir = tmp("parked");
        let opts = StoreOptions {
            flush_faults: IoFaults::with_plan(IoFaultPlan::at(0, IoFaultKind::Enospc)),
            ..small_opts()
        };
        let mut store = DurableStore::create_with(&dir, config(), 1, opts).unwrap();
        for i in 0..16 {
            store.push_row(&[i as f64]).unwrap();
        }
        // ENOSPC hits the first segment write; the retry (fault is
        // one-shot) succeeds, so the barrier drains everything.
        store.checkpoint().unwrap();
        assert_eq!(store.status().covered_t, 16);
        assert_eq!(store.health(), StoreHealth::Healthy);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_disk_degrades_but_ingest_continues() {
        let dir = tmp("degraded");
        let opts = small_opts();
        let flush_faults = opts.flush_faults.clone();
        let mut store = DurableStore::create_with(&dir, config(), 1, opts).unwrap();
        flush_faults.kill();
        for i in 0..40 {
            store.push_row(&[i as f64]).unwrap();
        }
        let err = store.checkpoint().unwrap_err();
        assert!(
            matches!(err, StoreError::Degraded { parked, .. } if parked > 0),
            "{err}"
        );
        assert!(matches!(store.health(), StoreHealth::Degraded { .. }));
        // Ingest and in-memory answers are unaffected.
        assert_eq!(store.arrivals(), 40);
        // Acked data is still durable: the WAL path is healthy.
        store.sync().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_serves_segments_bloom_guarded_and_the_live_tail() {
        let dir = tmp("history");
        let mut store = DurableStore::create_with(&dir, config(), 3, small_opts()).unwrap();
        // Stream 2 stays silent; stream 0 counts; stream 1 alternates.
        for i in 0..20 {
            store
                .push_row(&[i as f64, if i % 2 == 0 { 1.0 } else { -1.0 }, 0.0])
                .unwrap();
        }
        store.checkpoint().unwrap();
        for i in 20..23 {
            store.push_row(&[i as f64, 1.0, 0.0]).unwrap(); // live tail
        }
        let h = store.history(0, 5, 23).unwrap();
        let expect: Vec<f64> = (5..23).map(|i| i as f64).collect();
        assert_eq!(h, expect);
        let silent = store.history(2, 0, 23).unwrap();
        assert!(silent.iter().all(|&v| v == 0.0));
        assert!(store.history(5, 0, 1).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
