//! Fault-adjudicated filesystem primitives.
//!
//! Every byte the tiered store puts on disk goes through these wrappers,
//! which consult an [`IoFaults`] domain before touching the filesystem.
//! In production the domain is [`IoFaults::none`] and the wrappers are
//! plain syscalls plus one atomic increment; under test the same code
//! paths fail with `ENOSPC`, `EIO`, torn writes, or a simulated process
//! death at seeded steps — so the graceful-degradation logic is exercised
//! on exactly the code that ships.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::fault::{IoFaultKind, IoFaults, IoOp};

/// Linux `errno` for "no space left on device".
const ENOSPC: i32 = 28;
/// Linux `errno` for "input/output error".
const EIO: i32 = 5;

fn injected(kind: IoFaultKind) -> io::Error {
    match kind {
        IoFaultKind::Enospc => io::Error::from_raw_os_error(ENOSPC),
        IoFaultKind::Eio | IoFaultKind::Torn { .. } | IoFaultKind::Crash => {
            io::Error::from_raw_os_error(EIO)
        }
    }
}

/// Write all of `bytes` to `file`, or fail the way the fault domain
/// dictates. A torn write lands a prefix before failing — exactly the
/// state an interrupted kernel write leaves behind.
pub(crate) fn write_all(
    faults: &IoFaults,
    file: &mut File,
    bytes: &[u8],
    context: &'static str,
) -> Result<(), StoreError> {
    match faults.check(IoOp::Write) {
        None => file.write_all(bytes).map_err(StoreError::io(context)),
        Some(kind) => {
            let keep = match kind {
                IoFaultKind::Torn { keep_permille } => {
                    bytes.len() * usize::from(keep_permille.min(999)) / 1000
                }
                // A crash tears the in-flight write too.
                IoFaultKind::Crash => bytes.len() / 2,
                _ => 0,
            };
            if keep > 0 {
                let _ = file.write_all(&bytes[..keep]);
            }
            Err(StoreError::Io {
                context,
                source: injected(kind),
            })
        }
    }
}

/// `fsync` the file's data (and metadata), or fail as injected.
pub(crate) fn sync_file(
    faults: &IoFaults,
    file: &File,
    context: &'static str,
) -> Result<(), StoreError> {
    match faults.check(IoOp::Sync) {
        None => file.sync_all().map_err(StoreError::io(context)),
        Some(kind) => Err(StoreError::Io {
            context,
            source: injected(kind),
        }),
    }
}

/// Atomically rename `from` to `to`, or fail as injected.
pub(crate) fn rename(
    faults: &IoFaults,
    from: &Path,
    to: &Path,
    context: &'static str,
) -> Result<(), StoreError> {
    match faults.check(IoOp::Rename) {
        None => fs::rename(from, to).map_err(StoreError::io(context)),
        Some(kind) => Err(StoreError::Io {
            context,
            source: injected(kind),
        }),
    }
}

/// `fsync` the directory so renames and unlinks inside it are durable;
/// counts as a sync op in the fault domain. Where the operating system
/// refuses directory fsync, the rename is still atomic and we proceed.
pub(crate) fn sync_dir(
    faults: &IoFaults,
    dir: &Path,
    context: &'static str,
) -> Result<(), StoreError> {
    if let Some(kind) = faults.check(IoOp::Sync) {
        return Err(StoreError::Io {
            context,
            source: injected(kind),
        });
    }
    match File::open(dir) {
        Ok(d) => {
            let _ = d.sync_all();
            Ok(())
        }
        Err(source) => Err(StoreError::Io { context, source }),
    }
}

/// Write `bytes` under `dir/name` with full crash atomicity — temp file,
/// write, `fsync`, rename, directory `fsync` — every step adjudicated by
/// the fault domain. On any failure the temp file is removed, so an
/// aborted write leaves no debris under the real name.
pub(crate) fn write_atomic(
    faults: &IoFaults,
    dir: &Path,
    name: &str,
    bytes: &[u8],
    context: &'static str,
) -> Result<PathBuf, StoreError> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    let attempt = (|| {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(StoreError::io(context))?;
        write_all(faults, &mut tmp, bytes, context)?;
        sync_file(faults, &tmp, context)?;
        drop(tmp);
        rename(faults, &tmp_path, &final_path, context)?;
        sync_dir(faults, dir, context)
    })();
    match attempt {
        Ok(()) => Ok(final_path),
        Err(e) => {
            let _ = fs::remove_file(&tmp_path);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::IoFaultPlan;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-io-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_cleans_its_temp_on_failure() {
        let dir = tmp_dir("clean");
        // Step 0 is the temp-file data write.
        let faults = IoFaults::with_plan(IoFaultPlan::at(0, IoFaultKind::Enospc));
        let err = write_atomic(&faults, &dir, "x.seg", b"payload", "write segment").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert!(!dir.join("x.seg").exists());
        assert!(!dir.join("x.seg.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_a_prefix_only() {
        let dir = tmp_dir("torn");
        let faults =
            IoFaults::with_plan(IoFaultPlan::at(0, IoFaultKind::Torn { keep_permille: 500 }));
        let mut f = File::create(dir.join("wal")).unwrap();
        let err = write_all(&faults, &mut f, &[7u8; 100], "append WAL record").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        drop(f);
        assert_eq!(fs::read(dir.join("wal")).unwrap().len(), 50);
        let _ = fs::remove_dir_all(&dir);
    }
}
