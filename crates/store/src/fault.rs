//! Deterministic storage-fault injection.
//!
//! Recovery claims to survive torn writes, bit rot, and lost files; this
//! module is how that claim gets exercised. A [`FaultPlan`] is an
//! explicit list of byte-level mutations applied to a store directory —
//! the same faults a crashed disk or interrupted kernel write produces —
//! and [`FaultInjector`] derives such plans from a seed, so every failing
//! case in the property tests is replayable from its seed alone.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::StoreError;

/// One storage fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Invert one bit — media bit rot, a misdirected write.
    FlipBit {
        /// File name within the store directory.
        file: String,
        /// Byte offset of the corrupted bit.
        byte: u64,
        /// Bit index 0–7 within that byte.
        bit: u8,
    },
    /// Cut the file to `keep` bytes — a torn write at the crash point.
    Truncate {
        /// File name within the store directory.
        file: String,
        /// Bytes that survive.
        keep: u64,
    },
    /// Remove the file entirely — lost during an unsynced rename.
    Delete {
        /// File name within the store directory.
        file: String,
    },
}

/// An ordered batch of faults to apply to a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Apply every fault to `dir`. Faults against files that no longer
    /// exist (or offsets past the end) are no-ops: a plan describes what
    /// the adversary *attempts*, and a missing target is not a test
    /// failure.
    pub fn apply(&self, dir: &Path) -> Result<(), StoreError> {
        for fault in &self.faults {
            match fault {
                Fault::FlipBit { file, byte, bit } => {
                    let path = dir.join(file);
                    let Ok(mut f) = OpenOptions::new().read(true).write(true).open(&path) else {
                        continue;
                    };
                    let len = f
                        .metadata()
                        .map_err(StoreError::io("stat fault target"))?
                        .len();
                    if *byte >= len {
                        continue;
                    }
                    let mut b = [0u8];
                    f.seek(SeekFrom::Start(*byte))
                        .and_then(|_| f.read_exact(&mut b))
                        .map_err(StoreError::io("read fault target"))?;
                    b[0] ^= 1 << bit;
                    f.seek(SeekFrom::Start(*byte))
                        .and_then(|_| f.write_all(&b))
                        .map_err(StoreError::io("write fault target"))?;
                }
                Fault::Truncate { file, keep } => {
                    let path = dir.join(file);
                    let Ok(f) = OpenOptions::new().write(true).open(&path) else {
                        continue;
                    };
                    let len = f
                        .metadata()
                        .map_err(StoreError::io("stat fault target"))?
                        .len();
                    if *keep < len {
                        f.set_len(*keep)
                            .map_err(StoreError::io("truncate fault target"))?;
                    }
                }
                Fault::Delete { file } => {
                    let _ = fs::remove_file(dir.join(file));
                }
            }
        }
        Ok(())
    }
}

/// Seeded generator of [`FaultPlan`]s over the files actually present in
/// a store directory.
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// A generator whose whole output is a function of `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw a plan of up to `max_faults` faults aimed at the store files
    /// currently in `dir`. File choice, fault kind, and offsets are all
    /// taken from the seeded generator; directory listing order does not
    /// matter because targets are chosen from a sorted list.
    pub fn plan(&mut self, dir: &Path, max_faults: usize) -> Result<FaultPlan, StoreError> {
        let mut files: Vec<(String, u64)> = Vec::new();
        for entry in fs::read_dir(dir).map_err(StoreError::io("list store directory"))? {
            let entry = entry.map_err(StoreError::io("list store directory"))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if crate::checkpoint::parse_name(&name).is_some() {
                let len = entry
                    .metadata()
                    .map_err(StoreError::io("stat store file"))?
                    .len();
                files.push((name, len));
            }
        }
        files.sort();
        let mut plan = FaultPlan::default();
        if files.is_empty() || max_faults == 0 {
            return Ok(plan);
        }
        let n = self.rng.gen_range(1..=max_faults);
        for _ in 0..n {
            let (file, len) = files[self.rng.gen_range(0..files.len())].clone();
            let fault = match self.rng.gen_range(0..6u32) {
                // Bias toward bit flips: they are the subtlest fault.
                0..=2 => Fault::FlipBit {
                    file,
                    byte: self.rng.gen_range(0..len.max(1)),
                    bit: self.rng.gen_range(0..8u32) as u8,
                },
                3..=4 => Fault::Truncate {
                    file,
                    keep: self.rng.gen_range(0..len.max(1)),
                },
                _ => Fault::Delete { file },
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-fault-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn faults_mutate_exactly_as_described() {
        let dir = tmp("apply");
        fs::write(dir.join("wal-00000000000000000000.wal"), [0u8; 16]).unwrap();
        FaultPlan {
            faults: vec![
                Fault::FlipBit {
                    file: "wal-00000000000000000000.wal".into(),
                    byte: 3,
                    bit: 5,
                },
                Fault::Truncate {
                    file: "wal-00000000000000000000.wal".into(),
                    keep: 7,
                },
                Fault::Delete {
                    file: "missing.ckpt".into(),
                },
            ],
        }
        .apply(&dir)
        .unwrap();
        let bytes = fs::read(dir.join("wal-00000000000000000000.wal")).unwrap();
        assert_eq!(bytes.len(), 7);
        assert_eq!(bytes[3], 1 << 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let dir = tmp("seeded");
        fs::write(dir.join("ckpt-00000000000000000010.ckpt"), [1u8; 64]).unwrap();
        fs::write(dir.join("wal-00000000000000000010.wal"), [2u8; 128]).unwrap();
        let a = FaultInjector::new(0xF00D).plan(&dir, 5).unwrap();
        let b = FaultInjector::new(0xF00D).plan(&dir, 5).unwrap();
        let c = FaultInjector::new(0xBEEF).plan(&dir, 5).unwrap();
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        let _ = c; // different seed may or may not coincide; only a == b is contractual
        let _ = fs::remove_dir_all(&dir);
    }
}
