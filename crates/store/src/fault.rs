//! Deterministic storage-fault injection.
//!
//! Recovery claims to survive torn writes, bit rot, and lost files; this
//! module is how that claim gets exercised. Two fault families live here:
//!
//! * **Corruption after the crash** — a [`FaultPlan`] is an explicit list
//!   of byte-level mutations applied to a dead store directory (the same
//!   faults a crashed disk or interrupted kernel write produces), and
//!   [`FaultInjector`] derives such plans from a seed, so every failing
//!   case in the property tests is replayable from its seed alone.
//! * **Failures during operation** — an [`IoFaults`] handle sits between
//!   the store and the filesystem and can make any write, fsync, or
//!   rename fail at a seeded step with `ENOSPC`, `EIO`, a torn write
//!   (a prefix lands, then the error), or a simulated process crash
//!   (that op and every later one fails). The live store must degrade
//!   gracefully under these — park the flush, keep ingesting on the WAL —
//!   and the crash-point property tests kill the store at every step of a
//!   flush/compaction schedule this way.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::StoreError;

/// One storage fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Invert one bit — media bit rot, a misdirected write.
    FlipBit {
        /// File name within the store directory.
        file: String,
        /// Byte offset of the corrupted bit.
        byte: u64,
        /// Bit index 0–7 within that byte.
        bit: u8,
    },
    /// Cut the file to `keep` bytes — a torn write at the crash point.
    Truncate {
        /// File name within the store directory.
        file: String,
        /// Bytes that survive.
        keep: u64,
    },
    /// Remove the file entirely — lost during an unsynced rename.
    Delete {
        /// File name within the store directory.
        file: String,
    },
}

/// An ordered batch of faults to apply to a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Apply every fault to `dir`. Faults against files that no longer
    /// exist (or offsets past the end) are no-ops: a plan describes what
    /// the adversary *attempts*, and a missing target is not a test
    /// failure.
    pub fn apply(&self, dir: &Path) -> Result<(), StoreError> {
        for fault in &self.faults {
            match fault {
                Fault::FlipBit { file, byte, bit } => {
                    let path = dir.join(file);
                    let Ok(mut f) = OpenOptions::new().read(true).write(true).open(&path) else {
                        continue;
                    };
                    let len = f
                        .metadata()
                        .map_err(StoreError::io("stat fault target"))?
                        .len();
                    if *byte >= len {
                        continue;
                    }
                    let mut b = [0u8];
                    f.seek(SeekFrom::Start(*byte))
                        .and_then(|_| f.read_exact(&mut b))
                        .map_err(StoreError::io("read fault target"))?;
                    b[0] ^= 1 << bit;
                    f.seek(SeekFrom::Start(*byte))
                        .and_then(|_| f.write_all(&b))
                        .map_err(StoreError::io("write fault target"))?;
                }
                Fault::Truncate { file, keep } => {
                    let path = dir.join(file);
                    let Ok(f) = OpenOptions::new().write(true).open(&path) else {
                        continue;
                    };
                    let len = f
                        .metadata()
                        .map_err(StoreError::io("stat fault target"))?
                        .len();
                    if *keep < len {
                        f.set_len(*keep)
                            .map_err(StoreError::io("truncate fault target"))?;
                    }
                }
                Fault::Delete { file } => {
                    let _ = fs::remove_file(dir.join(file));
                }
            }
        }
        Ok(())
    }
}

/// Seeded generator of [`FaultPlan`]s over the files actually present in
/// a store directory.
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// A generator whose whole output is a function of `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw a plan of up to `max_faults` faults aimed at the store files
    /// currently in `dir`. File choice, fault kind, and offsets are all
    /// taken from the seeded generator; directory listing order does not
    /// matter because targets are chosen from a sorted list.
    pub fn plan(&mut self, dir: &Path, max_faults: usize) -> Result<FaultPlan, StoreError> {
        let mut files: Vec<(String, u64)> = Vec::new();
        for entry in fs::read_dir(dir).map_err(StoreError::io("list store directory"))? {
            let entry = entry.map_err(StoreError::io("list store directory"))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if crate::manifest::classify(&name).is_some() {
                let len = entry
                    .metadata()
                    .map_err(StoreError::io("stat store file"))?
                    .len();
                files.push((name, len));
            }
        }
        files.sort();
        let mut plan = FaultPlan::default();
        if files.is_empty() || max_faults == 0 {
            return Ok(plan);
        }
        let n = self.rng.gen_range(1..=max_faults);
        for _ in 0..n {
            let (file, len) = files[self.rng.gen_range(0..files.len())].clone();
            let fault = match self.rng.gen_range(0..6u32) {
                // Bias toward bit flips: they are the subtlest fault.
                0..=2 => Fault::FlipBit {
                    file,
                    byte: self.rng.gen_range(0..len.max(1)),
                    bit: self.rng.gen_range(0..8u32) as u8,
                },
                3..=4 => Fault::Truncate {
                    file,
                    keep: self.rng.gen_range(0..len.max(1)),
                },
                _ => Fault::Delete { file },
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }
}

/// What kind of filesystem operation is about to run (the unit the
/// step counter of [`IoFaults`] counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A data write (`write_all`).
    Write,
    /// An `fsync` (file or directory).
    Sync,
    /// An atomic rename.
    Rename,
}

/// How an injected operation-level fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The disk is full: the op fails with `ENOSPC`, nothing written.
    Enospc,
    /// A media error: the op fails with `EIO`, nothing written.
    Eio,
    /// A torn write: roughly `keep_permille`/1000 of the bytes land,
    /// then the op fails with `EIO`. Only meaningful for writes; on
    /// sync/rename it behaves like [`IoFaultKind::Eio`].
    Torn {
        /// Fraction of the buffer that survives, in permille.
        keep_permille: u16,
    },
    /// A simulated process kill at this step: the op fails (writes land
    /// a torn prefix first) and **every subsequent op fails too** — the
    /// process is dead, only the files remain.
    Crash,
}

/// One operation-level fault: at global step `step`, the op fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// Which op (0-based, in execution order within this fault domain).
    pub step: u64,
    /// How it fails.
    pub kind: IoFaultKind,
}

/// A seeded schedule of operation-level faults for one fault domain.
///
/// The store keeps two independent domains — the foreground WAL path and
/// the background flush/compaction path — each with its own step counter,
/// so a plan aimed at "flush step 7" is deterministic regardless of how
/// the two threads interleave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Faults, ascending by step.
    pub faults: Vec<IoFault>,
}

impl IoFaultPlan {
    /// A single fault at `step`.
    pub fn at(step: u64, kind: IoFaultKind) -> IoFaultPlan {
        IoFaultPlan {
            faults: vec![IoFault { step, kind }],
        }
    }

    /// Draw up to `max_faults` faults over the step range `0..horizon`
    /// from a seed. Crash faults are excluded — a crash schedule is a
    /// different experiment (use [`IoFaultPlan::at`] with
    /// [`IoFaultKind::Crash`] per crash point).
    pub fn seeded(seed: u64, horizon: u64, max_faults: usize) -> IoFaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        if horizon == 0 || max_faults == 0 {
            return IoFaultPlan { faults };
        }
        let n = rng.gen_range(1..=max_faults);
        for _ in 0..n {
            let kind = match rng.gen_range(0..3u32) {
                0 => IoFaultKind::Enospc,
                1 => IoFaultKind::Eio,
                _ => IoFaultKind::Torn {
                    keep_permille: rng.gen_range(0..1000u32) as u16,
                },
            };
            faults.push(IoFault {
                step: rng.gen_range(0..horizon),
                kind,
            });
        }
        faults.sort_by_key(|f| f.step);
        IoFaultPlan { faults }
    }
}

/// A shared handle adjudicating every store filesystem op in one fault
/// domain. [`IoFaults::none`] (the production configuration) never
/// injects and costs one relaxed atomic increment per op.
#[derive(Debug)]
pub struct IoFaults {
    step: AtomicU64,
    dead: AtomicBool,
    faults: Vec<IoFault>,
}

impl IoFaults {
    /// A domain that never injects faults.
    pub fn none() -> Arc<IoFaults> {
        Arc::new(IoFaults {
            step: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            faults: Vec::new(),
        })
    }

    /// A domain driven by `plan`.
    pub fn with_plan(plan: IoFaultPlan) -> Arc<IoFaults> {
        let mut faults = plan.faults;
        faults.sort_by_key(|f| f.step);
        Arc::new(IoFaults {
            step: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            faults,
        })
    }

    /// Ops adjudicated so far — run a workload against a fault-free
    /// domain first to learn the horizon of its schedule.
    pub fn steps(&self) -> u64 {
        self.step.load(Ordering::Relaxed)
    }

    /// Whether a [`IoFaultKind::Crash`] has fired (or [`IoFaults::kill`]
    /// was called): every op fails from here on.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Kill the domain directly — the process-death simulation hook for
    /// crash tests that do not target a specific step.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    /// Adjudicate the next op: `None` means proceed normally. The op
    /// kind is informational (steps count every op); `Crash` flips the
    /// domain dead.
    pub fn check(&self, _op: IoOp) -> Option<IoFaultKind> {
        let s = self.step.fetch_add(1, Ordering::Relaxed);
        if self.dead.load(Ordering::Relaxed) {
            return Some(IoFaultKind::Eio);
        }
        // Sorted by step, at most a handful of entries: linear scan.
        let hit = self.faults.iter().find(|f| f.step == s)?;
        if matches!(hit.kind, IoFaultKind::Crash) {
            self.dead.store(true, Ordering::Relaxed);
        }
        Some(hit.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-fault-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn faults_mutate_exactly_as_described() {
        let dir = tmp("apply");
        fs::write(dir.join("wal-00000000000000000000.wal"), [0u8; 16]).unwrap();
        FaultPlan {
            faults: vec![
                Fault::FlipBit {
                    file: "wal-00000000000000000000.wal".into(),
                    byte: 3,
                    bit: 5,
                },
                Fault::Truncate {
                    file: "wal-00000000000000000000.wal".into(),
                    keep: 7,
                },
                Fault::Delete {
                    file: "missing.ckpt".into(),
                },
            ],
        }
        .apply(&dir)
        .unwrap();
        let bytes = fs::read(dir.join("wal-00000000000000000000.wal")).unwrap();
        assert_eq!(bytes.len(), 7);
        assert_eq!(bytes[3], 1 << 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let dir = tmp("seeded");
        fs::write(dir.join("ckpt-00000000000000000010.ckpt"), [1u8; 64]).unwrap();
        fs::write(dir.join("wal-00000000000000000010.wal"), [2u8; 128]).unwrap();
        let a = FaultInjector::new(0xF00D).plan(&dir, 5).unwrap();
        let b = FaultInjector::new(0xF00D).plan(&dir, 5).unwrap();
        let c = FaultInjector::new(0xBEEF).plan(&dir, 5).unwrap();
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        let _ = c; // different seed may or may not coincide; only a == b is contractual
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_faults_fire_at_their_step_and_crash_goes_dead() {
        let f = IoFaults::with_plan(IoFaultPlan {
            faults: vec![
                IoFault {
                    step: 1,
                    kind: IoFaultKind::Enospc,
                },
                IoFault {
                    step: 3,
                    kind: IoFaultKind::Crash,
                },
            ],
        });
        assert_eq!(f.check(IoOp::Write), None);
        assert_eq!(f.check(IoOp::Write), Some(IoFaultKind::Enospc));
        assert_eq!(f.check(IoOp::Sync), None);
        assert!(!f.is_dead());
        assert_eq!(f.check(IoOp::Rename), Some(IoFaultKind::Crash));
        assert!(f.is_dead());
        // Dead: every later op fails regardless of the plan.
        assert_eq!(f.check(IoOp::Write), Some(IoFaultKind::Eio));
        assert_eq!(f.steps(), 5);
    }

    #[test]
    fn io_plans_are_deterministic_in_the_seed() {
        let a = IoFaultPlan::seeded(42, 100, 4);
        let b = IoFaultPlan::seeded(42, 100, 4);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        assert!(a.faults.windows(2).all(|w| w[0].step <= w[1].step));
        assert!(a
            .faults
            .iter()
            .all(|f| !matches!(f.kind, IoFaultKind::Crash)));
    }
}
