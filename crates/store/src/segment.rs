//! Immutable checkpoint segments — the sorted-run tier of the store.
//!
//! A segment captures one frozen generation of arrivals: the raw rows
//! `[start_t, end_t)` plus a full [`StreamSet`] snapshot *at* `end_t`,
//! so every segment is simultaneously a replayable log slice and a
//! recovery base. Segments are written once by the background flusher
//! (or by compaction, merging several into one) and never modified.
//!
//! ## On-disk layout
//!
//! ```text
//! header   "SSEG" version  start_t end_t streams  rows  bloom_len snap_len  crc32
//!            4B      1B      8B     8B     8B      4B      4B        4B       4B
//! rows     crc32  row[0] .. row[streams-1]      (rows records, WAL framing)
//! bloom    crc32  bits                          (bloom_len bytes of bits)
//! snap     crc32  StreamSet::snapshot()         (snap_len bytes)
//! ```
//!
//! Every section length is in the checksummed header, so a truncation is
//! detected before any section is interpreted. The row records reuse the
//! WAL's per-record CRC framing, which gives segments the same
//! verified-prefix semantics: a torn or flipped row ends the replayable
//! prefix without poisoning what came before. The bloom filter indexes
//! which streams carry *any nonzero value* in this segment — a negative
//! answer lets historical range queries skip the file entirely (the
//! stream was silent for the whole span), and a corrupt bloom section
//! only degrades to "always read", never to a wrong skip.

use swat_tree::codec::{crc32, CodecError, Cursor};
use swat_tree::StreamSet;

use crate::error::StoreError;
use crate::wal;

/// First bytes of every segment file.
pub const SEG_MAGIC: &[u8; 4] = b"SSEG";
/// Current segment format version.
pub const SEG_VERSION: u8 = 1;
/// Serialized header size in bytes.
pub const SEG_HEADER_LEN: usize = 4 + 1 + 8 * 3 + 4 * 3 + 4;

/// Name of the segment covering arrivals `[start_t, end_t)`. Zero-padded
/// so lexicographic order is chronological.
pub fn segment_name(start_t: u64, end_t: u64) -> String {
    format!("seg-{start_t:020}-{end_t:020}.seg")
}

/// Parse `(start_t, end_t)` back out of a [`segment_name`].
pub fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if rest.len() != 41 || rest.as_bytes()[20] != b'-' {
        return None;
    }
    let (start, end) = (&rest[..20], &rest[21..]);
    if !start.bytes().all(|b| b.is_ascii_digit()) || !end.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (s, e) = (start.parse().ok()?, end.parse().ok()?);
    if s > e {
        return None;
    }
    Some((s, e))
}

/// The fixed-size checksummed header at the start of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// First arrival index the row section carries.
    pub start_t: u64,
    /// Arrival clock of the embedded snapshot; `end_t - start_t == rows`.
    pub end_t: u64,
    /// Streams per row.
    pub streams: u64,
    /// Records in the row section.
    pub rows: u32,
    /// Bytes of bloom bits.
    pub bloom_len: u32,
    /// Bytes of snapshot payload.
    pub snap_len: u32,
}

impl SegmentHeader {
    /// Serialize to the fixed [`SEG_HEADER_LEN`]-byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEG_HEADER_LEN);
        out.extend_from_slice(SEG_MAGIC);
        out.push(SEG_VERSION);
        for v in [self.start_t, self.end_t, self.streams] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in [self.rows, self.bloom_len, self.snap_len] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), SEG_HEADER_LEN);
        out
    }

    /// Parse and verify a header from the start of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<SegmentHeader, CodecError> {
        let mut c = Cursor::new(bytes);
        let magic = c.take(4)?;
        if magic != SEG_MAGIC {
            return Err(CodecError::Invalid {
                what: "segment magic",
                offset: 0,
            });
        }
        let version = c.u8()?;
        if version != SEG_VERSION {
            return Err(CodecError::Invalid {
                what: "segment version",
                offset: 4,
            });
        }
        let start_t = c.u64()?;
        let end_t = c.u64()?;
        let streams = c.u64()?;
        let rows = c.u32()?;
        let bloom_len = c.u32()?;
        let snap_len = c.u32()?;
        let crc_at = c.offset();
        let stored = c.u32()?;
        let computed = crc32(&bytes[..crc_at]);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch {
                offset: crc_at,
                stored,
                computed,
            });
        }
        let h = SegmentHeader {
            start_t,
            end_t,
            streams,
            rows,
            bloom_len,
            snap_len,
        };
        // The header is internally consistent only if the spans agree;
        // a checksummed-but-nonsensical header is a file we never wrote.
        if h.streams == 0
            || h.streams > (u32::MAX / 8) as u64
            || h.end_t.checked_sub(h.start_t) != Some(u64::from(h.rows))
        {
            return Err(CodecError::Invalid {
                what: "segment span",
                offset: 5,
            });
        }
        Ok(h)
    }
}

/// A small bloom filter over stream indices that carry any nonzero value
/// within one segment.
///
/// False positives cost one wasted read; false negatives are impossible
/// by construction, so a "not present" answer is a proof the stream was
/// all-zero for the segment's whole span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamBloom {
    bits: Vec<u8>,
}

/// Hash functions per key; fixed so files stay self-describing.
const BLOOM_HASHES: u32 = 3;

impl StreamBloom {
    /// An empty filter sized for `streams` keys at ~10 bits/key (~1%
    /// false positives), minimum 8 bytes.
    pub fn sized_for(streams: usize) -> StreamBloom {
        let bytes = ((streams * 10).div_ceil(8)).max(8);
        StreamBloom {
            bits: vec![0; bytes],
        }
    }

    /// Wrap raw bits read back from a segment.
    pub fn from_bits(bits: Vec<u8>) -> StreamBloom {
        StreamBloom { bits }
    }

    /// The raw bits for serialization.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    fn probes(&self, stream: u64) -> impl Iterator<Item = usize> + '_ {
        let nbits = (self.bits.len() * 8) as u64;
        (0..BLOOM_HASHES).map(move |i| {
            // splitmix64 over (stream, probe index): cheap, well-mixed,
            // and stable across platforms.
            let mut z = stream
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(i).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z ^ (z >> 31)) % nbits) as usize
        })
    }

    /// Record that `stream` carries a nonzero value.
    pub fn insert(&mut self, stream: usize) {
        let idx: Vec<usize> = self.probes(stream as u64).collect();
        for i in idx {
            self.bits[i / 8] |= 1 << (i % 8);
        }
    }

    /// Whether `stream` may carry a nonzero value (false ⇒ certainly
    /// all-zero in this segment).
    pub fn may_contain(&self, stream: usize) -> bool {
        if self.bits.is_empty() {
            return true; // degraded filter: never a wrong skip
        }
        self.probes(stream as u64)
            .all(|i| self.bits[i / 8] & (1 << (i % 8)) != 0)
    }
}

/// Serialize a segment: `rows` (flattened with stride `set.streams()`)
/// covering `[start_t, start_t + rows)`, plus a snapshot of `set`, whose
/// arrival clock must equal `end_t`.
pub fn encode(start_t: u64, rows: &[f64], set: &StreamSet) -> Vec<u8> {
    let streams = set.streams();
    debug_assert_eq!(rows.len() % streams, 0);
    let n_rows = rows.len() / streams;

    let mut bloom = StreamBloom::sized_for(streams);
    for row in rows.chunks_exact(streams) {
        for (s, &v) in row.iter().enumerate() {
            if v != 0.0 {
                bloom.insert(s);
            }
        }
    }

    let mut row_bytes = Vec::with_capacity(n_rows * wal::record_len(streams));
    for row in rows.chunks_exact(streams) {
        wal::encode_record(&mut row_bytes, row);
    }
    let snap = set.snapshot();

    let header = SegmentHeader {
        start_t,
        end_t: start_t + n_rows as u64,
        streams: streams as u64,
        rows: n_rows as u32,
        bloom_len: bloom.bits().len() as u32,
        snap_len: snap.len() as u32,
    };
    let mut out = header.encode();
    out.extend_from_slice(&row_bytes);
    out.extend_from_slice(&crc32(bloom.bits()).to_le_bytes());
    out.extend_from_slice(bloom.bits());
    out.extend_from_slice(&crc32(&snap).to_le_bytes());
    out.extend_from_slice(&snap);
    out
}

/// A segment parsed far enough to know its sections' byte ranges; each
/// section is verified on demand so recovery can use a segment whose
/// snapshot survives even when its row section is torn (or vice versa).
#[derive(Debug)]
pub struct SegmentData<'a> {
    /// The verified header.
    pub header: SegmentHeader,
    bytes: &'a [u8],
    rows_at: usize,
    bloom_at: usize,
    snap_at: usize,
}

impl<'a> SegmentData<'a> {
    /// Verify the header of `bytes` and locate the sections. `file`
    /// names the source for error context.
    pub fn parse(file: &str, bytes: &'a [u8]) -> Result<SegmentData<'a>, StoreError> {
        let corrupt = |source| StoreError::Corrupt {
            file: file.to_owned(),
            source,
        };
        let header = SegmentHeader::decode(bytes).map_err(corrupt)?;
        let rows_at = SEG_HEADER_LEN;
        let rows_len = header.rows as usize * wal::record_len(header.streams as usize);
        let bloom_at = rows_at + rows_len;
        let snap_at = bloom_at + 4 + header.bloom_len as usize;
        Ok(SegmentData {
            header,
            bytes,
            rows_at,
            bloom_at,
            snap_at,
        })
    }

    /// The longest verified prefix of the row section, flattened with
    /// stride `streams`. A truncated file yields however many whole,
    /// checksummed records physically survive.
    pub fn rows(&self) -> wal::WalPrefix {
        let end = self.bloom_at.min(self.bytes.len());
        let body = &self.bytes[self.rows_at.min(end)..end];
        wal::scan_records(body, self.header.streams as usize)
    }

    /// Whether the row section is complete: every declared record
    /// verifies. Compaction and forward replay require this; recovery
    /// from the snapshot does not.
    pub fn rows_complete(&self) -> bool {
        self.rows().values.len() == self.header.rows as usize * self.header.streams as usize
    }

    /// The bloom filter, or a degraded always-positive filter when its
    /// section is torn or corrupt (a wrong *skip* is never possible).
    pub fn bloom(&self) -> StreamBloom {
        let start = self.bloom_at + 4;
        let end = start + self.header.bloom_len as usize;
        if end > self.bytes.len() {
            return StreamBloom::from_bits(Vec::new());
        }
        let stored = u32::from_le_bytes(
            self.bytes[self.bloom_at..self.bloom_at + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let bits = &self.bytes[start..end];
        if crc32(bits) != stored {
            return StreamBloom::from_bits(Vec::new());
        }
        StreamBloom::from_bits(bits.to_vec())
    }

    /// Verify and restore the embedded snapshot — the state at `end_t`.
    pub fn snapshot(&self, file: &str) -> Result<StreamSet, StoreError> {
        let corrupt = |source| StoreError::Corrupt {
            file: file.to_owned(),
            source,
        };
        let start = self.snap_at + 4;
        let end = start + self.header.snap_len as usize;
        if self.snap_at + 4 > self.bytes.len() || end > self.bytes.len() {
            return Err(corrupt(CodecError::Truncated {
                offset: self.bytes.len(),
            }));
        }
        let stored = u32::from_le_bytes(
            self.bytes[self.snap_at..self.snap_at + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let payload = &self.bytes[start..end];
        let computed = crc32(payload);
        if computed != stored {
            return Err(corrupt(CodecError::ChecksumMismatch {
                offset: self.snap_at,
                stored,
                computed,
            }));
        }
        let set = StreamSet::restore(payload).map_err(|source| StoreError::Snapshot {
            file: file.to_owned(),
            source,
        })?;
        if set.tree(0).arrivals() != self.header.end_t {
            return Err(corrupt(CodecError::Invalid {
                what: "segment snapshot clock",
                offset: self.snap_at,
            }));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::SwatConfig;

    fn sample(rows_n: u64) -> (Vec<f64>, StreamSet) {
        let mut set = StreamSet::new(SwatConfig::with_coefficients(16, 2).unwrap(), 3);
        let mut rows = Vec::new();
        for i in 0..rows_n {
            // Stream 2 stays silent so the bloom filter has something to prove.
            let row = [(i as f64 * 0.3).cos(), i as f64, 0.0];
            set.push_row(&row);
            rows.extend_from_slice(&row);
        }
        (rows, set)
    }

    #[test]
    fn names_roundtrip_and_sort_chronologically() {
        assert_eq!(parse_segment_name(&segment_name(5, 9)), Some((5, 9)));
        assert_eq!(parse_segment_name(&segment_name(0, 0)), Some((0, 0)));
        assert!(segment_name(9, 10) < segment_name(10, 20));
        assert_eq!(parse_segment_name("seg-5-9.seg"), None); // not padded
        assert_eq!(parse_segment_name("seg-x.seg"), None);
        let backwards = format!("seg-{:020}-{:020}.seg", 9, 5);
        assert_eq!(parse_segment_name(&backwards), None);
    }

    #[test]
    fn segment_roundtrips_rows_bloom_and_snapshot() {
        let (rows, set) = sample(24);
        let bytes = encode(0, &rows, &set);
        let seg = SegmentData::parse("seg", &bytes).unwrap();
        assert_eq!(seg.header.start_t, 0);
        assert_eq!(seg.header.end_t, 24);
        assert!(seg.rows_complete());
        assert_eq!(seg.rows().values, rows);
        let restored = seg.snapshot("seg").unwrap();
        assert_eq!(restored.answers_digest(), set.answers_digest());
        let bloom = seg.bloom();
        assert!(bloom.may_contain(0));
        assert!(bloom.may_contain(1));
        assert!(!bloom.may_contain(2), "silent stream must be skippable");
    }

    #[test]
    fn every_flip_is_rejected_or_prefix_consistent() {
        let (rows, set) = sample(6);
        let bytes = encode(0, &rows, &set);
        let reference = set.answers_digest();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                let Ok(seg) = SegmentData::parse("seg", &bad) else {
                    continue; // typed rejection is fine
                };
                // Rows: any surviving prefix must be a true prefix.
                let p = seg.rows();
                assert!(
                    rows.starts_with(&p.values),
                    "flip {byte}.{bit} changed replayable rows"
                );
                // Snapshot: verified means identical.
                if let Ok(s) = seg.snapshot("seg") {
                    assert_eq!(s.answers_digest(), reference, "flip {byte}.{bit}");
                }
                // Bloom: never a wrong skip.
                let bloom = seg.bloom();
                assert!(bloom.may_contain(0) && bloom.may_contain(1));
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected_or_prefix_consistent() {
        let (rows, set) = sample(6);
        let bytes = encode(0, &rows, &set);
        for cut in 0..bytes.len() {
            let Ok(seg) = SegmentData::parse("seg", &bytes[..cut]) else {
                continue;
            };
            let p = seg.rows();
            assert!(rows.starts_with(&p.values), "cut {cut}");
            assert!(seg.snapshot("seg").is_err() || cut == bytes.len());
            assert!(seg.bloom().may_contain(0));
        }
    }

    #[test]
    fn snapshot_clock_mismatch_is_corrupt() {
        let (rows, set) = sample(8);
        // Claim the rows start at 100: end_t = 108 but the snapshot says 8.
        let bytes = encode(100, &rows, &set);
        let seg = SegmentData::parse("seg", &bytes).unwrap();
        let err = seg.snapshot("seg").unwrap_err();
        assert!(err.to_string().contains("snapshot clock"), "{err}");
    }
}
