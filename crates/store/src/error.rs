//! The durability layer's error type.
//!
//! Everything that can go wrong while persisting or recovering state maps
//! to one [`StoreError`] variant, and every corruption-shaped variant says
//! *which file* and *where*: recovery code paths are exercised by fault
//! injection that flips and truncates arbitrary bytes, and a positioned
//! error is the difference between a diagnosable incident and a shrug.

use std::fmt;
use std::io;

use swat_tree::codec::CodecError;
use swat_tree::SnapshotError;

/// Why a durable-store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        /// What the store was doing (`"open wal"`, `"rename checkpoint"`, ...).
        context: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A file failed structural validation (bad magic, bad checksum,
    /// truncated field...). The offset inside [`CodecError`] is relative
    /// to the start of the named file.
    Corrupt {
        /// File name within the store directory.
        file: String,
        /// The positioned decode failure.
        source: CodecError,
    },
    /// A checkpoint's embedded tree snapshot failed to restore.
    Snapshot {
        /// File name within the store directory.
        file: String,
        /// The positioned snapshot failure (offsets are relative to the
        /// snapshot payload, which starts after the checkpoint header).
        source: SnapshotError,
    },
    /// The directory holds no recoverable state at all: no readable
    /// checkpoint and no readable WAL header to bootstrap from.
    NoState,
    /// A row was pushed with the wrong number of streams.
    BadRow {
        /// Values supplied.
        got: usize,
        /// Streams the store was created with.
        want: usize,
    },
    /// A row was pushed containing a non-finite value, which neither the
    /// tree nor the WAL record format accepts.
    BadValue {
        /// Index of the offending stream within the row.
        stream: usize,
    },
    /// The store is running but durability is behind: background flushes
    /// are parked on a persistent disk fault (or the live WAL hit one),
    /// so an operation that requires everything durable cannot complete.
    /// Ingest continues; the store retries with bounded backoff.
    Degraded {
        /// Frozen generations waiting to be flushed.
        parked: usize,
        /// The most recent underlying failure, rendered.
        message: String,
    },
    /// A historical range query touched arrivals no live segment carries
    /// (rows older than the earliest retained segment, or a span whose
    /// row section did not survive corruption).
    NoHistory {
        /// First arrival index that could not be served.
        t: u64,
    },
}

impl StoreError {
    /// Adapter for `map_err`: annotate an [`io::Error`] with its context.
    pub(crate) fn io(context: &'static str) -> impl FnOnce(io::Error) -> StoreError {
        move |source| StoreError::Io { context, source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "i/o failure ({context}): {source}"),
            StoreError::Corrupt { file, source } => write!(f, "corrupt {file}: {source}"),
            StoreError::Snapshot { file, source } => {
                write!(f, "corrupt snapshot in {file}: {source}")
            }
            StoreError::NoState => write!(f, "no recoverable state in store directory"),
            StoreError::BadRow { got, want } => {
                write!(f, "row has {got} values but the store has {want} streams")
            }
            StoreError::BadValue { stream } => {
                write!(f, "row carries a non-finite value for stream {stream}")
            }
            StoreError::Degraded { parked, message } => {
                write!(
                    f,
                    "store degraded: {parked} frozen generation(s) parked ({message})"
                )
            }
            StoreError::NoHistory { t } => {
                write!(f, "no live segment carries arrival {t}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { source, .. } => Some(source),
            StoreError::Snapshot { source, .. } => Some(source),
            StoreError::NoState
            | StoreError::BadRow { .. }
            | StoreError::BadValue { .. }
            | StoreError::Degraded { .. }
            | StoreError::NoHistory { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file_and_position() {
        let e = StoreError::Corrupt {
            file: "wal-000042.wal".into(),
            source: CodecError::Truncated { offset: 17 },
        };
        let s = e.to_string();
        assert!(s.contains("wal-000042.wal"), "{s}");
        assert!(s.contains("17"), "{s}");

        let e = StoreError::BadRow { got: 3, want: 2 };
        assert!(e.to_string().contains("3 values"));
    }
}
