//! Crash recovery: rebuild a [`DurableStore`] from whatever survived.
//!
//! The invariant recovery enforces is *verified-prefix consistency*: the
//! recovered trees are bit-identical (witnessed by `answers_digest`) to a
//! never-crashed store that ingested some prefix of the acknowledged
//! arrivals — the longest prefix the surviving checksums can vouch for.
//! Corrupt bytes can shorten that prefix; they can never change an
//! answer, and they can never panic the recovery path.
//!
//! ## Procedure
//!
//! 1. Try checkpoints newest-first; the first whose whole-file checksum,
//!    snapshot structure, and embedded clock all verify becomes the base
//!    state. Corrupt newer checkpoints are counted and deleted.
//! 2. With no usable checkpoint, bootstrap an empty set from the `wal-0`
//!    header (which repeats the tree configuration for exactly this
//!    case). If that is gone too, the directory is unrecoverable and
//!    [`StoreError::NoState`] says so.
//! 3. Chain WAL generations forward from the base: replay the verified
//!    record prefix of `wal-<t>`; a complete generation lands exactly on
//!    the `base_t` of the next one, a torn tail ends the chain.
//! 4. Write a fresh checkpoint of the recovered state and open a new log
//!    generation, so the next crash recovers from files written by a
//!    healthy path even if this recovery leaned on a damaged one.

use std::fs;
use std::path::{Path, PathBuf};

use swat_tree::StreamSet;

use crate::checkpoint::{self, checkpoint_name, wal_name, FileKind};
use crate::error::StoreError;
use crate::store::DurableStore;
use crate::wal::{self, WalHeader, HEADER_LEN};

/// What recovery found and did — the observability half of the story.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Base checkpoint used, as its arrival clock (`None`: bootstrapped
    /// from the `wal-0` header).
    pub checkpoint_t: Option<u64>,
    /// Newer checkpoints that failed verification and were discarded.
    pub checkpoints_skipped: usize,
    /// WAL rows replayed on top of the base state.
    pub wal_rows_replayed: u64,
    /// WAL bytes discarded as torn or corrupt (headers of unusable
    /// generations included).
    pub wal_bytes_dropped: u64,
    /// Arrival clock of the recovered store.
    pub recovered_arrivals: u64,
}

/// Entry point for turning a possibly-damaged store directory back into a
/// live [`DurableStore`].
pub struct RecoveryManager;

impl RecoveryManager {
    /// Recover the store in `dir`. See the module docs for the procedure
    /// and the consistency contract.
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(DurableStore, RecoveryReport), StoreError> {
        let dir = dir.into();
        let mut report = RecoveryReport::default();

        let (mut ckpts, wals) = scan(&dir)?;
        ckpts.sort_unstable_by(|a, b| b.cmp(a)); // newest first

        // 1. Newest verifiable checkpoint.
        let mut base: Option<StreamSet> = None;
        for &t in &ckpts {
            let name = checkpoint_name(t);
            match fs::read(dir.join(&name)) {
                Ok(bytes) => match checkpoint::decode(&name, &bytes) {
                    Ok(set) if set.tree(0).arrivals() == t => {
                        report.checkpoint_t = Some(t);
                        base = Some(set);
                        break;
                    }
                    _ => {
                        report.checkpoints_skipped += 1;
                        let _ = fs::remove_file(dir.join(&name));
                    }
                },
                Err(_) => {
                    report.checkpoints_skipped += 1;
                    let _ = fs::remove_file(dir.join(&name));
                }
            }
        }

        // 2. Bootstrap from wal-0 if no checkpoint survived.
        let mut set = match base {
            Some(set) => set,
            None => match bootstrap(&dir)? {
                Some(set) => set,
                None => return Err(StoreError::NoState),
            },
        };

        // 3. Chain WAL generations forward.
        loop {
            let t = set.tree(0).arrivals();
            let path = dir.join(wal_name(t));
            let Ok(bytes) = fs::read(&path) else { break };
            let rows_before = set.tree(0).arrivals();
            let dropped = replay(&mut set, t, &bytes);
            report.wal_bytes_dropped += dropped;
            report.wal_rows_replayed += set.tree(0).arrivals() - rows_before;
            // A torn tail — or a generation that added nothing — ends the
            // chain; the next generation can only exist after a complete
            // predecessor.
            if dropped > 0 || set.tree(0).arrivals() == rows_before {
                break;
            }
        }
        report.recovered_arrivals = set.tree(0).arrivals();

        // Drop WAL generations the chain can no longer reach (ahead of
        // the recovered clock); a fresh checkpoint supersedes them.
        for t in wals {
            if t > report.recovered_arrivals {
                let _ = fs::remove_file(dir.join(wal_name(t)));
            }
        }

        // 4. Re-anchor on a healthy checkpoint + fresh log generation.
        let store = DurableStore::resume(dir, set, true)?;
        Ok((store, report))
    }
}

/// Every parseable checkpoint / WAL base clock in `dir`.
fn scan(dir: &Path) -> Result<(Vec<u64>, Vec<u64>), StoreError> {
    let mut ckpts = Vec::new();
    let mut wals = Vec::new();
    for entry in fs::read_dir(dir).map_err(StoreError::io("list store directory"))? {
        let entry = entry.map_err(StoreError::io("list store directory"))?;
        match checkpoint::parse_name(&entry.file_name().to_string_lossy()) {
            Some((FileKind::Checkpoint, t)) => ckpts.push(t),
            Some((FileKind::Wal, t)) => wals.push(t),
            None => {}
        }
    }
    Ok((ckpts, wals))
}

/// An empty [`StreamSet`] reconstructed from the `wal-0` header, if that
/// header survives verification.
fn bootstrap(dir: &Path) -> Result<Option<StreamSet>, StoreError> {
    let Ok(bytes) = fs::read(dir.join(wal_name(0))) else {
        return Ok(None);
    };
    let Ok(header) = WalHeader::decode(&bytes) else {
        return Ok(None);
    };
    if header.base_t != 0 {
        return Ok(None);
    }
    let Ok(config) = header.config() else {
        return Ok(None);
    };
    Ok(Some(StreamSet::new(config, header.streams as usize)))
}

/// Replay the verified prefix of one WAL generation into `set`; returns
/// the bytes discarded (whole file when the header or its identity fields
/// do not match the state being extended).
fn replay(set: &mut StreamSet, expected_base: u64, bytes: &[u8]) -> u64 {
    let expected = WalHeader::describe(set.config(), set.streams(), expected_base);
    match WalHeader::decode(bytes) {
        Ok(header) if header == expected => {
            let prefix = wal::scan_records(&bytes[HEADER_LEN..], set.streams());
            for row in prefix.values.chunks_exact(set.streams()) {
                set.push_row(row);
            }
            (bytes.len() - HEADER_LEN - prefix.verified_len) as u64
        }
        _ => bytes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_tree::SwatConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swat-recovery-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> SwatConfig {
        SwatConfig::with_coefficients(32, 2).unwrap()
    }

    /// A reference store that never crashes, for digest comparison.
    fn uncrashed(rows: u64) -> StreamSet {
        let mut set = StreamSet::new(config(), 2);
        for i in 0..rows {
            set.push_row(&row(i));
        }
        set
    }

    fn row(i: u64) -> [f64; 2] {
        [(i as f64 * 0.37).sin() * 5.0, i as f64]
    }

    #[test]
    fn clean_shutdown_recovers_bit_identically() {
        let dir = tmp("clean");
        let mut store = DurableStore::create(&dir, config(), 2).unwrap();
        for i in 0..75 {
            store.push_row(&row(i)).unwrap();
            if i == 40 {
                store.checkpoint().unwrap();
            }
        }
        store.sync().unwrap();
        drop(store);

        let (recovered, report) = RecoveryManager::recover(&dir).unwrap();
        assert_eq!(report.recovered_arrivals, 75);
        assert_eq!(report.checkpoint_t, Some(41));
        assert_eq!(report.wal_rows_replayed, 34);
        assert_eq!(report.wal_bytes_dropped, 0);
        assert_eq!(recovered.answers_digest(), uncrashed(75).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_a_generation() {
        let dir = tmp("fallback");
        let mut store = DurableStore::create(&dir, config(), 2).unwrap();
        let mut pushed = 0;
        for round in 0..3 {
            for _ in 0..20 {
                store.push_row(&row(pushed)).unwrap();
                pushed += 1;
            }
            let _ = round;
            store.checkpoint().unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Flip one byte in the newest checkpoint (t = 60).
        let name = checkpoint_name(60);
        let mut bytes = fs::read(dir.join(&name)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(dir.join(&name), bytes).unwrap();

        let (recovered, report) = RecoveryManager::recover(&dir).unwrap();
        assert_eq!(report.checkpoints_skipped, 1);
        assert_eq!(report.checkpoint_t, Some(40));
        // The sealed wal-40 replays 40..60; the live wal-60 was empty.
        assert_eq!(report.recovered_arrivals, 60);
        assert_eq!(recovered.answers_digest(), uncrashed(60).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_trusted() {
        let dir = tmp("torn");
        let mut store = DurableStore::create(&dir, config(), 2).unwrap();
        for i in 0..10 {
            store.push_row(&row(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Tear the last record mid-way, as an interrupted write would.
        let name = wal_name(0);
        let len = fs::metadata(dir.join(&name)).unwrap().len();
        let f = fs::OpenOptions::new()
            .write(true)
            .open(dir.join(&name))
            .unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let (recovered, report) = RecoveryManager::recover(&dir).unwrap();
        assert_eq!(report.recovered_arrivals, 9);
        assert_eq!(report.wal_rows_replayed, 9);
        assert!(report.wal_bytes_dropped > 0);
        assert_eq!(recovered.answers_digest(), uncrashed(9).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_a_typed_error() {
        let dir = tmp("empty");
        fs::create_dir_all(&dir).unwrap();
        let err = RecoveryManager::recover(&dir).unwrap_err();
        assert!(matches!(err, StoreError::NoState), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_re_anchors_so_a_second_crash_recovers_too() {
        let dir = tmp("reanchor");
        let mut store = DurableStore::create(&dir, config(), 2).unwrap();
        for i in 0..30 {
            store.push_row(&row(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let (mut recovered, _) = RecoveryManager::recover(&dir).unwrap();
        for i in 30..45 {
            recovered.push_row(&row(i)).unwrap();
        }
        recovered.sync().unwrap();
        drop(recovered);

        let (again, report) = RecoveryManager::recover(&dir).unwrap();
        assert_eq!(report.recovered_arrivals, 45);
        assert_eq!(again.answers_digest(), uncrashed(45).answers_digest());
        let _ = fs::remove_dir_all(&dir);
    }
}
